//! Property-based tests on the protocol's core invariants, exercised through
//! the public API of the facade crate.

use bytes::Bytes;
use proptest::prelude::*;
use push_pull_messaging::core::queues::Assembly;
use push_pull_messaging::core::reliability::{Frame, GbnConfig, GbnEvent, GoBackN, MAX_SACK_WORDS};
use push_pull_messaging::core::wire::{Packet, PacketHeader, PacketKind, PushPart};
use push_pull_messaging::core::zbuf::pages_spanned;
use push_pull_messaging::core::{
    BtpPolicy, BtpSplit, Error, MessageId, OptFlags, ProtocolMode, TruncationPolicy, ANY_SOURCE,
    ANY_TAG,
};
// The explicit import shadows the prelude's transport front-end: these
// properties drive the sans-I/O protocol engine by hand.
use push_pull_messaging::core::Endpoint;
use push_pull_messaging::prelude::*;

fn arb_mode() -> impl Strategy<Value = ProtocolMode> {
    prop_oneof![
        Just(ProtocolMode::PushZero),
        Just(ProtocolMode::PushPull),
        Just(ProtocolMode::PushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The BTP split always conserves the message length and never produces
    /// a negative-sized part, for any policy and message size.
    #[test]
    fn btp_split_conserves_length(
        mode in arb_mode(),
        btp1 in 0usize..4096,
        btp2 in 0usize..4096,
        overlap in any::<bool>(),
        len in 0usize..200_000,
    ) {
        let mut opts = OptFlags::full();
        opts.push_ack_overlap = overlap;
        let split = BtpSplit::plan(mode, BtpPolicy::split(btp1, btp2), opts, len);
        prop_assert_eq!(split.total(), len);
        prop_assert!(split.first_push <= len);
        prop_assert!(split.second_push_offset() + split.second_push <= len);
        prop_assert_eq!(split.pulled_offset() + split.pulled, len);
    }

    /// Wire round-trip: any packet that encodes must decode to itself.
    #[test]
    fn packet_roundtrip(
        kind in 0u8..5,
        msg_id in any::<u64>(),
        tag in any::<u32>(),
        total in 0u32..100_000,
        offset in 0u32..100_000,
        payload_len in 0usize..4096,
    ) {
        let kind = match kind {
            0 => PacketKind::Push(PushPart::First),
            1 => PacketKind::Push(PushPart::Second),
            2 => PacketKind::PullRequest,
            3 => PacketKind::PullData,
            _ => PacketKind::Control,
        };
        let payload_len = if kind == PacketKind::PullRequest { 0 } else { payload_len };
        let header = PacketHeader {
            kind,
            src: ProcessId::new(0, 1),
            dst: ProcessId::new(1, 0),
            msg_id: MessageId(msg_id),
            tag: Tag(tag),
            total_len: total,
            eager_len: total.min(760),
            offset,
            payload_len: payload_len as u32,
        };
        let pkt = Packet::new(header, Bytes::from(vec![0xA5u8; payload_len])).unwrap();
        let decoded = Packet::decode(pkt.encode()).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    /// Go-back-N frame round-trip.
    #[test]
    fn frame_roundtrip(seq in any::<u64>(), len in 0usize..2048) {
        let header = PacketHeader {
            kind: PacketKind::PullData,
            src: ProcessId::new(0, 0),
            dst: ProcessId::new(1, 0),
            msg_id: MessageId(9),
            tag: Tag(2),
            total_len: len as u32,
            eager_len: 0,
            offset: 0,
            payload_len: len as u32,
        };
        let frame = Frame::Data {
            seq,
            packet: Packet::new(header, Bytes::from(vec![1u8; len])).unwrap(),
        };
        prop_assert_eq!(Frame::decode(frame.encode()).unwrap(), frame);
    }

    /// SACK wire round-trip: any cumulative point and any bitmap encode to
    /// a frame that decodes back to itself (the encoding trims trailing
    /// all-zero words, so the identity holds on the full `[u64; 4]`).
    #[test]
    fn sack_frame_roundtrip(
        next_expected in any::<u64>(),
        w0 in any::<u64>(),
        w1 in any::<u64>(),
        w2 in any::<u64>(),
        w3 in any::<u64>(),
        zero_suffix in 0usize..5,
    ) {
        // Exercise both dense and sparse bitmaps: force a trailing run of
        // zero words so the trimmed short forms are hit as often as the
        // full-width one.
        let mut bitmap = [w0, w1, w2, w3];
        for w in bitmap.iter_mut().skip(4 - zero_suffix) {
            *w = 0;
        }
        let frame = Frame::Sack { next_expected, bitmap };
        let encoded = frame.encode();
        prop_assert_eq!(Frame::decode(encoded.clone()).unwrap(), frame);

        // Every strict prefix is rejected with the field-carrying
        // truncation error reporting exactly what was available — never a
        // panic, never a misdecode into a different frame.
        for cut in 0..encoded.len() {
            match Frame::decode(encoded.slice(..cut)) {
                Err(Error::TruncatedFrame { have }) => prop_assert_eq!(have, cut),
                other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
            }
        }
    }

    /// A SACK frame declaring more bitmap words than
    /// [`MAX_SACK_WORDS`](push_pull_messaging::core::reliability::MAX_SACK_WORDS)
    /// is rejected with the declared count, even when that many words are
    /// actually present on the wire.
    #[test]
    fn sack_too_wide_rejected(
        next_expected in any::<u64>(),
        words in (MAX_SACK_WORDS as u8 + 1)..u8::MAX,
    ) {
        let mut wire = Vec::with_capacity(10 + 8 * usize::from(words));
        wire.push(2u8); // SACK kind byte
        wire.extend_from_slice(&next_expected.to_be_bytes());
        wire.push(words);
        for i in 0..u64::from(words) {
            wire.extend_from_slice(&i.to_be_bytes());
        }
        match Frame::decode(Bytes::from(wire)) {
            Err(Error::SackTooWide { words: got }) => prop_assert_eq!(got, words),
            other => prop_assert!(false, "declared {} words, got {:?}", words, other),
        }
    }

    /// Go-back-N delivers every packet exactly once, in order, under any
    /// loss pattern (as long as losses eventually stop).
    #[test]
    fn go_back_n_exactly_once_under_loss(
        count in 1usize..30,
        loss_pattern in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let cfg = GbnConfig { window: 8, rto_us: 10, max_retries: 10_000 };
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..count {
            let header = PacketHeader {
                kind: PacketKind::PullData,
                src: ProcessId::new(0, 0),
                dst: ProcessId::new(1, 0),
                msg_id: MessageId(i as u64),
                tag: Tag(0),
                total_len: 8,
                eager_len: 0,
                offset: 0,
                payload_len: 8,
            };
            sender.send(Packet::new(header, Bytes::from(vec![i as u8; 8])).unwrap(), &mut events);
        }
        let mut delivered: Vec<u64> = Vec::new();
        let mut drop_iter = loss_pattern.into_iter();
        let mut pending_timer = None;
        let mut steps = 0;
        while !sender.idle() {
            steps += 1;
            prop_assert!(steps < 10_000, "did not converge");
            let outgoing: Vec<GbnEvent> = std::mem::take(&mut events);
            let mut to_receiver = Vec::new();
            for e in outgoing {
                match e {
                    GbnEvent::Transmit(f) => {
                        let drop = matches!(f, Frame::Data { .. }) && drop_iter.next().unwrap_or(false);
                        if !drop {
                            to_receiver.push(f);
                        }
                    }
                    GbnEvent::SetTimer { generation, .. } => pending_timer = Some(generation),
                    GbnEvent::CancelTimer { .. } => pending_timer = None,
                    _ => {}
                }
            }
            let mut recv_events = Vec::new();
            for f in to_receiver {
                receiver.on_frame(f, &mut recv_events);
            }
            for e in recv_events {
                match e {
                    GbnEvent::Deliver(p) => delivered.push(p.header.msg_id.0),
                    GbnEvent::Transmit(f) => sender.on_frame(f, &mut events),
                    _ => {}
                }
            }
            if events.is_empty() && !sender.idle() {
                if let Some(generation) = pending_timer.take() {
                    sender.on_timeout(generation, &mut events);
                }
            }
        }
        prop_assert_eq!(delivered, (0..count as u64).collect::<Vec<_>>());
    }

    /// Message reassembly covers exactly the bytes written, regardless of
    /// fragment order, overlap, or duplication.
    #[test]
    fn assembly_tracks_coverage_exactly(
        total in 1usize..8192,
        fragments in proptest::collection::vec((0usize..8192, 1usize..2048), 1..24),
    ) {
        let mut assembly = Assembly::new(total);
        let mut covered = vec![false; total];
        for (offset, len) in fragments {
            let data = vec![0xCDu8; len];
            assembly.write_at(offset, &data);
            for c in covered.iter_mut().take((offset + len).min(total)).skip(offset) {
                *c = true;
            }
        }
        let expected = covered.iter().filter(|&&c| c).count();
        prop_assert_eq!(assembly.received(), expected);
        prop_assert_eq!(assembly.is_complete(), expected == total);
    }

    /// The page-span helper agrees with a brute-force page enumeration.
    #[test]
    fn pages_spanned_matches_bruteforce(addr in 0u64..1_000_000, len in 0usize..100_000) {
        let fast = pages_spanned(addr, len, 4096);
        let brute = if len == 0 {
            0
        } else {
            let first = addr / 4096;
            let last = (addr + len as u64 - 1) / 4096;
            (last - first + 1) as usize
        };
        prop_assert_eq!(fast, brute);
    }

    /// End-to-end engine property: for any mode, size, and posting order, the
    /// delivered bytes equal the sent bytes.
    #[test]
    fn engine_delivers_exact_bytes(
        mode in arb_mode(),
        len in 0usize..20_000,
        recv_first in any::<bool>(),
        seed in any::<u8>(),
    ) {
        let cfg = ProtocolConfig::paper_internode()
            .with_mode(mode)
            .with_pushed_buffer(256 * 1024);
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        let mut sender = Endpoint::new(a, cfg.clone());
        let mut receiver = Endpoint::new(b, cfg);
        let data = Bytes::from((0..len).map(|i| (i as u8).wrapping_add(seed)).collect::<Vec<u8>>());

        if recv_first {
            receiver.post_recv(a, Tag(1), len).unwrap();
            sender.post_send(b, Tag(1), data.clone()).unwrap();
        } else {
            sender.post_send(b, Tag(1), data.clone()).unwrap();
            receiver.post_recv(a, Tag(1), len).unwrap();
        }

        for _ in 0..10_000 {
            let mut progressed = false;
            while let Some(action) = sender.poll_action() {
                progressed = true;
                match action {
                    Action::TransmitFrame { frame, .. } => receiver.handle_frame(a, frame),
                    Action::Transmit { packet, .. } => receiver.handle_packet(a, packet),
                    _ => {}
                }
            }
            while let Some(action) = receiver.poll_action() {
                progressed = true;
                match action {
                    Action::TransmitFrame { frame, .. } => sender.handle_frame(b, frame),
                    Action::Transmit { packet, .. } => sender.handle_packet(b, packet),
                    _ => {}
                }
            }
            if !progressed {
                break;
            }
        }
        let mut delivered = None;
        while let Some(c) = receiver.poll_completion() {
            if let (OpId::Recv(_), Status::Ok) = (&c.op, &c.status) {
                delivered = c.data.clone();
            }
        }
        prop_assert_eq!(delivered.expect("message delivered"), data);
    }
}

// ---------------------------------------------------------------------------
// PR-1 structures: the slab/bucket queues must behave exactly like the naive
// Vec / HashMap models they replaced, under arbitrary interleavings of
// post / match / cancel / complete.
// ---------------------------------------------------------------------------

mod models {
    use push_pull_messaging::core::queues::{PendingSend, PostedReceive};
    use push_pull_messaging::core::{MessageId, ProcessId, RecvOp, Tag};
    use std::collections::HashMap;

    /// The original receive queue: linear scan over a flat `Vec`.
    #[derive(Default)]
    pub struct ModelRecvQueue {
        posted: Vec<PostedReceive>,
    }

    impl ModelRecvQueue {
        pub fn register(&mut self, recv: PostedReceive) {
            self.posted.push(recv);
        }

        pub fn match_incoming(&mut self, src: ProcessId, tag: Tag) -> Option<PostedReceive> {
            let idx = self
                .posted
                .iter()
                .position(|r| r.src == src && r.tag == tag)?;
            Some(self.posted.remove(idx))
        }

        pub fn peek_match(&self, src: ProcessId, tag: Tag) -> Option<&PostedReceive> {
            self.posted.iter().find(|r| r.src == src && r.tag == tag)
        }

        pub fn cancel(&mut self, op: RecvOp) -> Option<PostedReceive> {
            let idx = self.posted.iter().position(|r| r.op == op)?;
            Some(self.posted.remove(idx))
        }

        pub fn len(&self) -> usize {
            self.posted.len()
        }
    }

    /// The original buffer queue: linear scan, dedup by key.
    #[derive(Default)]
    pub struct ModelBufferQueue {
        entries: Vec<(ProcessId, MessageId, Tag)>,
    }

    impl ModelBufferQueue {
        pub fn insert(&mut self, src: ProcessId, msg_id: MessageId, tag: Tag) {
            if !self
                .entries
                .iter()
                .any(|&(s, m, _)| s == src && m == msg_id)
            {
                self.entries.push((src, msg_id, tag));
            }
        }

        pub fn match_posted(&mut self, src: ProcessId, tag: Tag) -> Option<MessageId> {
            let idx = self
                .entries
                .iter()
                .position(|&(s, _, t)| s == src && t == tag)?;
            Some(self.entries.remove(idx).1)
        }

        pub fn remove(&mut self, src: ProcessId, msg_id: MessageId) -> bool {
            let before = self.entries.len();
            self.entries.retain(|&(s, m, _)| !(s == src && m == msg_id));
            before != self.entries.len()
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }
    }

    /// The original send queue: `HashMap` plus order `Vec` with `retain`.
    #[derive(Default)]
    pub struct ModelSendQueue {
        entries: HashMap<u64, PendingSend>,
        order: Vec<u64>,
    }

    impl ModelSendQueue {
        pub fn register(&mut self, send: PendingSend) {
            let key = send.msg_id.0;
            self.order.push(key);
            self.entries.insert(key, send);
        }

        pub fn get(&self, msg_id: MessageId) -> Option<&PendingSend> {
            self.entries.get(&msg_id.0)
        }

        pub fn remove(&mut self, msg_id: MessageId) -> Option<PendingSend> {
            let removed = self.entries.remove(&msg_id.0);
            if removed.is_some() {
                self.order.retain(|&k| k != msg_id.0);
            }
            removed
        }

        pub fn iter_ids(&self) -> Vec<u64> {
            self.order
                .iter()
                .filter(|k| self.entries.contains_key(k))
                .copied()
                .collect()
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The bucketed receive queue and the naive model agree on every
    /// register / match / peek / cancel interleaving.
    #[test]
    fn recv_queue_matches_naive_model(
        ops in proptest::collection::vec((0u8..4, 0u8..3, 0u32..3), 1..80),
    ) {
        use push_pull_messaging::core::queues::{PostedReceive, ReceiveQueue};

        let srcs = [ProcessId::new(0, 0), ProcessId::new(0, 1), ProcessId::new(1, 0)];
        let mut real = ReceiveQueue::new();
        let mut model = models::ModelRecvQueue::default();
        let mut next_handle = 0u32;
        for (kind, src_sel, tag) in ops {
            let src = srcs[src_sel as usize];
            let tag = Tag(tag);
            match kind {
                0 | 3 => {
                    let recv = PostedReceive {
                        op: RecvOp::from_raw(next_handle, 0),
                        src,
                        tag,
                        capacity: 64,
                        translated: false,
                        policy: TruncationPolicy::Error,
                    };
                    next_handle += 1;
                    real.register(recv);
                    model.register(recv);
                }
                1 => {
                    prop_assert_eq!(real.match_incoming(src, tag), model.match_incoming(src, tag));
                }
                _ => {
                    // Cancel a pseudo-random previously issued handle (may
                    // already be matched/cancelled: both must agree).
                    if next_handle > 0 {
                        let h = RecvOp::from_raw(
                            (tag.0 * 7 + src_sel as u32) % next_handle,
                            0,
                        );
                        prop_assert_eq!(real.cancel(h), model.cancel(h));
                    }
                }
            }
            prop_assert_eq!(real.len(), model.len());
            for &s in &srcs {
                for t in 0..3 {
                    prop_assert_eq!(
                        real.peek_match(s, Tag(t)).copied(),
                        model.peek_match(s, Tag(t)).copied()
                    );
                }
            }
        }
    }

    /// The bucketed unexpected-message queue agrees with the naive model
    /// under insert / match / remove interleavings.  Tags are a function of
    /// the message id, as in the real protocol (a message never changes tag).
    #[test]
    fn buffer_queue_matches_naive_model(
        ops in proptest::collection::vec((0u8..3, 0u8..2, 0u64..12), 1..80),
    ) {
        use push_pull_messaging::core::queues::{BufferQueue, UnexpectedKey};
        use push_pull_messaging::core::MessageId;

        let srcs = [ProcessId::new(0, 0), ProcessId::new(1, 0)];
        let mut real = BufferQueue::new();
        let mut model = models::ModelBufferQueue::default();
        for (kind, src_sel, msg) in ops {
            let src = srcs[src_sel as usize];
            let msg_id = MessageId(msg);
            let tag = Tag((msg % 3) as u32);
            match kind {
                0 => {
                    real.insert(UnexpectedKey { src, msg_id }, tag);
                    model.insert(src, msg_id, tag);
                }
                1 => {
                    prop_assert_eq!(
                        real.match_posted(src, tag).map(|k| k.msg_id),
                        model.match_posted(src, tag)
                    );
                }
                _ => {
                    prop_assert_eq!(
                        real.remove_with_tag(UnexpectedKey { src, msg_id }, tag),
                        model.remove(src, msg_id)
                    );
                }
            }
            prop_assert_eq!(real.len(), model.len());
            prop_assert_eq!(real.is_empty(), model.len() == 0);
        }
    }

    /// The slab-indexed send queue agrees with the naive model, including
    /// registration-order iteration after arbitrary interior removals.
    #[test]
    fn send_queue_matches_naive_model(
        ops in proptest::collection::vec((0u8..3, 0u64..24), 1..80),
    ) {
        use push_pull_messaging::core::queues::{PendingSend, SendQueue};
        use push_pull_messaging::core::MessageId;

        let mut real = SendQueue::new();
        let mut model = models::ModelSendQueue::default();
        let mut next_id = 0u64;
        for (kind, sel) in ops {
            match kind {
                0 => {
                    let send = PendingSend {
                        op: SendOp::from_raw(next_id as u32, 0),
                        dst: ProcessId::new(1, 0),
                        tag: Tag(0),
                        msg_id: MessageId(next_id),
                        payload: push_pull_messaging::core::SendPayload::Single(Bytes::new()),
                        split: BtpSplit::plan(
                            ProtocolMode::PushPull,
                            BtpPolicy::INTERNODE_DEFAULT,
                            OptFlags::full(),
                            0,
                        ),
                        pull_served: false,
                        fully_transmitted: false,
                        translated: false,
                    };
                    next_id += 1;
                    real.register(send.clone());
                    model.register(send);
                }
                1 => {
                    let id = MessageId(sel);
                    prop_assert_eq!(
                        real.remove(id).map(|s| s.op),
                        model.remove(id).map(|s| s.op)
                    );
                }
                _ => {
                    let id = MessageId(sel);
                    prop_assert_eq!(real.get(id).map(|s| s.op), model.get(id).map(|s| s.op));
                }
            }
            prop_assert_eq!(real.len(), model.len());
            let real_order: Vec<u64> = real.iter().map(|s| s.msg_id.0).collect();
            prop_assert_eq!(real_order, model.iter_ids());
        }
    }

    /// End-to-end: the slab-indexed engine preserves MPI's per-(source, tag)
    /// FIFO matching for any mix of tags, sizes, and posting orders.
    #[test]
    fn slab_engine_preserves_fifo_matching(
        sizes in proptest::collection::vec(1usize..2000, 1..8),
        tag_sels in proptest::collection::vec(0u32..3, 1..8),
        recv_first in any::<bool>(),
    ) {
        let k = sizes.len().min(tag_sels.len());
        let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(1 << 20);
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        let mut sender = Endpoint::new(a, cfg.clone());
        let mut receiver = Endpoint::new(b, cfg);

        // Message i carries a distinctive byte pattern.
        let payloads: Vec<Bytes> = (0..k)
            .map(|i| Bytes::from(vec![(i * 31 + 7) as u8; sizes[i]]))
            .collect();

        let post_sends = |sender: &mut Endpoint| {
            for i in 0..k {
                sender.post_send(b, Tag(tag_sels[i]), payloads[i].clone()).unwrap();
            }
        };
        let post_recvs = |receiver: &mut Endpoint| -> Vec<(u32, RecvOp)> {
            (0..k)
                .map(|i| {
                    let tag = tag_sels[i];
                    (tag, receiver.post_recv(a, Tag(tag), 4096).unwrap())
                })
                .collect()
        };

        let handles = if recv_first {
            let h = post_recvs(&mut receiver);
            post_sends(&mut sender);
            h
        } else {
            post_sends(&mut sender);
            post_recvs(&mut receiver)
        };

        // Relay until quiet.
        for _ in 0..10_000 {
            let mut progressed = false;
            while let Some(action) = sender.poll_action() {
                progressed = true;
                match action {
                    Action::TransmitFrame { frame, .. } => receiver.handle_frame(a, frame),
                    Action::Transmit { packet, .. } => receiver.handle_packet(a, packet),
                    _ => {}
                }
            }
            while let Some(action) = receiver.poll_action() {
                progressed = true;
                match action {
                    Action::TransmitFrame { frame, .. } => sender.handle_frame(b, frame),
                    Action::Transmit { packet, .. } => sender.handle_packet(b, packet),
                    _ => {}
                }
            }
            if !progressed {
                break;
            }
        }
        let mut delivered: Vec<(RecvOp, Bytes)> = Vec::new();
        while let Some(c) = receiver.poll_completion() {
            if let OpId::Recv(op) = c.op {
                prop_assert_eq!(&c.status, &Status::Ok);
                delivered.push((op, c.data.clone().expect("engine-buffered data")));
            }
        }
        prop_assert_eq!(delivered.len(), k, "every message delivered exactly once");

        // The j-th receive posted on tag t must hold the j-th message sent
        // on tag t (non-overtaking rule), for every interleaving.
        let mut sent_per_tag: std::collections::HashMap<u32, Vec<usize>> = Default::default();
        for (i, &tag) in tag_sels.iter().enumerate().take(k) {
            sent_per_tag.entry(tag).or_default().push(i);
        }
        let mut seen_per_tag: std::collections::HashMap<u32, usize> = Default::default();
        let by_handle: std::collections::HashMap<RecvOp, Bytes> =
            delivered.into_iter().collect();
        for (tag, handle) in handles {
            let j = *seen_per_tag.entry(tag).or_default();
            seen_per_tag.insert(tag, j + 1);
            let msg_idx = sent_per_tag[&tag][j];
            let got = by_handle.get(&handle).expect("handle completed");
            prop_assert_eq!(got, &payloads[msg_idx], "tag {} position {}", tag, j);
        }
    }

    /// Wildcard matching is FIFO-consistent with the naive linear-scan
    /// model: for any interleaving of exact and wildcard registrations with
    /// concrete incoming messages, the bucketed queue picks exactly the
    /// receive a front-to-back scan over posting order would pick.
    #[test]
    fn wildcard_matching_is_fifo_consistent_with_linear_scan(
        ops in proptest::collection::vec((0u8..2, 0u8..3, 0u8..3), 1..100),
    ) {
        use push_pull_messaging::core::queues::{PostedReceive, ReceiveQueue};

        let srcs = [ProcessId::new(0, 0), ProcessId::new(1, 0), ANY_SOURCE];
        let tags = [Tag(0), Tag(1), ANY_TAG];
        let concrete_srcs = [ProcessId::new(0, 0), ProcessId::new(1, 0)];
        let mut real = ReceiveQueue::new();
        // The naive model: posted receives in posting order, matched by a
        // front-to-back scan honouring wildcard selectors.
        let mut model: Vec<PostedReceive> = Vec::new();
        let mut next = 0u32;
        for (kind, src_sel, tag_sel) in ops {
            match kind {
                0 => {
                    let recv = PostedReceive {
                        op: RecvOp::from_raw(next, 0),
                        src: srcs[src_sel as usize],
                        tag: tags[tag_sel as usize],
                        capacity: 64,
                        translated: false,
                        policy: TruncationPolicy::Error,
                    };
                    next += 1;
                    real.register(recv);
                    model.push(recv);
                }
                _ => {
                    // An incoming message always has concrete source/tag.
                    let src = concrete_srcs[(src_sel % 2) as usize];
                    let tag = tags[(tag_sel % 2) as usize];
                    let model_hit = model
                        .iter()
                        .position(|r| {
                            (r.src.is_any_source() || r.src == src)
                                && (r.tag.is_any() || r.tag == tag)
                        })
                        .map(|i| model.remove(i));
                    let real_peek = real.peek_match(src, tag).copied();
                    let real_hit = real.match_incoming(src, tag);
                    prop_assert_eq!(real_peek, real_hit);
                    prop_assert_eq!(real_hit.map(|r| r.op), model_hit.map(|r| r.op));
                }
            }
            prop_assert_eq!(real.len(), model.len());
        }
    }

    /// Splitting a message into arbitrary segments and posting it with
    /// `post_send_vectored` delivers exactly the same bytes as the single
    /// contiguous send, for any mode and segmentation.
    #[test]
    fn vectored_send_equals_contiguous_send(
        mode in arb_mode(),
        cuts in proptest::collection::vec(0usize..10_000, 0..6),
        len in 0usize..10_000,
        seed in any::<u8>(),
    ) {
        let cfg = ProtocolConfig::paper_internode()
            .with_mode(mode)
            .with_pushed_buffer(256 * 1024);
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        let mut sender = Endpoint::new(a, cfg.clone());
        let mut receiver = Endpoint::new(b, cfg);
        let data = Bytes::from(
            (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect::<Vec<u8>>(),
        );
        // Cut points define the segmentation (duplicates yield empty
        // segments, which must be legal).
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (len + 1)).collect();
        bounds.push(0);
        bounds.push(len);
        bounds.sort_unstable();
        let segments: Vec<Bytes> = bounds
            .windows(2)
            .map(|w| data.slice(w[0]..w[1]))
            .collect();

        sender.post_send_vectored(b, Tag(1), &segments).unwrap();
        receiver.post_recv(a, Tag(1), len.max(1)).unwrap();
        for _ in 0..10_000 {
            let mut progressed = false;
            while let Some(action) = sender.poll_action() {
                progressed = true;
                if let Action::TransmitFrame { frame, .. } = action {
                    receiver.handle_frame(a, frame);
                }
            }
            while let Some(action) = receiver.poll_action() {
                progressed = true;
                if let Action::TransmitFrame { frame, .. } = action {
                    sender.handle_frame(b, frame);
                }
            }
            if !progressed {
                break;
            }
        }
        let mut delivered = None;
        while let Some(c) = receiver.poll_completion() {
            if let (OpId::Recv(_), Status::Ok) = (&c.op, &c.status) {
                delivered = c.data.clone();
            }
        }
        prop_assert_eq!(delivered.expect("vectored message delivered"), data);
    }

    /// The `EndpointConfig` completion-retention cap is honored per
    /// endpoint: after a flood of fire-and-forget eager sends, at most `cap`
    /// unclaimed completions remain drainable, operations a waiter
    /// registered for are never evicted, and every eviction is surfaced in
    /// `EndpointStats::completions_evicted`.
    #[test]
    fn endpoint_retention_cap_is_honored(
        cap in 1usize..24,
        extra in 0usize..48,
        waited in 0usize..6,
    ) {
        use push_pull_messaging::Endpoint as FrontEnd;
        let cluster = LoopbackCluster::new(
            ProtocolConfig::paper_intranode().with_pushed_buffer(512 * 1024),
        );
        let a = FrontEnd::with_config(
            cluster.add_endpoint(ProcessId::new(0, 0)),
            &EndpointConfig::new().completion_retention(cap),
        );
        let _b = cluster.add_endpoint(ProcessId::new(0, 1));
        let peer = ProcessId::new(0, 1);
        let payload = Bytes::from(vec![1u8; 8]); // fully eager under BTP=16

        // `waited` sends whose futures register interest up front: they are
        // spoken for and must survive any flood.
        let waited_futures: Vec<_> = (0..waited)
            .map(|_| a.send(peer, Tag(1), payload.clone()).unwrap())
            .collect();

        // The fire-and-forget flood: each eager send completes inside the
        // post, so the queue sees cap + extra unawaited completions.
        for _ in 0..cap + extra {
            a.post_send(peer, Tag(2), payload.clone()).unwrap();
        }

        let mut drained = Vec::new();
        a.drain_completions(&mut drained);
        prop_assert!(
            drained.len() <= cap,
            "cap {} but {} unclaimed fire-and-forget completions drained",
            cap,
            drained.len()
        );
        prop_assert!(drained.iter().all(|c| c.tag == Tag(2)), "drain must not steal awaited ops");
        // Eviction is observable, and accounts exactly for the overflow.
        let evicted = a.stats().completions_evicted;
        prop_assert_eq!(evicted as usize, cap + extra - drained.len());
        // Waiter-registered operations are never evicted: every future still
        // resolves.
        for fut in waited_futures {
            let done = block_on(fut);
            prop_assert_eq!(done.status, Status::Ok);
        }
    }

    /// Wildcard (`ANY_SOURCE`/`ANY_TAG`) matching against a **deep**
    /// unexpected-message backlog (1k+ buffered messages, the linear scan
    /// of ROADMAP PR-2, now an O(1) list-head peek) stays FIFO-consistent
    /// with the naive linear-scan model: every peek and claim picks the
    /// globally oldest matching message, whatever selector mix and claim
    /// order follow.  Reserved (collective-space) tags participate too:
    /// `ANY_TAG` never observes them, while naming them exactly (with a
    /// concrete or wildcard source) always works.
    #[test]
    fn wildcard_peek_consistent_at_deep_unexpected_backlog(
        depth in 1000usize..1500,
        ops in proptest::collection::vec((0u8..3, 0u8..4), 1..40),
    ) {
        use push_pull_messaging::core::queues::{BufferQueue, UnexpectedKey};
        use push_pull_messaging::core::COLLECTIVE_TAG_BIT;

        let srcs = [ProcessId::new(0, 0), ProcessId::new(1, 0)];
        let tags = [Tag(0), Tag(1), Tag(COLLECTIVE_TAG_BIT | 2)];
        let mut real = BufferQueue::new();
        let mut model: Vec<(ProcessId, MessageId, Tag)> = Vec::new();
        for i in 0..depth {
            let src = srcs[i % srcs.len()];
            let msg_id = MessageId(i as u64);
            let tag = tags[i % tags.len()];
            real.insert(UnexpectedKey { src, msg_id }, tag);
            model.push((src, msg_id, tag));
        }
        for (sel_src, sel_tag) in ops {
            let src = match sel_src {
                0 => srcs[0],
                1 => srcs[1],
                _ => ANY_SOURCE,
            };
            let tag = match sel_tag {
                0 => tags[0],
                1 => tags[1],
                2 => tags[2],
                _ => ANY_TAG,
            };
            let model_hit = model
                .iter()
                .position(|&(s, _, t)| {
                    (src.is_any_source() || s == src)
                        && if tag.is_any() {
                            // The wildcard never matches the reserved
                            // (collective) half of the tag space.
                            !t.is_reserved()
                        } else {
                            t == tag
                        }
                });
            let peeked = real.peek_unexpected(src, tag);
            prop_assert_eq!(
                peeked.map(|(k, t)| (k.src, k.msg_id, t)),
                model_hit.map(|i| model[i]),
                "peek at backlog {}",
                real.len()
            );
            // Claim what was peeked, as the engine does on a match.
            let claimed = real.match_posted(src, tag);
            prop_assert_eq!(
                claimed.map(|k| k.msg_id),
                model_hit.map(|i| model.remove(i).1)
            );
            prop_assert_eq!(real.len(), model.len());
        }
    }

    /// A cancelled `RecvOp` is never completed afterwards: its only
    /// completion is `Cancelled`, and every message it would have matched is
    /// delivered to surviving receives instead.
    #[test]
    fn cancelled_recv_op_is_never_completed(
        count in 1usize..6,
        cancel_mask in 0u8..32,
        sizes in proptest::collection::vec(1usize..4000, 6..7),
    ) {
        let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(1 << 20);
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        let mut sender = Endpoint::new(a, cfg.clone());
        let mut receiver = Endpoint::new(b, cfg);

        let ops: Vec<RecvOp> = (0..count)
            .map(|_| receiver.post_recv(a, Tag(1), 4096).unwrap())
            .collect();
        let cancelled: Vec<RecvOp> = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| cancel_mask & (1 << i) != 0)
            .map(|(_, &op)| op)
            .collect();
        for &op in &cancelled {
            prop_assert!(receiver.cancel(op));
        }
        let survivors = count - cancelled.len();
        for size in sizes.iter().take(survivors) {
            sender.post_send(b, Tag(1), Bytes::from(vec![7u8; *size])).unwrap();
        }
        for _ in 0..10_000 {
            let mut progressed = false;
            while let Some(action) = sender.poll_action() {
                progressed = true;
                if let Action::TransmitFrame { frame, .. } = action {
                    receiver.handle_frame(a, frame);
                }
            }
            while let Some(action) = receiver.poll_action() {
                progressed = true;
                if let Action::TransmitFrame { frame, .. } = action {
                    sender.handle_frame(b, frame);
                }
            }
            if !progressed {
                break;
            }
        }
        let mut completed_ok = 0usize;
        while let Some(c) = receiver.poll_completion() {
            if let OpId::Recv(op) = c.op {
                if cancelled.contains(&op) {
                    prop_assert_eq!(
                        c.status,
                        Status::Cancelled,
                        "cancelled op may only report cancellation"
                    );
                } else {
                    prop_assert_eq!(c.status, Status::Ok);
                    completed_ok += 1;
                }
            }
        }
        prop_assert_eq!(completed_ok, survivors, "survivors all complete");
    }
}

/// Properties of the metrics plane ([`telemetry::LogHistogram`] /
/// [`telemetry::Counter`]): the histogram is lossless with respect to its
/// bucket bounds, merging is a bucketwise sum that never loses a sample,
/// and concurrent recorders never drop one either.
#[cfg(feature = "telemetry")]
mod telemetry_metrics {
    use super::*;
    use push_pull_messaging::core::telemetry::{
        bucket_bounds, bucket_of, Counter, HistogramSnapshot, LogHistogram, HIST_BUCKETS,
    };

    /// Samples spread across the full bucket range: a raw `u64` shifted
    /// right by a variable amount covers tiny and huge magnitudes alike.
    /// (The vendored proptest has no `prop_map`, so the shift is applied
    /// by [`widen`] inside the test body.)
    fn arb_samples() -> impl Strategy<Value = Vec<(u64, u32)>> {
        collection::vec((any::<u64>(), 0u32..64), 0..200)
    }

    fn widen(raw: Vec<(u64, u32)>) -> Vec<u64> {
        raw.into_iter().map(|(v, shift)| v >> shift).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Losslessness: every recorded sample is counted exactly once, in
        /// the one bucket whose inclusive bounds contain it.
        #[test]
        fn histogram_is_lossless_wrt_bucket_bounds(samples in arb_samples()) {
            let samples = widen(samples);
            let h = LogHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let snap = h.snapshot();
            prop_assert_eq!(snap.count(), samples.len() as u64, "no sample lost or duplicated");
            for i in 0..HIST_BUCKETS {
                let (lo, hi) = bucket_bounds(i);
                let expected = samples.iter().filter(|&&s| lo <= s && s <= hi).count() as u64;
                prop_assert_eq!(
                    snap.buckets[i], expected,
                    "bucket {} [{}, {}] must hold exactly the samples in bounds", i, lo, hi
                );
                prop_assert!(snap.buckets[i] == 0 || (bucket_of(lo) == i && bucket_of(hi) == i));
            }
        }

        /// Merge is a bucketwise sum: counts add, no bucket ever decreases,
        /// and the quantile bound stays monotone in `q`.
        #[test]
        fn histogram_merge_is_monotone(xs in arb_samples(), ys in arb_samples()) {
            let (xs, ys) = (widen(xs), widen(ys));
            let a = LogHistogram::new();
            let b = LogHistogram::new();
            for &s in &xs {
                a.record(s);
            }
            for &s in &ys {
                b.record(s);
            }
            let before = a.snapshot();
            let mut merged = before;
            merged.merge(&b.snapshot());
            prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
            for i in 0..HIST_BUCKETS {
                prop_assert!(merged.buckets[i] >= before.buckets[i], "merge never shrinks a bucket");
                prop_assert_eq!(merged.buckets[i], before.buckets[i] + b.snapshot().buckets[i]);
            }
            let mut prev = 0u64;
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let bound = merged.quantile_bound(q);
                prop_assert!(bound >= prev, "quantile bound monotone in q");
                prev = bound;
            }
            // Merging the empty histogram is the identity.
            let mut same = before;
            same.merge(&HistogramSnapshot::default());
            prop_assert_eq!(same, before);
        }

        /// Single-threaded `tick` hands out consecutive sampling tickets
        /// starting at the current count.
        #[test]
        fn counter_tick_is_a_fetch_add(start in 0u64..1000, n in 1u64..64) {
            let c = Counter::new();
            c.add(start);
            for i in 0..n {
                prop_assert_eq!(c.tick(), start + i);
            }
            prop_assert_eq!(c.get(), start + n);
        }
    }

    /// Concurrent recording never loses a sample: N threads hammer one
    /// histogram and one counter; the totals come out exact.  (The same
    /// property is model-checked exhaustively on a small schedule in
    /// `crates/core/tests/model_telemetry.rs`.)
    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let hist = std::sync::Arc::new(LogHistogram::new());
        let counter = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let hist = std::sync::Arc::clone(&hist);
                let counter = std::sync::Arc::clone(&counter);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        hist.record(t * PER_THREAD + i);
                        counter.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hist.snapshot().count(), THREADS * PER_THREAD);
        assert_eq!(counter.get(), THREADS * PER_THREAD);
    }
}
