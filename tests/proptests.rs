//! Property-based tests on the protocol's core invariants, exercised through
//! the public API of the facade crate.

use bytes::Bytes;
use proptest::prelude::*;
use push_pull_messaging::core::queues::Assembly;
use push_pull_messaging::core::reliability::{Frame, GbnConfig, GbnEvent, GoBackN};
use push_pull_messaging::core::wire::{Packet, PacketHeader, PacketKind, PushPart};
use push_pull_messaging::core::zbuf::pages_spanned;
use push_pull_messaging::core::{BtpPolicy, BtpSplit, MessageId, OptFlags, ProtocolMode};
use push_pull_messaging::prelude::*;

fn arb_mode() -> impl Strategy<Value = ProtocolMode> {
    prop_oneof![
        Just(ProtocolMode::PushZero),
        Just(ProtocolMode::PushPull),
        Just(ProtocolMode::PushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The BTP split always conserves the message length and never produces
    /// a negative-sized part, for any policy and message size.
    #[test]
    fn btp_split_conserves_length(
        mode in arb_mode(),
        btp1 in 0usize..4096,
        btp2 in 0usize..4096,
        overlap in any::<bool>(),
        len in 0usize..200_000,
    ) {
        let mut opts = OptFlags::full();
        opts.push_ack_overlap = overlap;
        let split = BtpSplit::plan(mode, BtpPolicy::split(btp1, btp2), opts, len);
        prop_assert_eq!(split.total(), len);
        prop_assert!(split.first_push <= len);
        prop_assert!(split.second_push_offset() + split.second_push <= len);
        prop_assert_eq!(split.pulled_offset() + split.pulled, len);
    }

    /// Wire round-trip: any packet that encodes must decode to itself.
    #[test]
    fn packet_roundtrip(
        kind in 0u8..5,
        msg_id in any::<u64>(),
        tag in any::<u32>(),
        total in 0u32..100_000,
        offset in 0u32..100_000,
        payload_len in 0usize..4096,
    ) {
        let kind = match kind {
            0 => PacketKind::Push(PushPart::First),
            1 => PacketKind::Push(PushPart::Second),
            2 => PacketKind::PullRequest,
            3 => PacketKind::PullData,
            _ => PacketKind::Control,
        };
        let payload_len = if kind == PacketKind::PullRequest { 0 } else { payload_len };
        let header = PacketHeader {
            kind,
            src: ProcessId::new(0, 1),
            dst: ProcessId::new(1, 0),
            msg_id: MessageId(msg_id),
            tag: Tag(tag),
            total_len: total,
            eager_len: total.min(760),
            offset,
            payload_len: payload_len as u32,
        };
        let pkt = Packet::new(header, Bytes::from(vec![0xA5u8; payload_len])).unwrap();
        let decoded = Packet::decode(pkt.encode()).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    /// Go-back-N frame round-trip.
    #[test]
    fn frame_roundtrip(seq in any::<u64>(), len in 0usize..2048) {
        let header = PacketHeader {
            kind: PacketKind::PullData,
            src: ProcessId::new(0, 0),
            dst: ProcessId::new(1, 0),
            msg_id: MessageId(9),
            tag: Tag(2),
            total_len: len as u32,
            eager_len: 0,
            offset: 0,
            payload_len: len as u32,
        };
        let frame = Frame::Data {
            seq,
            packet: Packet::new(header, Bytes::from(vec![1u8; len])).unwrap(),
        };
        prop_assert_eq!(Frame::decode(frame.encode()).unwrap(), frame);
    }

    /// Go-back-N delivers every packet exactly once, in order, under any
    /// loss pattern (as long as losses eventually stop).
    #[test]
    fn go_back_n_exactly_once_under_loss(
        count in 1usize..30,
        loss_pattern in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let cfg = GbnConfig { window: 8, rto_us: 10, max_retries: 10_000 };
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..count {
            let header = PacketHeader {
                kind: PacketKind::PullData,
                src: ProcessId::new(0, 0),
                dst: ProcessId::new(1, 0),
                msg_id: MessageId(i as u64),
                tag: Tag(0),
                total_len: 8,
                eager_len: 0,
                offset: 0,
                payload_len: 8,
            };
            sender.send(Packet::new(header, Bytes::from(vec![i as u8; 8])).unwrap(), &mut events);
        }
        let mut delivered: Vec<u64> = Vec::new();
        let mut drop_iter = loss_pattern.into_iter();
        let mut pending_timer = None;
        let mut steps = 0;
        while !sender.idle() {
            steps += 1;
            prop_assert!(steps < 10_000, "did not converge");
            let outgoing: Vec<GbnEvent> = std::mem::take(&mut events);
            let mut to_receiver = Vec::new();
            for e in outgoing {
                match e {
                    GbnEvent::Transmit(f) => {
                        let drop = matches!(f, Frame::Data { .. }) && drop_iter.next().unwrap_or(false);
                        if !drop {
                            to_receiver.push(f);
                        }
                    }
                    GbnEvent::SetTimer { generation, .. } => pending_timer = Some(generation),
                    GbnEvent::CancelTimer { .. } => pending_timer = None,
                    _ => {}
                }
            }
            let mut recv_events = Vec::new();
            for f in to_receiver {
                receiver.on_frame(f, &mut recv_events);
            }
            for e in recv_events {
                match e {
                    GbnEvent::Deliver(p) => delivered.push(p.header.msg_id.0),
                    GbnEvent::Transmit(f) => sender.on_frame(f, &mut events),
                    _ => {}
                }
            }
            if events.is_empty() && !sender.idle() {
                if let Some(generation) = pending_timer.take() {
                    sender.on_timeout(generation, &mut events);
                }
            }
        }
        prop_assert_eq!(delivered, (0..count as u64).collect::<Vec<_>>());
    }

    /// Message reassembly covers exactly the bytes written, regardless of
    /// fragment order, overlap, or duplication.
    #[test]
    fn assembly_tracks_coverage_exactly(
        total in 1usize..8192,
        fragments in proptest::collection::vec((0usize..8192, 1usize..2048), 1..24),
    ) {
        let mut assembly = Assembly::new(total);
        let mut covered = vec![false; total];
        for (offset, len) in fragments {
            let data = vec![0xCDu8; len];
            assembly.write_at(offset, &data);
            for i in offset..(offset + len).min(total) {
                covered[i] = true;
            }
        }
        let expected = covered.iter().filter(|&&c| c).count();
        prop_assert_eq!(assembly.received(), expected);
        prop_assert_eq!(assembly.is_complete(), expected == total);
    }

    /// The page-span helper agrees with a brute-force page enumeration.
    #[test]
    fn pages_spanned_matches_bruteforce(addr in 0u64..1_000_000, len in 0usize..100_000) {
        let fast = pages_spanned(addr, len, 4096);
        let brute = if len == 0 {
            0
        } else {
            let first = addr / 4096;
            let last = (addr + len as u64 - 1) / 4096;
            (last - first + 1) as usize
        };
        prop_assert_eq!(fast, brute);
    }

    /// End-to-end engine property: for any mode, size, and posting order, the
    /// delivered bytes equal the sent bytes.
    #[test]
    fn engine_delivers_exact_bytes(
        mode in arb_mode(),
        len in 0usize..20_000,
        recv_first in any::<bool>(),
        seed in any::<u8>(),
    ) {
        let cfg = ProtocolConfig::paper_internode()
            .with_mode(mode)
            .with_pushed_buffer(256 * 1024);
        let a = ProcessId::new(0, 0);
        let b = ProcessId::new(1, 0);
        let mut sender = Endpoint::new(a, cfg.clone());
        let mut receiver = Endpoint::new(b, cfg);
        let data = Bytes::from((0..len).map(|i| (i as u8).wrapping_add(seed)).collect::<Vec<u8>>());

        if recv_first {
            receiver.post_recv(a, Tag(1), len).unwrap();
            sender.post_send(b, Tag(1), data.clone()).unwrap();
        } else {
            sender.post_send(b, Tag(1), data.clone()).unwrap();
            receiver.post_recv(a, Tag(1), len).unwrap();
        }

        let mut delivered = None;
        for _ in 0..10_000 {
            let mut progressed = false;
            while let Some(action) = sender.poll_action() {
                progressed = true;
                match action {
                    Action::TransmitFrame { frame, .. } => receiver.handle_frame(a, frame),
                    Action::Transmit { packet, .. } => receiver.handle_packet(a, packet),
                    _ => {}
                }
            }
            while let Some(action) = receiver.poll_action() {
                progressed = true;
                match action {
                    Action::TransmitFrame { frame, .. } => sender.handle_frame(b, frame),
                    Action::Transmit { packet, .. } => sender.handle_packet(b, packet),
                    Action::RecvComplete { data, .. } => delivered = Some(data),
                    _ => {}
                }
            }
            if !progressed {
                break;
            }
        }
        prop_assert_eq!(delivered.expect("message delivered"), data);
    }
}
