//! Property tests for the async waker path: random interleavings of posted
//! receives, spurious polls, mid-await cancellations, abandoned futures, and
//! matching sends on the deterministic loopback cluster must never surface a
//! stale, duplicate, or mismatched completion; every completion that lands
//! after a task registered its waker must actually wake it; and a dropped
//! future's completion must flow back to the ordinary drain path instead of
//! staying pinned for a waiter that no longer exists.

use bytes::Bytes;
use proptest::prelude::*;
use push_pull_messaging::core::ops::Completion;
use push_pull_messaging::prelude::*;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Counts every wake; stands in for an executor's ready queue.
struct CountingWaker(AtomicUsize);

impl CountingWaker {
    fn pair() -> (Arc<Self>, Waker) {
        let inner = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(inner.clone());
        (inner, waker)
    }

    fn count(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

impl Wake for CountingWaker {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

struct PendingRecv<'a> {
    fut: OpFuture<'a, LoopbackEndpoint>,
    tag: u32,
    /// `true` once `cancel` accepted the operation.
    cancelled: bool,
    /// `true` if some poll returned `Pending` (a waker is registered).
    registered: bool,
}

impl PendingRecv<'_> {
    fn recv_op(&self) -> RecvOp {
        match self.fut.op() {
            OpId::Recv(op) => op,
            OpId::Send(_) => unreachable!("receives only"),
        }
    }
}

/// Checks one resolved completion against the operation's known state.
fn check_resolution(pending: &PendingRecv<'_>, completion: &Completion) {
    assert_eq!(completion.op, pending.fut.op(), "completion op id");
    if pending.cancelled {
        assert_eq!(
            completion.status,
            Status::Cancelled,
            "cancelled op must resolve Cancelled"
        );
        assert!(completion.data.is_none(), "cancelled op must carry no data");
    } else {
        assert_eq!(completion.status, Status::Ok, "matched op must resolve Ok");
        assert_eq!(completion.tag, Tag(pending.tag), "completion tag");
        assert!(completion.data.is_some(), "matched op must carry data");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the interleaving of posts, spurious polls, cancellations,
    /// abandoned awaits, and sends: every held operation resolves exactly
    /// once with its own completion and never again afterwards, every
    /// completion landing after a registration wakes the registered waker,
    /// and abandoned operations' completions drain normally.
    #[test]
    fn spurious_wakes_and_cancellation_never_yield_stale_completions(
        ops in proptest::collection::vec((0u8..5, 0u32..3), 1..80),
    ) {
        let cluster = LoopbackCluster::new(
            ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024),
        );
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));
        let (counter, waker) = CountingWaker::pair();

        let mut pending: Vec<PendingRecv<'_>> = Vec::new();
        let mut abandoned: Vec<(RecvOp, bool)> = Vec::new();
        let mut resolved_after_registration = 0usize;

        // Polls `pending[i]`'s held future once, enforcing the invariants;
        // returns `true` when the entry resolved and was removed.  (Failures
        // assert directly: the vendored proptest reports via panics.)
        let resolve_if_ready = |pending: &mut Vec<PendingRecv<'_>>,
                                i: usize,
                                resolved_after_registration: &mut usize|
         -> bool {
            let mut cx = Context::from_waker(&waker);
            match Pin::new(&mut pending[i].fut).poll(&mut cx) {
                Poll::Ready(completion) => {
                    check_resolution(&pending[i], &completion);
                    assert!(
                        b.take_completion(completion.op).is_none(),
                        "a claimed completion must not be claimable again"
                    );
                    if pending[i].registered {
                        *resolved_after_registration += 1;
                    }
                    pending.remove(i);
                    true
                }
                Poll::Pending => {
                    pending[i].registered = true;
                    false
                }
            }
        };

        for (kind, t) in ops {
            match kind {
                // Post an exact-match receive and poll its future once (a
                // receive matching an already-buffered unexpected message
                // resolves on this very first poll).
                0 => {
                    let fut = b
                        .recv(a.local_id(), Tag(t), 4096, TruncationPolicy::Error)
                        .unwrap();
                    pending.push(PendingRecv { fut, tag: t, cancelled: false, registered: false });
                    let i = pending.len() - 1;
                    resolve_if_ready(&mut pending, i, &mut resolved_after_registration);
                }
                // Spurious poll of an arbitrary in-flight operation: must
                // never fabricate a completion.
                1 if !pending.is_empty() => {
                    let i = t as usize % pending.len();
                    resolve_if_ready(&mut pending, i, &mut resolved_after_registration);
                }
                // Cancel an arbitrary in-flight operation mid-await.  A
                // `true` pins its fate to Cancelled; `false` means it
                // already matched and must still resolve normally.
                2 if !pending.is_empty() => {
                    let i = t as usize % pending.len();
                    if !pending[i].cancelled && b.cancel(pending[i].recv_op()) {
                        pending[i].cancelled = true;
                    }
                }
                // Send a matching message (the loopback cluster routes it to
                // quiescence synchronously, waking any registered waker).
                3 => {
                    a.post_send(b.local_id(), Tag(t), Bytes::from(vec![t as u8; 64])).unwrap();
                }
                // Abandon an await: drop the future mid-flight.  The drop
                // must deregister, handing the operation's eventual
                // completion back to the ordinary drain flow.
                4 if !pending.is_empty() => {
                    let i = t as usize % pending.len();
                    let entry = pending.remove(i);
                    abandoned.push((entry.recv_op(), entry.cancelled));
                    // `entry.fut` drops here.
                }
                _ => {}
            }
        }

        // Wind down: cancel whatever is still unmatched (held and
        // abandoned), then every held operation must resolve on one final
        // poll.
        for p in &mut pending {
            if !p.cancelled && b.cancel(p.recv_op()) {
                p.cancelled = true;
            }
        }
        for (op, cancelled) in &mut abandoned {
            if !*cancelled && b.cancel(*op) {
                *cancelled = true;
            }
        }
        while !pending.is_empty() {
            prop_assert!(
                resolve_if_ready(&mut pending, 0, &mut resolved_after_registration),
                "every held operation must resolve after cancellation or match"
            );
        }

        // Abandoned operations are nobody's await anymore: their
        // completions must surface through the plain drain path (a pinned,
        // undrainable completion here means the dropped future leaked its
        // waker registration).
        let mut drained = Vec::new();
        b.drain_completions(&mut drained);
        for (op, _) in &abandoned {
            prop_assert!(
                drained.iter().any(|c| c.op == OpId::Recv(*op)),
                "abandoned op {op} must drain normally"
            );
        }

        // Every completion that landed after a Pending poll registered the
        // waker must have woken it (abandoned awaits resolve via drain and
        // are not counted).
        prop_assert!(
            counter.count() >= resolved_after_registration,
            "wakes {} < resolutions after registration {}",
            counter.count(),
            resolved_after_registration
        );
    }
}
