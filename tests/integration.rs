//! Cross-crate integration tests: the protocol engine driven by the
//! simulator and by the host backend must agree on behaviour, and the
//! simulated figures must keep the qualitative shapes the paper reports.

use bytes::Bytes;
use ppmsg_sim::experiments::{
    bandwidth_sweep, early_late_test, fig3_intranode, fig4_internode, headline_numbers,
    EarlyLateVariant,
};
use push_pull_messaging::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 7 % 256) as u8).collect::<Vec<u8>>())
}

#[test]
fn host_and_sim_backends_both_deliver_all_modes() {
    for mode in [
        ProtocolMode::PushZero,
        ProtocolMode::PushPull,
        ProtocolMode::PushAll,
    ] {
        // Host backend, intranode fabric.
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode()
                .with_mode(mode)
                .with_pushed_buffer(128 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let data = payload(10_000);
        a.send(b.id(), Tag(1), data.clone());
        assert_eq!(
            b.recv(a.id(), Tag(1), 10_000, TIMEOUT).expect("host recv"),
            data,
            "host backend, mode {mode:?}"
        );

        // Simulated cluster, internode path.
        let protocol = ProtocolConfig::paper_internode()
            .with_mode(mode)
            .with_pushed_buffer(128 * 1024);
        let cfg = ClusterConfig::paper_testbed(protocol);
        let mut sim = SimCluster::new(cfg);
        let pa = ProcessId::new(0, 0);
        let pb = ProcessId::new(1, 0);
        sim.add_process(ProcessScript {
            process: pa,
            ops: vec![Op::Send {
                peer: pb,
                tag: Tag(1),
                len: 10_000,
            }],
        });
        sim.add_process(ProcessScript {
            process: pb,
            ops: vec![Op::Recv {
                peer: pa,
                tag: Tag(1),
                len: 10_000,
            }],
        });
        let report = sim.run();
        assert!(sim.all_finished(), "sim backend, mode {mode:?}");
        let stats = report.endpoint_stats[&pb];
        assert_eq!(stats.recvs_completed, 1, "sim backend, mode {mode:?}");
    }
}

#[test]
fn udp_and_intranode_backends_interoperate_with_same_engine_config() {
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let a = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let b = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
    a.add_peer(b.id(), b.local_addr().unwrap());
    b.add_peer(a.id(), a.local_addr().unwrap());
    for len in [1usize, 80, 760, 1460, 8192, 40_000] {
        let data = payload(len);
        a.send(b.id(), Tag(4), data.clone());
        assert_eq!(
            b.recv(a.id(), Tag(4), len, TIMEOUT).unwrap(),
            data,
            "len {len}"
        );
    }
}

#[test]
fn figure3_intranode_latency_shapes() {
    let points = fig3_intranode(&[10, 1000, 4000, 8192], 15);
    // Latencies rise with size for every mechanism and stay within the
    // intranode regime (tens of microseconds, not milliseconds).
    for p in &points {
        for (label, v) in &p.series {
            assert!(*v > 0.0 && *v < 500.0, "{label} at {} B = {v}", p.size);
        }
    }
    let small = &points[0];
    let big = &points[3];
    for label in ["push-zero", "push-pull", "push-all"] {
        assert!(big.get(label).unwrap() > small.get(label).unwrap());
    }
    // Paper: the minimum latency for a 10-byte message is 7.5 us; ours must
    // be the same order of magnitude.
    assert!(small.get("push-pull").unwrap() < 30.0);
}

#[test]
fn figure4_optimisations_help_large_messages() {
    let points = fig4_internode(&[1400], 15);
    let p = &points[0];
    let no_opt = p.get("no optimization").unwrap();
    let mask = p.get("mask only").unwrap();
    let overlap = p.get("overlap only").unwrap();
    let full = p.get("full optimization").unwrap();
    assert!(mask <= no_opt, "masking must not hurt ({mask} vs {no_opt})");
    assert!(
        overlap <= no_opt,
        "overlapping must not hurt ({overlap} vs {no_opt})"
    );
    assert!(
        full <= mask && full <= overlap,
        "full optimisation must be best"
    );
    // Paper: overlapping hides the (larger) acknowledge latency, masking the
    // (smaller) translation overhead — so overlapping helps at least as much.
    assert!(
        overlap <= mask + 1.0,
        "overlap ({overlap}) should beat mask ({mask})"
    );
}

#[test]
fn figure6_late_receiver_collapse_and_recovery() {
    let late = early_late_test(EarlyLateVariant::Late, &[2048, 8192], 5);
    // Below the pushed-buffer size everything is comparable.
    let small = &late[0];
    assert!(
        small.get("push-all/late").unwrap() < small.get("push-pull/late").unwrap() * 1.5,
        "2 KiB fits the pushed buffer; push-all must not collapse yet"
    );
    // Beyond it, Push-All pays go-back-N recovery and collapses; Push-Pull
    // keeps working and beats Push-Zero.
    let big = &late[1];
    let push_all = big.get("push-all/late").unwrap();
    let push_pull = big.get("push-pull/late").unwrap();
    let push_zero = big.get("push-zero/late").unwrap();
    assert!(
        push_all > push_pull * 2.0,
        "push-all {push_all} vs push-pull {push_pull}"
    );
    assert!(
        push_pull <= push_zero * 1.05,
        "push-pull {push_pull} vs push-zero {push_zero}"
    );
}

#[test]
fn bandwidth_respects_physical_limits() {
    // Internode bandwidth can approach but never exceed the 12.5 MB/s wire.
    for p in bandwidth_sweep(false, &[8192, 32768], 15) {
        assert!(
            p.mb_per_s > 3.0 && p.mb_per_s < 12.5,
            "{} B -> {} MB/s",
            p.size,
            p.mb_per_s
        );
    }
    // Intranode bandwidth is memory-bound: far above the wire, below the bus.
    for p in bandwidth_sweep(true, &[4000, 8192], 15) {
        assert!(
            p.mb_per_s > 50.0 && p.mb_per_s < 533.0,
            "{} B -> {} MB/s",
            p.size,
            p.mb_per_s
        );
    }
}

#[test]
fn headline_numbers_reproduced_within_tolerance() {
    let h = headline_numbers(20);
    // Within a factor of ~2 of the paper on every headline metric.
    assert!(
        (3.0..16.0).contains(&h.intranode_latency_us),
        "{}",
        h.intranode_latency_us
    );
    assert!(
        (17.0..70.0).contains(&h.internode_latency_us),
        "{}",
        h.internode_latency_us
    );
    assert!(
        h.intranode_peak_bw_mb_s > 150.0,
        "{}",
        h.intranode_peak_bw_mb_s
    );
    assert!(
        (6.0..12.5).contains(&h.internode_peak_bw_mb_s),
        "{}",
        h.internode_peak_bw_mb_s
    );
    assert!(
        (6.0..26.0).contains(&h.translation_overhead_us),
        "{}",
        h.translation_overhead_us
    );
}
