//! Cross-crate integration tests: the protocol engine driven by the
//! simulator and by the host backend must agree on behaviour, heterogeneous
//! backends must be drivable behind one `Box<dyn RawTransport>` type, and
//! the simulated figures must keep the qualitative shapes the paper
//! reports.  (Per-backend behavioural conformance lives in
//! `tests/conformance.rs`, written once and instantiated per backend.)

use bytes::Bytes;
use ppmsg_sim::experiments::{
    bandwidth_sweep, early_late_test, fig3_intranode, fig4_internode, headline_numbers,
    EarlyLateVariant,
};
use push_pull_messaging::prelude::*;
use std::time::Duration;

// Generous: the suite runs many test binaries in parallel (and CI runs the
// whole matrix), so a UDP retransmission path can be starved for seconds
// without anything being wrong.  Tests normally finish in milliseconds; the
// timeout only bounds genuine failures.
const TIMEOUT: Duration = Duration::from_secs(30);

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 7 % 256) as u8).collect::<Vec<u8>>())
}

#[test]
fn host_and_sim_backends_both_deliver_all_modes() {
    for mode in [
        ProtocolMode::PushZero,
        ProtocolMode::PushPull,
        ProtocolMode::PushAll,
    ] {
        // Host backend, intranode fabric.
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode()
                .with_mode(mode)
                .with_pushed_buffer(128 * 1024),
        );
        let a = Endpoint::new(cluster.add_endpoint(0));
        let b = Endpoint::new(cluster.add_endpoint(1));
        let data = payload(10_000);
        a.post_send(b.local_id(), Tag(1), data.clone()).unwrap();
        assert_eq!(
            b.recv_blocking(a.local_id(), Tag(1), 10_000, TIMEOUT)
                .expect("host recv"),
            data,
            "host backend, mode {mode:?}"
        );

        // Simulated cluster, internode path.
        let protocol = ProtocolConfig::paper_internode()
            .with_mode(mode)
            .with_pushed_buffer(128 * 1024);
        let cfg = ClusterConfig::paper_testbed(protocol);
        let mut sim = SimCluster::new(cfg);
        let pa = ProcessId::new(0, 0);
        let pb = ProcessId::new(1, 0);
        sim.add_process(ProcessScript {
            process: pa,
            ops: vec![Op::Send {
                peer: pb,
                tag: Tag(1),
                len: 10_000,
            }],
        });
        sim.add_process(ProcessScript {
            process: pb,
            ops: vec![Op::Recv {
                peer: pa,
                tag: Tag(1),
                len: 10_000,
            }],
        });
        let report = sim.run();
        assert!(sim.all_finished(), "sim backend, mode {mode:?}");
        let stats = report.endpoint_stats[&pb];
        assert_eq!(stats.recvs_completed, 1, "sim backend, mode {mode:?}");
    }
}

/// One type-erased endpoint: any backend behind one concrete type.
type DynEndpoint = Endpoint<Box<dyn RawTransport>>;

/// A non-generic exchange over the type-erased front-end: this function
/// compiles against `Endpoint<Box<dyn RawTransport>>` only — no type
/// parameter, no monomorphisation per backend.
fn exchange_dyn(a: &DynEndpoint, b: &DynEndpoint, label: &str) {
    let data = payload(4096);
    let recv = b
        .post_recv(a.local_id(), Tag(5), 4096, TruncationPolicy::Error)
        .unwrap();
    a.send_blocking(b.local_id(), Tag(5), data.clone(), TIMEOUT)
        .unwrap_or_else(|| panic!("{label}: dyn send"));
    let done = b
        .wait(OpId::Recv(recv), TIMEOUT)
        .unwrap_or_else(|| panic!("{label}: dyn recv"));
    assert_eq!(done.status, Status::Ok, "{label}");
    assert_eq!(done.data.as_deref(), Some(&data[..]), "{label}");
    // The async combinators work unchanged through the erased type.
    let echoed = block_on(async {
        let recv = a
            .recv(b.local_id(), Tag(6), 4096, TruncationPolicy::Error)
            .unwrap();
        b.send(a.local_id(), Tag(6), data.clone()).unwrap().await;
        recv.await
    });
    assert_eq!(echoed.data.as_deref(), Some(&data[..]), "{label}");
}

/// `Box<dyn RawTransport>` is a first-class backend: endpoints of **two
/// different backends** (the intranode shared-memory fabric and the
/// sim-cluster loopback binding) live in one routing table behind one
/// concrete type and are driven by one non-generic function.
#[test]
fn dyn_raw_transport_routes_over_two_backends_behind_one_type() {
    let host = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(128 * 1024),
    );
    let loopback =
        LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024));

    // One table, two backends, one element type.
    let table: Vec<(&str, DynEndpoint, DynEndpoint)> = vec![
        (
            "host",
            Endpoint::new(host.add_endpoint(0)).boxed(),
            Endpoint::new(host.add_endpoint(1)).boxed(),
        ),
        (
            "loopback",
            Endpoint::new(loopback.add_endpoint(ProcessId::new(0, 0))).boxed(),
            Endpoint::new(loopback.add_endpoint(ProcessId::new(1, 0))).boxed(),
        ),
    ];
    for (label, a, b) in &table {
        exchange_dyn(a, b, label);
    }
}

/// N async receives posted interleaved (wildcard and exact) complete in
/// posting order on the deterministic loopback cluster, whatever order the
/// driver awaits them in.
#[test]
fn loopback_async_receives_complete_in_posting_order() {
    use push_pull_messaging::core::{ANY_SOURCE, ANY_TAG};
    use std::sync::{Arc as StdArc, Mutex};

    const N: usize = 16;
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024));
    let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
    let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));

    let order: StdArc<Mutex<Vec<usize>>> = StdArc::new(Mutex::new(Vec::new()));
    let mut driver = Driver::new();

    // One task per receive, spawned in posting order; every receive matches
    // every message (all wildcards on the same tag), so completion order is
    // exactly posting order.
    for _ in 0..N {
        let b = b.clone();
        let order = order.clone();
        driver.spawn(async move {
            let done = b
                .recv(ANY_SOURCE, ANY_TAG, 64, TruncationPolicy::Error)
                .unwrap()
                .await;
            assert_eq!(done.status, Status::Ok);
            // The sender encodes the message's sequence number in its first
            // byte; receive i must get message i.
            order.lock().unwrap().push(done.data.unwrap()[0] as usize);
        });
    }
    // Let every receive get posted (tasks run in spawn order), then send the
    // numbered messages.
    driver.run_until_stalled();
    {
        let a = a.clone();
        let b_id = b.local_id();
        driver.spawn(async move {
            for i in 0..N {
                a.send(b_id, Tag(1), Bytes::from(vec![i as u8; 8]))
                    .unwrap()
                    .await;
            }
        });
    }
    driver.run();
    assert_eq!(
        *order.lock().unwrap(),
        (0..N).collect::<Vec<_>>(),
        "interleaved async receives must complete in posting order"
    );
}

/// A long-lived driver spawning one task per exchange reuses retired task
/// slots (bounded by peak concurrency, not lifetime spawn count), and a
/// finished task's stale waker can never poke the task that reuses its slot.
#[test]
fn driver_reuses_task_slots_across_many_spawns() {
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024));
    let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
    let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));
    let mut driver = Driver::new();
    for i in 0..100u32 {
        let (a, b) = (a.clone(), b.clone());
        driver.spawn(async move {
            let recv = b
                .recv(a.local_id(), Tag(1), 64, TruncationPolicy::Error)
                .unwrap();
            a.send(b.local_id(), Tag(1), Bytes::from(vec![i as u8; 8]))
                .unwrap()
                .await;
            let done = recv.await;
            assert_eq!(done.data.unwrap()[0], i as u8);
        });
        driver.run();
        assert_eq!(driver.live(), 0, "round {i}");
    }
    assert_eq!(
        driver.slots(),
        1,
        "sequential spawn/run churn must reuse one slot"
    );
}

#[test]
fn udp_and_intranode_backends_interoperate_with_same_engine_config() {
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let a = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let b = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
    a.add_peer(b.id(), b.local_addr().unwrap());
    b.add_peer(a.id(), a.local_addr().unwrap());
    let (a, b) = (Endpoint::new(a), Endpoint::new(b));
    for len in [1usize, 80, 760, 1460, 8192, 40_000] {
        let data = payload(len);
        a.post_send(b.local_id(), Tag(4), data.clone()).unwrap();
        assert_eq!(
            b.recv_blocking(a.local_id(), Tag(4), len, TIMEOUT).unwrap(),
            data,
            "len {len}"
        );
    }
}

/// Per-endpoint protocol overrides through a backend `*_with` constructor:
/// a `gbn_window` / `eager_threshold` override shapes one endpoint's engine
/// without touching its cluster siblings.
#[test]
fn endpoint_config_overrides_protocol_per_endpoint() {
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024));
    // `a` pushes everything below 2 KiB eagerly; `c` keeps the paper's
    // 80+680 split.
    let a = Endpoint::new(cluster.add_endpoint_with(
        ProcessId::new(0, 0),
        &EndpointConfig::new().eager_threshold(2048).gbn_window(4),
    ));
    let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
    let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(2, 0)));

    let data = payload(1500);
    // From the eager endpoint: the whole 1500-byte message is pushed (no
    // pull phase), even though the cluster default would pull past 760.
    let recv = b
        .post_recv(a.local_id(), Tag(1), 1500, TruncationPolicy::Error)
        .unwrap();
    a.post_send(b.local_id(), Tag(1), data.clone()).unwrap();
    let done = b.wait(OpId::Recv(recv), TIMEOUT).expect("eager delivery");
    assert_eq!(done.data.as_deref(), Some(&data[..]));
    assert_eq!(a.stats().pull_requests_served, 0, "nothing to pull");

    // From the default endpoint the same message needs the pull phase.
    let recv = b
        .post_recv(c.local_id(), Tag(2), 1500, TruncationPolicy::Error)
        .unwrap();
    c.post_send(b.local_id(), Tag(2), data.clone()).unwrap();
    let done = b.wait(OpId::Recv(recv), TIMEOUT).expect("pulled delivery");
    assert_eq!(done.data.as_deref(), Some(&data[..]));
    assert_eq!(c.stats().pull_requests_served, 1, "default path pulls");
}

#[test]
fn figure3_intranode_latency_shapes() {
    let points = fig3_intranode(&[10, 1000, 4000, 8192], 15);
    // Latencies rise with size for every mechanism and stay within the
    // intranode regime (tens of microseconds, not milliseconds).
    for p in &points {
        for (label, v) in &p.series {
            assert!(*v > 0.0 && *v < 500.0, "{label} at {} B = {v}", p.size);
        }
    }
    let small = &points[0];
    let big = &points[3];
    for label in ["push-zero", "push-pull", "push-all"] {
        assert!(big.get(label).unwrap() > small.get(label).unwrap());
    }
    // Paper: the minimum latency for a 10-byte message is 7.5 us; ours must
    // be the same order of magnitude.
    assert!(small.get("push-pull").unwrap() < 30.0);
}

#[test]
fn figure4_optimisations_help_large_messages() {
    let points = fig4_internode(&[1400], 15);
    let p = &points[0];
    let no_opt = p.get("no optimization").unwrap();
    let mask = p.get("mask only").unwrap();
    let overlap = p.get("overlap only").unwrap();
    let full = p.get("full optimization").unwrap();
    assert!(mask <= no_opt, "masking must not hurt ({mask} vs {no_opt})");
    assert!(
        overlap <= no_opt,
        "overlapping must not hurt ({overlap} vs {no_opt})"
    );
    assert!(
        full <= mask && full <= overlap,
        "full optimisation must be best"
    );
    // Paper: overlapping hides the (larger) acknowledge latency, masking the
    // (smaller) translation overhead — so overlapping helps at least as much.
    assert!(
        overlap <= mask + 1.0,
        "overlap ({overlap}) should beat mask ({mask})"
    );
}

#[test]
fn figure6_late_receiver_collapse_and_recovery() {
    let late = early_late_test(EarlyLateVariant::Late, &[2048, 8192], 5);
    // Below the pushed-buffer size everything is comparable.
    let small = &late[0];
    assert!(
        small.get("push-all/late").unwrap() < small.get("push-pull/late").unwrap() * 1.5,
        "2 KiB fits the pushed buffer; push-all must not collapse yet"
    );
    // Beyond it, Push-All pays go-back-N recovery and collapses; Push-Pull
    // keeps working and beats Push-Zero.
    let big = &late[1];
    let push_all = big.get("push-all/late").unwrap();
    let push_pull = big.get("push-pull/late").unwrap();
    let push_zero = big.get("push-zero/late").unwrap();
    assert!(
        push_all > push_pull * 2.0,
        "push-all {push_all} vs push-pull {push_pull}"
    );
    assert!(
        push_pull <= push_zero * 1.05,
        "push-pull {push_pull} vs push-zero {push_zero}"
    );
}

#[test]
fn bandwidth_respects_physical_limits() {
    // Internode bandwidth can approach but never exceed the 12.5 MB/s wire.
    for p in bandwidth_sweep(false, &[8192, 32768], 15) {
        assert!(
            p.mb_per_s > 3.0 && p.mb_per_s < 12.5,
            "{} B -> {} MB/s",
            p.size,
            p.mb_per_s
        );
    }
    // Intranode bandwidth is memory-bound: far above the wire, below the bus.
    for p in bandwidth_sweep(true, &[4000, 8192], 15) {
        assert!(
            p.mb_per_s > 50.0 && p.mb_per_s < 533.0,
            "{} B -> {} MB/s",
            p.size,
            p.mb_per_s
        );
    }
}

#[test]
fn headline_numbers_reproduced_within_tolerance() {
    let h = headline_numbers(20);
    // Within a factor of ~2 of the paper on every headline metric.
    assert!(
        (3.0..16.0).contains(&h.intranode_latency_us),
        "{}",
        h.intranode_latency_us
    );
    assert!(
        (17.0..70.0).contains(&h.internode_latency_us),
        "{}",
        h.internode_latency_us
    );
    assert!(
        h.intranode_peak_bw_mb_s > 150.0,
        "{}",
        h.intranode_peak_bw_mb_s
    );
    assert!(
        (6.0..12.5).contains(&h.internode_peak_bw_mb_s),
        "{}",
        h.internode_peak_bw_mb_s
    );
    assert!(
        (6.0..26.0).contains(&h.translation_overhead_us),
        "{}",
        h.translation_overhead_us
    );
}
