//! Cross-crate integration tests: the protocol engine driven by the
//! simulator and by the host backend must agree on behaviour, and the
//! simulated figures must keep the qualitative shapes the paper reports.

use bytes::Bytes;
use ppmsg_sim::experiments::{
    bandwidth_sweep, early_late_test, fig3_intranode, fig4_internode, headline_numbers,
    EarlyLateVariant,
};
use push_pull_messaging::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 7 % 256) as u8).collect::<Vec<u8>>())
}

#[test]
fn host_and_sim_backends_both_deliver_all_modes() {
    for mode in [
        ProtocolMode::PushZero,
        ProtocolMode::PushPull,
        ProtocolMode::PushAll,
    ] {
        // Host backend, intranode fabric.
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode()
                .with_mode(mode)
                .with_pushed_buffer(128 * 1024),
        );
        let a = cluster.add_endpoint(0);
        let b = cluster.add_endpoint(1);
        let data = payload(10_000);
        a.send(b.id(), Tag(1), data.clone());
        assert_eq!(
            b.recv(a.id(), Tag(1), 10_000, TIMEOUT).expect("host recv"),
            data,
            "host backend, mode {mode:?}"
        );

        // Simulated cluster, internode path.
        let protocol = ProtocolConfig::paper_internode()
            .with_mode(mode)
            .with_pushed_buffer(128 * 1024);
        let cfg = ClusterConfig::paper_testbed(protocol);
        let mut sim = SimCluster::new(cfg);
        let pa = ProcessId::new(0, 0);
        let pb = ProcessId::new(1, 0);
        sim.add_process(ProcessScript {
            process: pa,
            ops: vec![Op::Send {
                peer: pb,
                tag: Tag(1),
                len: 10_000,
            }],
        });
        sim.add_process(ProcessScript {
            process: pb,
            ops: vec![Op::Recv {
                peer: pa,
                tag: Tag(1),
                len: 10_000,
            }],
        });
        let report = sim.run();
        assert!(sim.all_finished(), "sim backend, mode {mode:?}");
        let stats = report.endpoint_stats[&pb];
        assert_eq!(stats.recvs_completed, 1, "sim backend, mode {mode:?}");
    }
}

/// Exercises the shared `Transport` front-end on any backend: exact and
/// wildcard matching, caller-owned buffers, cancellation, and batch
/// completion draining.  The same function runs against the intranode
/// fabric, the UDP backend, and the sim-cluster loopback binding.
fn exercise_transport<T: Transport>(a: &T, b: &T, label: &str) {
    use push_pull_messaging::core::{ANY_SOURCE, ANY_TAG};

    // Exact-match blocking round trip through the provided conveniences.
    let data = payload(4096);
    let recv = b
        .post_recv(a.local_id(), Tag(1), 4096, TruncationPolicy::Error)
        .unwrap();
    let sent = a
        .send_blocking(b.local_id(), Tag(1), data.clone(), TIMEOUT)
        .expect("send completed");
    assert_eq!(sent, 4096, "{label}");
    let done = b.wait(OpId::Recv(recv), TIMEOUT).expect("recv completed");
    assert_eq!(done.status, Status::Ok, "{label}");
    assert_eq!(done.data.as_deref(), Some(&data[..]), "{label}");

    // Wildcard receive: reports the concrete source and tag.
    let wild = b
        .post_recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
        .unwrap();
    a.send_blocking(b.local_id(), Tag(42), data.clone(), TIMEOUT)
        .expect("wildcard send");
    let done = b.wait(OpId::Recv(wild), TIMEOUT).expect("wildcard recv");
    assert_eq!(done.peer, a.local_id(), "{label}");
    assert_eq!(done.tag, Tag(42), "{label}");
    assert_eq!(done.data.as_deref(), Some(&data[..]), "{label}");

    // Caller-owned buffer: the multi-fragment pull path lands in our
    // storage and the buffer comes back in the completion.
    let op = b
        .post_recv_into(
            a.local_id(),
            Tag(2),
            RecvBuf::with_capacity(4096),
            TruncationPolicy::Error,
        )
        .unwrap();
    a.send_blocking(b.local_id(), Tag(2), data.clone(), TIMEOUT)
        .expect("recv_into send");
    let done = b.wait(OpId::Recv(op), TIMEOUT).expect("recv_into recv");
    assert_eq!(done.status, Status::Ok, "{label}");
    let buf = done.buf.expect("buffer handed back");
    assert_eq!(buf.as_slice(), &data[..], "{label}");

    // Cancellation: the op completes Cancelled, never with data, and the
    // message posted afterwards goes to the replacement receive.
    let doomed = b
        .post_recv(a.local_id(), Tag(3), 4096, TruncationPolicy::Error)
        .unwrap();
    assert!(b.cancel(doomed), "{label}: pending recv must cancel");
    assert!(!b.cancel(doomed), "{label}: stale handle must not cancel");
    let done = b.wait(OpId::Recv(doomed), TIMEOUT).expect("cancellation");
    assert_eq!(done.status, Status::Cancelled, "{label}");
    let replacement = b
        .post_recv(a.local_id(), Tag(3), 4096, TruncationPolicy::Error)
        .unwrap();
    a.send_blocking(b.local_id(), Tag(3), data.clone(), TIMEOUT)
        .expect("post-cancel send");
    let done = b
        .wait(OpId::Recv(replacement), TIMEOUT)
        .expect("replacement");
    assert_eq!(done.data.as_deref(), Some(&data[..]), "{label}");

    // Batch draining: nothing left over after the waits above.
    let mut leftovers = Vec::new();
    b.drain_completions(&mut leftovers);
    assert!(
        leftovers.iter().all(|c| matches!(c.op, OpId::Send(_))),
        "{label}: no receive completions may linger"
    );
}

#[test]
fn transport_trait_drives_intranode_udp_and_loopback_backends() {
    // Intranode shared-memory fabric.
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(128 * 1024),
    );
    let a = cluster.add_endpoint(0);
    let b = cluster.add_endpoint(1);
    exercise_transport(&a, &b, "intranode");

    // UDP internode backend.
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024);
    let a = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let b = UdpEndpoint::bind(ProcessId::new(1, 0), proto.clone(), "127.0.0.1:0").unwrap();
    a.add_peer(b.id(), b.local_addr().unwrap());
    b.add_peer(a.id(), a.local_addr().unwrap());
    exercise_transport(&a, &b, "udp");

    // Deterministic sim-cluster loopback binding.
    let cluster = LoopbackCluster::new(proto);
    let a = cluster.add_endpoint(ProcessId::new(0, 0));
    let b = cluster.add_endpoint(ProcessId::new(1, 0));
    exercise_transport(&a, &b, "loopback");
}

#[test]
fn udp_and_intranode_backends_interoperate_with_same_engine_config() {
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let a = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let b = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
    a.add_peer(b.id(), b.local_addr().unwrap());
    b.add_peer(a.id(), a.local_addr().unwrap());
    for len in [1usize, 80, 760, 1460, 8192, 40_000] {
        let data = payload(len);
        a.send(b.id(), Tag(4), data.clone());
        assert_eq!(
            b.recv(a.id(), Tag(4), len, TIMEOUT).unwrap(),
            data,
            "len {len}"
        );
    }
}

#[test]
fn figure3_intranode_latency_shapes() {
    let points = fig3_intranode(&[10, 1000, 4000, 8192], 15);
    // Latencies rise with size for every mechanism and stay within the
    // intranode regime (tens of microseconds, not milliseconds).
    for p in &points {
        for (label, v) in &p.series {
            assert!(*v > 0.0 && *v < 500.0, "{label} at {} B = {v}", p.size);
        }
    }
    let small = &points[0];
    let big = &points[3];
    for label in ["push-zero", "push-pull", "push-all"] {
        assert!(big.get(label).unwrap() > small.get(label).unwrap());
    }
    // Paper: the minimum latency for a 10-byte message is 7.5 us; ours must
    // be the same order of magnitude.
    assert!(small.get("push-pull").unwrap() < 30.0);
}

#[test]
fn figure4_optimisations_help_large_messages() {
    let points = fig4_internode(&[1400], 15);
    let p = &points[0];
    let no_opt = p.get("no optimization").unwrap();
    let mask = p.get("mask only").unwrap();
    let overlap = p.get("overlap only").unwrap();
    let full = p.get("full optimization").unwrap();
    assert!(mask <= no_opt, "masking must not hurt ({mask} vs {no_opt})");
    assert!(
        overlap <= no_opt,
        "overlapping must not hurt ({overlap} vs {no_opt})"
    );
    assert!(
        full <= mask && full <= overlap,
        "full optimisation must be best"
    );
    // Paper: overlapping hides the (larger) acknowledge latency, masking the
    // (smaller) translation overhead — so overlapping helps at least as much.
    assert!(
        overlap <= mask + 1.0,
        "overlap ({overlap}) should beat mask ({mask})"
    );
}

#[test]
fn figure6_late_receiver_collapse_and_recovery() {
    let late = early_late_test(EarlyLateVariant::Late, &[2048, 8192], 5);
    // Below the pushed-buffer size everything is comparable.
    let small = &late[0];
    assert!(
        small.get("push-all/late").unwrap() < small.get("push-pull/late").unwrap() * 1.5,
        "2 KiB fits the pushed buffer; push-all must not collapse yet"
    );
    // Beyond it, Push-All pays go-back-N recovery and collapses; Push-Pull
    // keeps working and beats Push-Zero.
    let big = &late[1];
    let push_all = big.get("push-all/late").unwrap();
    let push_pull = big.get("push-pull/late").unwrap();
    let push_zero = big.get("push-zero/late").unwrap();
    assert!(
        push_all > push_pull * 2.0,
        "push-all {push_all} vs push-pull {push_pull}"
    );
    assert!(
        push_pull <= push_zero * 1.05,
        "push-pull {push_pull} vs push-zero {push_zero}"
    );
}

#[test]
fn bandwidth_respects_physical_limits() {
    // Internode bandwidth can approach but never exceed the 12.5 MB/s wire.
    for p in bandwidth_sweep(false, &[8192, 32768], 15) {
        assert!(
            p.mb_per_s > 3.0 && p.mb_per_s < 12.5,
            "{} B -> {} MB/s",
            p.size,
            p.mb_per_s
        );
    }
    // Intranode bandwidth is memory-bound: far above the wire, below the bus.
    for p in bandwidth_sweep(true, &[4000, 8192], 15) {
        assert!(
            p.mb_per_s > 50.0 && p.mb_per_s < 533.0,
            "{} B -> {} MB/s",
            p.size,
            p.mb_per_s
        );
    }
}

#[test]
fn headline_numbers_reproduced_within_tolerance() {
    let h = headline_numbers(20);
    // Within a factor of ~2 of the paper on every headline metric.
    assert!(
        (3.0..16.0).contains(&h.intranode_latency_us),
        "{}",
        h.intranode_latency_us
    );
    assert!(
        (17.0..70.0).contains(&h.internode_latency_us),
        "{}",
        h.internode_latency_us
    );
    assert!(
        h.intranode_peak_bw_mb_s > 150.0,
        "{}",
        h.intranode_peak_bw_mb_s
    );
    assert!(
        (6.0..12.5).contains(&h.internode_peak_bw_mb_s),
        "{}",
        h.internode_peak_bw_mb_s
    );
    assert!(
        (6.0..26.0).contains(&h.translation_overhead_us),
        "{}",
        h.translation_overhead_us
    );
}
