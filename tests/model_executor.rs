//! Bounded model checking of the executor's task scheduling state machine
//! ([`executor::task_state::TaskState`]).  Build with
//! `RUSTFLAGS="--cfg ppmsg_check"`.
//!
//! The harness plays the roles the real [`Pool`](push_pull_messaging::Pool)
//! assigns: one "worker" thread polling the task, concurrent "waker"
//! threads calling [`TaskState::wake`].  Exhaustively verified invariants:
//!
//! * **at-most-once enqueue** — however wakes race each other and the
//!   poll, the task is never sitting in the run queue twice;
//! * **no lost wake** — a wake landing mid-poll re-enqueues the task
//!   (via `Notified`) so the new state is observed;
//! * **stale wakes no-op** — wakes after completion change nothing.
//!
//! The sabotage variants (`task_state::sabotage`) drop the `Notified`
//! transition and de-atomize the `IDLE -> SCHEDULED` claim; the checker
//! must catch both.
#![cfg(ppmsg_check)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ppmsg_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use ppmsg_check::{thread, Model};
use push_pull_messaging::executor::task_state::{sabotage, TaskState, WakeAction};

/// Sabotage knobs are process-global; serialize every test on this lock.
static KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct KnobGuard<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

fn hold_knobs() -> KnobGuard<'static> {
    let guard = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    sabotage::reset();
    KnobGuard { _guard: guard }
}

impl Drop for KnobGuard<'_> {
    fn drop(&mut self) {
        sabotage::reset();
    }
}

/// A one-slot "run queue" (the count of outstanding enqueues — the state
/// machine's contract is that it never exceeds 1) plus a model "future":
/// `ready` plays the role of the state a real waker publishes before
/// waking, and a poll that observes it completes the task.
struct Harness {
    state: TaskState,
    queued: AtomicUsize,
    ready: AtomicBool,
    complete: AtomicBool,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            // Spawned = already queued once, exactly like `Pool::spawn`.
            state: TaskState::new_scheduled(),
            queued: AtomicUsize::new(1),
            ready: AtomicBool::new(false),
            complete: AtomicBool::new(false),
        }
    }

    /// A real wake: publish the state, then schedule — the future contract.
    fn wake_ready(&self) {
        self.ready.store(true, Ordering::SeqCst);
        self.wake();
    }

    fn wake(&self) {
        if self.state.wake() == WakeAction::Enqueue {
            let already = self.queued.fetch_add(1, Ordering::SeqCst);
            assert_eq!(already, 0, "task enqueued twice");
        }
    }

    /// One worker pass: dequeue, poll, settle.  The "future" returns
    /// `Ready` once it observes `ready`, else `Pending`.
    fn poll(&self) {
        let was = self.queued.fetch_sub(1, Ordering::SeqCst);
        assert_eq!(was, 1, "dequeued a task that was not queued");
        self.state.begin_poll();
        if self.ready.load(Ordering::SeqCst) {
            self.complete.store(true, Ordering::SeqCst);
            self.state.finish_poll_complete();
            return;
        }
        if self.state.finish_poll_pending() {
            let already = self.queued.fetch_add(1, Ordering::SeqCst);
            assert_eq!(already, 0, "task enqueued twice");
        }
    }

    fn drain(&self) {
        while self.queued.load(Ordering::SeqCst) > 0 {
            self.poll();
        }
    }
}

/// Worker drains the queue; one concurrent waker publishes readiness and
/// wakes.  The wake must never be lost: it either claims the enqueue
/// itself or lands mid-poll and re-enqueues via `Notified` — either way
/// the task is re-polled after `ready` was set, so it completes.
fn one_waker_protocol() -> impl Fn() + Send + Sync + 'static {
    || {
        let h = Arc::new(Harness::new());
        let waker = {
            let h = Arc::clone(&h);
            thread::spawn(move || h.wake_ready())
        };
        h.drain();
        waker.join();
        // The wake has settled; if it claimed the enqueue after our drain,
        // one more drain picks it up.  After that the task MUST have seen
        // `ready` — anything else is a lost wake-up.
        h.drain();
        assert!(
            h.complete.load(Ordering::SeqCst),
            "wake lost: ready task never re-polled"
        );
    }
}

/// Two wakers race each other against an idle task: at most one may claim
/// the enqueue (the at-most-once property the `queued` counter asserts).
fn two_wakers_protocol() -> impl Fn() + Send + Sync + 'static {
    || {
        let h = Arc::new(Harness::new());
        // Drain the spawn enqueue so the task is IDLE.
        h.drain();
        let a = {
            let h = Arc::clone(&h);
            thread::spawn(move || h.wake())
        };
        let b = {
            let h = Arc::clone(&h);
            thread::spawn(move || h.wake())
        };
        a.join();
        b.join();
        // Exactly one of the two wakes claimed the enqueue (the counter
        // assertion in `wake` fires if both did).
        assert_eq!(h.queued.load(Ordering::SeqCst), 1);
        h.drain();
    }
}

/// Wakes after completion are inert.
fn stale_wake_protocol() -> impl Fn() + Send + Sync + 'static {
    || {
        let h = Arc::new(Harness::new());
        // The task completes on its first poll.
        h.ready.store(true, Ordering::SeqCst);
        let waker = {
            let h = Arc::clone(&h);
            thread::spawn(move || h.wake())
        };
        h.drain();
        waker.join();
        // Whatever the interleaving, the task ended complete; a wake that
        // claimed an enqueue before completion was drained (and discarded
        // against COMPLETE), one after completion was a no-op.
        h.drain();
        assert!(h.state.is_complete());
        assert_eq!(h.queued.load(Ordering::SeqCst), 0);
    }
}

fn expect_caught<F: Fn() + Send + Sync + 'static>(model: Model, f: F, needle: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| model.check(f)));
    let payload = match result {
        Ok(stats) => panic!(
            "model checker missed the bug ({} executions explored clean)",
            stats.executions
        ),
        Err(p) => p,
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains(needle),
        "checker reported a failure but not the expected one; wanted `{needle}`, got:\n{msg}"
    );
}

#[test]
fn task_lifecycle_one_waker_exhaustive() {
    let _knobs = hold_knobs();
    let stats = Model::new().check(one_waker_protocol());
    assert!(stats.executions > 1);
}

#[test]
fn task_lifecycle_two_wakers_exhaustive() {
    let _knobs = hold_knobs();
    let stats = Model::new().check(two_wakers_protocol());
    assert!(stats.executions > 1);
}

#[test]
fn stale_wake_after_complete_exhaustive() {
    let _knobs = hold_knobs();
    let stats = Model::new().check(stale_wake_protocol());
    assert!(stats.executions > 1);
}

/// The `Pool::wait_idle` protocol — a `live` counter, an idle lock and a
/// condvar the last retiring worker notifies under — replayed on the shim
/// primitives with spurious wake-ups injected: the while-loop wait must
/// not return early.
#[test]
fn wait_idle_protocol_survives_spurious_wakeups() {
    use ppmsg_check::sync::{Condvar, Mutex};

    struct Idle {
        live: AtomicUsize,
        lock: Mutex<()>,
        cv: Condvar,
    }

    let _knobs = hold_knobs();
    let stats = Model {
        spurious_budget: 2,
        ..Model::new()
    }
    .check(|| {
        let idle = Arc::new(Idle {
            live: AtomicUsize::new(2),
            lock: Mutex::new("test.idle", ()),
            cv: Condvar::new(),
        });
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let idle = Arc::clone(&idle);
                thread::spawn(move || {
                    // `retire_task`: last one out notifies under the lock.
                    if idle.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                        let _g = idle.lock.lock();
                        idle.cv.notify_all();
                    }
                })
            })
            .collect();
        // `wait_idle`: predicate re-checked in a loop, so an injected
        // spurious wake-up (or the non-final worker's notify) never
        // releases the waiter early.
        let mut g = idle.lock.lock();
        while idle.live.load(Ordering::SeqCst) > 0 {
            g = idle.cv.wait(g);
        }
        drop(g);
        assert_eq!(idle.live.load(Ordering::SeqCst), 0, "released early");
        for w in workers {
            w.join();
        }
    });
    assert!(stats.executions > 1);
}

#[test]
fn sabotage_drop_notified_caught() {
    // Dropping the mid-poll `Notified` transition loses the wake: the
    // worker drains the queue, the wake claimed nothing, `queued` ends 0
    // with a wake unaccounted for... except the assertion that fires is
    // the lost-wake check in `one_waker_protocol`.
    let _knobs = hold_knobs();
    sabotage::DROP_NOTIFIED.store(true, std::sync::atomic::Ordering::SeqCst);
    expect_caught(Model::new(), one_waker_protocol(), "wake lost");
}

#[test]
fn sabotage_wake_not_atomic_caught() {
    // De-atomizing the IDLE -> SCHEDULED claim lets both wakers observe
    // IDLE and both enqueue: the at-most-once counter assertion fires.
    let _knobs = hold_knobs();
    sabotage::WAKE_NOT_ATOMIC.store(true, std::sync::atomic::Ordering::SeqCst);
    expect_caught(Model::new(), two_wakers_protocol(), "task enqueued twice");
}
