//! Races the multi-core stack end to end: N producer threads post sends
//! while consumer tasks on an M-worker [`Pool`] await the matching
//! receives, over all three real backends (intranode shared memory — with a
//! sharded consumer engine — UDP sockets, and the loopback cluster).  Every
//! message carries its `(producer, sequence)` identity in its first bytes;
//! the suite asserts **exactly-once** completion: no identity lost, none
//! delivered twice, every payload intact.
//!
//! A deterministic proptest then checks the executors against each other:
//! for a random transfer script on loopback, work-stealing execution on the
//! `Pool` must produce the identical completion set as the single-threaded
//! `Driver` — scheduling may reorder completions but can never change them.
//!
//! Dimensions are environment-tunable so the ThreadSanitizer CI job (which
//! runs ~10-20x slower) can dial them down:
//! `STRESS_PRODUCERS` × `STRESS_MSGS` messages over `STRESS_WORKERS` pool
//! workers, `STRESS_CASES` proptest cases.

use bytes::Bytes;
use proptest::prelude::*;
use push_pull_messaging::executor::Pool;
use push_pull_messaging::prelude::*;
use push_pull_messaging::timer::timeout;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Generous per-await deadline: a lost completion fails the test with a
/// clear panic instead of hanging the suite.
const DEADLINE: Duration = Duration::from_secs(60);

fn env_dim(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn producers() -> usize {
    env_dim("STRESS_PRODUCERS", 4)
}

fn workers() -> usize {
    env_dim("STRESS_WORKERS", 4)
}

fn messages() -> usize {
    env_dim("STRESS_MSGS", 24)
}

/// The message for `(producer, seq)`: identity header + deterministic body
/// whose length cycles through the protocol's phases (pure first push,
/// push + pull remainder).
fn payload(producer: u32, seq: u32) -> Bytes {
    let len = 16 + ((producer as usize * 7 + seq as usize) % 5) * 3000;
    let mut data = vec![0u8; len];
    data[..4].copy_from_slice(&producer.to_le_bytes());
    data[4..8].copy_from_slice(&seq.to_le_bytes());
    for (i, byte) in data[8..].iter_mut().enumerate() {
        *byte = (producer as usize)
            .wrapping_mul(31)
            .wrapping_add(seq as usize)
            .wrapping_add(i) as u8;
    }
    Bytes::from(data)
}

fn decode_identity(data: &Bytes) -> (u32, u32) {
    let producer = u32::from_le_bytes(data[..4].try_into().unwrap());
    let seq = u32::from_le_bytes(data[4..8].try_into().unwrap());
    (producer, seq)
}

/// The core race: one producer thread per peer blocking-sends its message
/// stream while a pool task per peer awaits the receives; the delivered
/// identity set must be exactly `{(p, s) | p < producers, s < messages}`.
fn run_stress<C, P>(consumer: Endpoint<C>, peers: Vec<Endpoint<P>>)
where
    C: RawTransport + Send + Sync + 'static,
    P: RawTransport + Send + Sync + 'static,
{
    let msgs = messages();
    let consumer = Arc::new(consumer);
    let consumer_id = consumer.local_id();
    let delivered: Arc<Mutex<BTreeSet<(u32, u32)>>> = Arc::new(Mutex::new(BTreeSet::new()));

    let pool = Pool::new(workers());
    for (index, peer) in peers.iter().enumerate() {
        let producer = index as u32;
        let src = peer.local_id();
        let consumer = consumer.clone();
        let delivered = delivered.clone();
        pool.spawn(async move {
            for seq in 0..msgs as u32 {
                let recv = consumer
                    .recv(src, Tag(seq), 64 * 1024, TruncationPolicy::Error)
                    .expect("post recv");
                let completion = timeout(DEADLINE, recv)
                    .await
                    .expect("receive lost: deadline elapsed");
                assert_eq!(completion.status, Status::Ok);
                let data = completion.data.expect("engine-buffered data");
                assert_eq!(data, payload(producer, seq), "payload corrupted");
                let identity = decode_identity(&data);
                assert_eq!(identity, (producer, seq));
                let fresh = delivered.lock().unwrap().insert(identity);
                assert!(fresh, "duplicate completion for {identity:?}");
            }
        });
    }

    let senders: Vec<_> = peers
        .into_iter()
        .enumerate()
        .map(|(index, peer)| {
            let producer = index as u32;
            std::thread::spawn(move || {
                for seq in 0..msgs as u32 {
                    let sent =
                        peer.send_blocking(consumer_id, Tag(seq), payload(producer, seq), DEADLINE);
                    assert!(sent.is_some(), "send {producer}/{seq} lost");
                }
            })
        })
        .collect();

    for sender in senders {
        sender.join().unwrap();
    }
    pool.wait_idle();

    let delivered = delivered.lock().unwrap();
    assert_eq!(
        delivered.len(),
        producers() * msgs,
        "completions lost: got {} of {}",
        delivered.len(),
        producers() * msgs,
    );
}

#[test]
fn intranode_sharded_exactly_once() {
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(512 * 1024),
    );
    // The consumer shards its engine: concurrent producers land on
    // different shard locks, racing the remap/mailbox paths hardest.
    let consumer = cluster.add_endpoint_sharded(0, 4);
    let peers: Vec<_> = (1..=producers() as u32)
        .map(|rank| Endpoint::new(cluster.add_endpoint(rank)))
        .collect();
    let stats_handle = consumer.clone();
    run_stress(Endpoint::new(consumer), peers);
    let stats = stats_handle.stats();
    assert_eq!(stats.recvs_completed as usize, producers() * messages());
}

#[test]
fn udp_exactly_once() {
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(512 * 1024);
    let consumer = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let peers: Vec<_> = (1..=producers() as u32)
        .map(|rank| {
            let peer =
                UdpEndpoint::bind(ProcessId::new(1, rank), proto.clone(), "127.0.0.1:0").unwrap();
            consumer.add_peer(peer.id(), peer.local_addr().unwrap());
            peer.add_peer(consumer.id(), consumer.local_addr().unwrap());
            Endpoint::new(peer)
        })
        .collect();
    run_stress(Endpoint::new(consumer), peers);
}

#[test]
fn loopback_exactly_once() {
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(512 * 1024));
    let consumer = cluster.add_endpoint(ProcessId::new(0, 0));
    let peers: Vec<_> = (1..=producers() as u32)
        .map(|rank| Endpoint::new(cluster.add_endpoint(ProcessId::new(1, rank))))
        .collect();
    run_stress(Endpoint::new(consumer), peers);
    assert_eq!(cluster.unroutable_drops(), 0);
}

// ---------------------------------------------------------------------------
// Pool vs Driver: scheduling must not change the completion set
// ---------------------------------------------------------------------------

/// One transfer of a random script: which of the fixed pairs carries it and
/// how many bytes it moves (the tag is the script index, so every transfer
/// matches deterministically regardless of completion order).
#[derive(Debug, Clone)]
struct Transfer {
    pair: usize,
    len: usize,
}

const SCRIPT_PAIRS: usize = 3;

/// What a transfer's pair of completions must look like under *any*
/// executor: send and receive status plus the received bytes' checksum.
type CompletionRecord = (u32, &'static str, usize, u64);

fn checksum(data: &[u8]) -> u64 {
    data.iter().fold(0xcbf2_9ce4_8422_2325u64, |hash, &byte| {
        (hash ^ byte as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

fn script_payload(index: usize, len: usize) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (index.wrapping_mul(131).wrapping_add(i)) as u8)
            .collect::<Vec<u8>>(),
    )
}

/// Builds a fresh loopback topology and the per-transfer tasks, returning
/// the spawn closures so each executor runs an identical workload.
#[allow(clippy::type_complexity)]
fn script_tasks(
    transfers: &[Transfer],
) -> (
    Arc<Mutex<BTreeSet<CompletionRecord>>>,
    Vec<std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send + 'static>>>,
) {
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(256 * 1024));
    let pairs: Vec<_> = (0..SCRIPT_PAIRS as u32)
        .map(|p| {
            (
                Arc::new(Endpoint::new(cluster.add_endpoint(ProcessId::new(0, p)))),
                Arc::new(Endpoint::new(cluster.add_endpoint(ProcessId::new(1, p)))),
            )
        })
        .collect();
    let records: Arc<Mutex<BTreeSet<CompletionRecord>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let mut tasks: Vec<std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send>>> =
        Vec::new();
    for (index, transfer) in transfers.iter().enumerate() {
        let (a, b) = pairs[transfer.pair].clone();
        let tag = Tag(index as u32);
        let len = transfer.len;
        let records_send = records.clone();
        let records_recv = records.clone();
        let (sender, receiver) = (a.clone(), b.clone());
        tasks.push(Box::pin(async move {
            let completion = sender
                .send(receiver.local_id(), tag, script_payload(index, len))
                .unwrap()
                .await;
            assert_eq!(completion.status, Status::Ok);
            records_send
                .lock()
                .unwrap()
                .insert((tag.0, "send", completion.len, 0));
        }));
        let (sender, receiver) = (a, b);
        tasks.push(Box::pin(async move {
            let completion = receiver
                .recv(sender.local_id(), tag, 64 * 1024, TruncationPolicy::Error)
                .unwrap()
                .await;
            assert_eq!(completion.status, Status::Ok);
            let data = completion.data.unwrap();
            records_recv
                .lock()
                .unwrap()
                .insert((tag.0, "recv", data.len(), checksum(&data)));
        }));
    }
    (records, tasks)
}

fn run_script_on_driver(transfers: &[Transfer]) -> BTreeSet<CompletionRecord> {
    let (records, tasks) = script_tasks(transfers);
    let mut driver = Driver::new();
    for task in tasks {
        driver.spawn(task);
    }
    driver.run();
    Arc::try_unwrap(records).unwrap().into_inner().unwrap()
}

fn run_script_on_pool(transfers: &[Transfer], pool_workers: usize) -> BTreeSet<CompletionRecord> {
    let (records, tasks) = script_tasks(transfers);
    let pool = Pool::new(pool_workers);
    for task in tasks {
        pool.spawn(task);
    }
    pool.wait_idle();
    drop(pool);
    Arc::try_unwrap(records).unwrap().into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(env_dim("STRESS_CASES", 16) as u32))]

    /// Work-stealing may interleave tasks arbitrarily, but the completion
    /// set — statuses, byte counts, payload checksums — must be exactly
    /// what the deterministic single-threaded `Driver` produces.
    #[test]
    fn pool_matches_driver_completion_set(
        raw in collection::vec((0usize..SCRIPT_PAIRS, 1usize..12_000), 1..24)
    ) {
        let transfers: Vec<Transfer> = raw
            .into_iter()
            .map(|(pair, len)| Transfer { pair, len })
            .collect();
        let reference = run_script_on_driver(&transfers);
        prop_assert_eq!(reference.len(), transfers.len() * 2);
        for pool_workers in [1, 4] {
            let raced = run_script_on_pool(&transfers, pool_workers);
            prop_assert_eq!(&raced, &reference);
        }
    }
}
