//! Property-based tests of the collective algorithms, run deterministically:
//! every group lives on the loopback cluster and is driven by the
//! single-threaded `Driver`, so each proptest case executes the same
//! interleaving every time.
//!
//! * Tree `reduce` / `all_reduce` over arbitrary group sizes, payload
//!   sizes, roots, and a **non-commutative** (but associative) combine
//!   operator equal the sequential left fold over ranks — the rank-order
//!   guarantee that makes user-supplied operators safe.
//! * `barrier` never lets any rank exit before the last rank has entered,
//!   whatever the spawn order and however unevenly ranks arrive.
//! * Chunked pipelined `broadcast` delivers byte-identical payloads for
//!   arbitrary payload/chunk-size combinations, including ragged tails.

use bytes::Bytes;
use proptest::prelude::*;
use push_pull_messaging::coll::Group;
use push_pull_messaging::prelude::*;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

/// Deterministic per-rank contribution, perturbed by the proptest seed.
fn contribution(rank: usize, len: usize, seed: u64) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (rank * 37 + i * 11) as u8 ^ (seed as u8))
            .collect::<Vec<u8>>(),
    )
}

/// Associative, non-commutative, length-preserving combine (affine-map
/// composition over `Z_256`; see `tests/coll_conformance.rs`).
fn affine_combine(a: Bytes, b: Bytes) -> Bytes {
    assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut i = 0;
    while i + 1 < a.len() {
        let (a1, c1) = (a[i], a[i + 1]);
        let (a2, c2) = (b[i], b[i + 1]);
        out.push(a1.wrapping_mul(a2));
        out.push(a2.wrapping_mul(c1).wrapping_add(c2));
        i += 2;
    }
    if a.len() % 2 == 1 {
        out.push(a[a.len() - 1].wrapping_mul(b[b.len() - 1]));
    }
    Bytes::from(out)
}

/// Builds an `n`-rank loopback group spanning several simulated nodes (both
/// the intranode and internode engine paths participate).
fn loopback_group(n: usize, id: u16) -> Vec<GroupMember<LoopbackEndpoint>> {
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(1 << 20));
    let ids: Vec<ProcessId> = (0..n)
        .map(|r| ProcessId::new((r / 3) as u32, (r % 3) as u32))
        .collect();
    let group = Group::new(id, ids.clone()).unwrap();
    ids.iter()
        .map(|&pid| {
            group
                .bind(Endpoint::new(cluster.add_endpoint(pid)))
                .unwrap()
        })
        .collect()
}

/// A future that returns `Pending` (rescheduling itself) `n` times before
/// resolving — lets ranks arrive at a collective after different amounts of
/// driver work, deterministically.
struct YieldN(usize);

impl Future for YieldN {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.0 == 0 {
            return Poll::Ready(());
        }
        self.0 -= 1;
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tree reduction ≡ sequential left fold, for every rank count, root,
    /// and payload size (odd, even, and empty), under a non-commutative
    /// operator.
    #[test]
    fn tree_reduce_equals_sequential_left_fold(
        n in 1usize..17,
        len in 0usize..48,
        root_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let root = (root_seed % n as u64) as usize;
        let members = loopback_group(n, 21);
        let expected = (0..n)
            .map(|r| contribution(r, len, seed))
            .reduce(affine_combine)
            .unwrap();

        let reduce_results = Arc::new(Mutex::new(vec![None::<Option<Bytes>>; n]));
        let allreduce_results = Arc::new(Mutex::new(vec![None::<Bytes>; n]));
        let mut driver = Driver::new();
        for member in members {
            let reduce_results = reduce_results.clone();
            let allreduce_results = allreduce_results.clone();
            driver.spawn(async move {
                let rank = member.rank();
                let mine = contribution(rank, len, seed);
                let reduced = member
                    .reduce(root, mine.clone(), affine_combine)
                    .await
                    .expect("reduce");
                reduce_results.lock().unwrap()[rank] = Some(reduced);
                let all = member
                    .all_reduce(mine, affine_combine)
                    .await
                    .expect("all_reduce");
                allreduce_results.lock().unwrap()[rank] = Some(all);
            });
        }
        driver.run();
        prop_assert_eq!(driver.live(), 0, "all ranks completed");

        for (rank, got) in reduce_results.lock().unwrap().iter().enumerate() {
            let got = got.as_ref().expect("rank finished");
            if rank == root {
                prop_assert_eq!(got.as_ref().expect("root result"), &expected);
            } else {
                prop_assert!(got.is_none(), "rank {} is not the root", rank);
            }
        }
        for got in allreduce_results.lock().unwrap().iter() {
            prop_assert_eq!(got.as_ref().expect("rank finished"), &expected);
        }
    }

    /// No rank leaves a barrier before the last rank has entered it —
    /// whatever order ranks are spawned in and however unevenly they arrive
    /// (each rank yields a proptest-chosen number of times first).
    #[test]
    fn barrier_releases_no_rank_before_the_last_enters(
        n in 2usize..13,
        spawn_seed in any::<u64>(),
        delays in proptest::collection::vec(0usize..25, 12..13),
    ) {
        let mut members: Vec<Option<_>> = loopback_group(n, 22).into_iter().map(Some).collect();
        // Deterministic permutation of the spawn order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = spawn_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        // (rank, entered) events in driver execution order.
        let events = Arc::new(Mutex::new(Vec::<(usize, bool)>::new()));
        let mut driver = Driver::new();
        for &rank in &order {
            let member = members[rank].take().unwrap();
            let events = events.clone();
            let delay = delays[rank];
            driver.spawn(async move {
                YieldN(delay).await;
                events.lock().unwrap().push((member.rank(), true));
                member.barrier().await.expect("barrier");
                events.lock().unwrap().push((member.rank(), false));
            });
        }
        driver.run();
        prop_assert_eq!(driver.live(), 0);

        let events = events.lock().unwrap();
        prop_assert_eq!(events.len(), 2 * n);
        let last_enter = events
            .iter()
            .rposition(|&(_, enter)| enter)
            .expect("entries logged");
        let first_exit = events
            .iter()
            .position(|&(_, enter)| !enter)
            .expect("exits logged");
        prop_assert!(
            first_exit > last_enter,
            "rank {} exited (event {}) before rank {} entered (event {})",
            events[first_exit].0, first_exit, events[last_enter].0, last_enter
        );
    }

    /// Chunked pipelined broadcast is byte-identical to the payload for
    /// arbitrary payload lengths and chunk sizes (ragged tails included).
    #[test]
    fn chunked_broadcast_delivers_identical_bytes(
        n in 2usize..10,
        len in 1usize..6000,
        chunk in 1usize..700,
        root_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let root = (root_seed % n as u64) as usize;
        let members: Vec<_> = loopback_group(n, 23)
            .into_iter()
            .map(|m| {
                let group = m.group().with_chunk_size(chunk);
                group.bind(m.into_endpoint()).unwrap()
            })
            .collect();
        let payload = contribution(root, len, seed);
        let results = Arc::new(Mutex::new(vec![None::<Bytes>; n]));
        let mut driver = Driver::new();
        for member in members {
            let results = results.clone();
            let payload = payload.clone();
            driver.spawn(async move {
                let rank = member.rank();
                let data = if rank == root { payload } else { Bytes::new() };
                let got = member.broadcast(root, data, len).await.expect("broadcast");
                results.lock().unwrap()[rank] = Some(got);
            });
        }
        driver.run();
        prop_assert_eq!(driver.live(), 0);
        for got in results.lock().unwrap().iter() {
            prop_assert_eq!(got.as_ref().expect("rank finished"), &payload);
        }
    }
}

/// Driver scheduling on the loopback cluster is deterministic: the same
/// spawn order yields the same event interleaving, run after run.
#[test]
fn driver_scheduled_collectives_are_deterministic() {
    let run_once = || {
        let members = loopback_group(6, 24);
        let events = Arc::new(Mutex::new(Vec::<(usize, u8)>::new()));
        let mut driver = Driver::new();
        for member in members {
            let events = events.clone();
            driver.spawn(async move {
                let rank = member.rank();
                YieldN(rank * 3 % 5).await;
                events.lock().unwrap().push((rank, 0));
                let got = member
                    .all_reduce(contribution(rank, 12, 7), affine_combine)
                    .await
                    .unwrap();
                events.lock().unwrap().push((rank, got[0]));
                member.barrier().await.unwrap();
                events.lock().unwrap().push((rank, 2));
            });
        }
        driver.run();
        Arc::try_unwrap(events).unwrap().into_inner().unwrap()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "loopback Driver runs must be reproducible");
    assert_eq!(first.len(), 18);
}
