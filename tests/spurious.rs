//! Regression tests for the wake-up loops the model checker verifies in
//! miniature (`tests/model_executor.rs`, `crates/core/tests/model_check.rs`),
//! run here at full scale on the real primitives: `Pool::wait_idle` under
//! many concurrent waiters and task bursts, and the `CompletionMailbox`
//! sweep under concurrent producers.  Both paths park on condvars whose
//! waits may return spuriously — a wait that fails to re-check its
//! predicate passes the model harness's small schedules only by luck, and
//! shows up here as an early return (assert) or a hang (test timeout).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Wake, Waker};

use push_pull_messaging::core::ops::{Completion, CompletionMailbox, OpId, SendOp, Status};
use push_pull_messaging::core::{ProcessId, Tag};
use push_pull_messaging::Pool;

#[test]
fn wait_idle_with_concurrent_waiters_and_bursts() {
    let pool = Arc::new(Pool::new(4));
    let done = Arc::new(AtomicUsize::new(0));
    const BURSTS: usize = 20;
    const TASKS: usize = 50;

    // Several threads call `wait_idle` concurrently while bursts of tasks
    // are still being spawned: every return from `wait_idle` must observe
    // zero live tasks at that moment.
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for _ in 0..BURSTS {
                    pool.wait_idle();
                    assert_eq!(pool.live(), 0, "wait_idle returned with live tasks");
                }
            })
        })
        .collect();

    for _ in 0..BURSTS {
        for _ in 0..TASKS {
            let done = Arc::clone(&done);
            pool.spawn(async move {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(pool.live(), 0);
    }
    for w in waiters {
        w.join().unwrap();
    }
    assert_eq!(done.load(Ordering::SeqCst), BURSTS * TASKS);
}

fn completion(slot: u32) -> Completion {
    Completion {
        op: OpId::Send(SendOp::from_raw(slot, 0)),
        peer: ProcessId::new(0, 1),
        tag: Tag(1),
        len: 0,
        status: Status::Ok,
        data: None,
        buf: None,
    }
}

/// A parker whose waits can be exercised heavily: waking sets a flag the
/// waiter spins-then-yields on, so a lost wake stalls the test visibly
/// rather than deadlocking a condvar.
struct YieldPark {
    woke: AtomicBool,
}

impl Wake for YieldPark {
    fn wake(self: Arc<Self>) {
        self.woke.store(true, Ordering::SeqCst);
    }
}

#[test]
fn mailbox_sweep_under_concurrent_producers() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: u32 = 500;
    let mb = Arc::new(CompletionMailbox::new(PRODUCERS));
    let posters: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                for i in 0..PER_PRODUCER {
                    batch.push(completion(p as u32 * PER_PRODUCER + i));
                    mb.post(p, &mut batch);
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let park = Arc::new(YieldPark {
        woke: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&park));
    let mut claimed = 0u32;
    for p in 0..PRODUCERS as u32 {
        for i in 0..PER_PRODUCER {
            let op = OpId::Send(SendOp::from_raw(p * PER_PRODUCER + i, 0));
            loop {
                let mut got = false;
                mb.with(&mut |q| {
                    if q.take_or_register(op, &waker).is_some() {
                        got = true;
                    }
                });
                if got {
                    claimed += 1;
                    break;
                }
                while !park.woke.swap(false, Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            }
        }
    }
    assert_eq!(claimed, PRODUCERS as u32 * PER_PRODUCER);
    for poster in posters {
        poster.join().unwrap();
    }
}
