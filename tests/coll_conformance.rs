//! Conformance suite for the collectives subsystem: every behavioural
//! contract written **once** as generic case bodies over
//! `GroupMember<T: RawTransport>` and instantiated per backend (intranode
//! shared-memory fabric, UDP, sim-cluster loopback) by the
//! `coll_conformance_suite!` macro — the same pattern the point-to-point
//! conformance tests use.
//!
//! Each case runs the group SPMD-style: one thread per rank, every rank
//! executing the same sequence of blocking collectives (the host backends'
//! natural mode; the deterministic single-threaded `Driver` mode is
//! exercised by the loopback-only tests at the bottom and by
//! `tests/coll_props.rs`).

use bytes::Bytes;
use push_pull_messaging::core::{Error, ANY_SOURCE, ANY_TAG, COLLECTIVE_TAG_BIT};
use push_pull_messaging::prelude::*;
use std::time::Duration;

/// Deterministic per-rank contribution.
fn contribution(rank: usize, len: usize) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (rank * 37 + i * 11) as u8)
            .collect::<Vec<u8>>(),
    )
}

/// Associative, **non-commutative**, length-preserving combine: the payload
/// is a sequence of affine maps `x -> scale * x + shift` over `Z_256` (one
/// byte each), and combining composes them left-then-right.  Composition is
/// associative but not commutative, so a reduce that combined ranks out of
/// order would produce a different byte string.
fn affine_combine(a: Bytes, b: Bytes) -> Bytes {
    assert_eq!(a.len(), b.len(), "length-preserving contract");
    let mut out = Vec::with_capacity(a.len());
    let mut i = 0;
    while i + 1 < a.len() {
        let (a1, c1) = (a[i], a[i + 1]);
        let (a2, c2) = (b[i], b[i + 1]);
        out.push(a1.wrapping_mul(a2));
        out.push(a2.wrapping_mul(c1).wrapping_add(c2));
        i += 2;
    }
    if a.len() % 2 == 1 {
        // Odd trailing byte: compose as scale-only maps.
        out.push(a[a.len() - 1].wrapping_mul(b[b.len() - 1]));
    }
    Bytes::from(out)
}

/// The sequential rank-order left fold the tree reduction must equal.
fn fold_reference(n: usize, len: usize) -> Bytes {
    (0..n)
        .map(|r| contribution(r, len))
        .reduce(affine_combine)
        .expect("groups are non-empty")
}

/// Runs `f` as one thread per rank (SPMD).  A panic in any rank fails the
/// test through the scope join.
fn run<T: RawTransport + Send>(
    members: Vec<GroupMember<T>>,
    f: impl Fn(&GroupMember<T>) + Send + Sync,
) {
    std::thread::scope(|s| {
        let f = &f;
        for member in members {
            s.spawn(move || f(&member));
        }
    });
}

/// The shared case bodies, generic over the backend.
mod cases {
    use super::*;

    /// Broadcast delivers the root's payload to every rank, for every root.
    pub fn broadcast_all_roots<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        run(members, |m| {
            let n = m.group().size();
            for root in 0..n {
                let len = 64 + root * 17;
                let data = if m.rank() == root {
                    contribution(root, len)
                } else {
                    Bytes::new()
                };
                let got = m.broadcast_blocking(root, data, len).expect("broadcast");
                assert_eq!(got, contribution(root, len), "root {root}");
            }
        });
    }

    /// A payload far above the chunk size streams down the pipelined tree
    /// intact.
    pub fn broadcast_chunked_large<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        // Rebind under a small chunk size (group-uniform, like the member
        // order itself).
        let members: Vec<GroupMember<T>> = members
            .into_iter()
            .map(|m| {
                let group = m.group().with_chunk_size(1024);
                group.bind(m.into_endpoint()).unwrap()
            })
            .collect();
        run(members, |m| {
            let len = 16 * 1024 + 123; // 17 chunks, ragged tail
            let data = if m.rank() == 1 % m.group().size() {
                contribution(9, len)
            } else {
                Bytes::new()
            };
            let got = m
                .broadcast_blocking(1 % m.group().size(), data, len)
                .expect("chunked broadcast");
            assert_eq!(got, contribution(9, len));
        });
    }

    /// Reduce folds in rank order (non-commutative operator), to rank 0 and
    /// to a non-zero root; all_reduce delivers the fold everywhere.
    pub fn reduce_rank_ordered<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        run(members, |m| {
            let n = m.group().size();
            let len = 10;
            let expected = fold_reference(n, len);
            for root in [0, n - 1] {
                let got = m
                    .reduce_blocking(root, contribution(m.rank(), len), affine_combine)
                    .expect("reduce");
                if m.rank() == root {
                    assert_eq!(got.expect("root holds the fold"), expected, "root {root}");
                } else {
                    assert!(got.is_none(), "non-root rank got a result");
                }
            }
            let got = m
                .all_reduce_blocking(contribution(m.rank(), len), affine_combine)
                .expect("all_reduce");
            assert_eq!(got, expected);
        });
    }

    /// Scatter hands every rank its block; gather reassembles the original
    /// buffer in rank order — a full round trip through the vectored relay
    /// path, for root 0 and a non-zero root.
    pub fn gather_scatter_roundtrip<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        run(members, |m| {
            let n = m.group().size();
            let len = 96;
            let full: Bytes = Bytes::from(
                (0..n)
                    .flat_map(|r| contribution(r, len).to_vec())
                    .collect::<Vec<u8>>(),
            );
            for root in [0, 2 % n] {
                let data = if m.rank() == root {
                    full.clone()
                } else {
                    Bytes::new()
                };
                let mine = m.scatter_blocking(root, data, len).expect("scatter");
                assert_eq!(mine, contribution(m.rank(), len), "root {root}");
                let gathered = m.gather_blocking(root, mine).expect("gather");
                if m.rank() == root {
                    assert_eq!(gathered.expect("root gathers"), full, "root {root}");
                } else {
                    assert!(gathered.is_none());
                }
            }
        });
    }

    /// Every rank's personalized blocks reach exactly their addressee.
    pub fn all_to_all_exchange<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        run(members, |m| {
            let n = m.group().size();
            let len = 24;
            // Block for rank `to` from rank `from`: unique per pair.
            let block = |from: usize, to: usize| contribution(from * n + to, len);
            let blocks: Vec<Bytes> = (0..n).map(|to| block(m.rank(), to)).collect();
            let got = m.all_to_all_blocking(&blocks).expect("all_to_all");
            assert_eq!(got.len(), n);
            for (from, b) in got.iter().enumerate() {
                assert_eq!(*b, block(from, m.rank()), "from {from}");
            }
        });
    }

    /// Barriers complete for every rank, repeatedly, interleaved with other
    /// collectives (the ordering property itself is proven deterministically
    /// in `tests/coll_props.rs`).
    pub fn barrier_repeats<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        run(members, |m| {
            for round in 0..5u8 {
                m.barrier_blocking().expect("barrier");
                let got = m
                    .broadcast_blocking(
                        0,
                        if m.rank() == 0 {
                            Bytes::from(vec![round; 8])
                        } else {
                            Bytes::new()
                        },
                        8,
                    )
                    .expect("broadcast between barriers");
                assert_eq!(got, Bytes::from(vec![round; 8]));
            }
        });
    }

    /// A user wildcard receive posted *before* a collective neither steals
    /// collective traffic nor is consumed by it: the collective completes,
    /// and the wildcard then matches the next ordinary message.
    pub fn wildcard_does_not_steal<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        run(members, |m| {
            let n = m.group().size();
            let wild = (m.rank() != 0).then(|| {
                m.endpoint()
                    .post_recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
                    .expect("wildcard recv")
            });
            // The broadcast sends reserved-tag messages to every rank; the
            // wildcard must not see them.
            let data = if m.rank() == 0 {
                contribution(0, 256)
            } else {
                Bytes::new()
            };
            let got = m.broadcast_blocking(0, data, 256).expect("broadcast");
            assert_eq!(got, contribution(0, 256));
            m.barrier_blocking().expect("barrier");
            if m.rank() == 0 {
                // Ordinary point-to-point traffic for every waiting wildcard.
                for to in 1..n {
                    let id = m.group().members()[to];
                    m.endpoint()
                        .send_blocking(id, Tag(5), contribution(to, 32), Duration::from_secs(30))
                        .expect("p2p send");
                }
            } else {
                let wild = wild.unwrap();
                let done = m
                    .endpoint()
                    .wait(OpId::Recv(wild), Duration::from_secs(30))
                    .expect("wildcard matched the p2p message");
                assert_eq!(done.status, Status::Ok);
                assert_eq!(done.tag, Tag(5), "wildcard saw a collective message");
                assert_eq!(done.data.as_deref(), Some(&contribution(m.rank(), 32)[..]));
            }
        });
    }

    /// Point-to-point traffic keeps flowing between collectives on the same
    /// endpoints.
    pub fn p2p_coexists_with_collectives<T: RawTransport + Send>(members: Vec<GroupMember<T>>) {
        run(members, |m| {
            let n = m.group().size();
            let next = m.group().members()[(m.rank() + 1) % n];
            let prev_rank = (m.rank() + n - 1) % n;
            m.barrier_blocking().expect("barrier in");
            let recv = m
                .endpoint()
                .post_recv(
                    m.group().members()[prev_rank],
                    Tag(77),
                    64,
                    TruncationPolicy::Error,
                )
                .expect("ring recv");
            m.endpoint()
                .send_blocking(
                    next,
                    Tag(77),
                    contribution(m.rank(), 64),
                    Duration::from_secs(30),
                )
                .expect("ring send");
            let done = m
                .endpoint()
                .wait(OpId::Recv(recv), Duration::from_secs(30))
                .expect("ring recv done");
            assert_eq!(done.data.as_deref(), Some(&contribution(prev_rank, 64)[..]));
            m.barrier_blocking().expect("barrier out");
        });
    }
}

mod setup {
    use super::*;

    pub fn intranode_group() -> Vec<GroupMember<HostEndpoint>> {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(512 * 1024),
        );
        let ids: Vec<ProcessId> = (0..4).map(|r| ProcessId::new(0, r)).collect();
        let group = Group::new(10, ids.clone()).unwrap();
        ids.iter()
            .map(|&id| {
                group
                    .bind(Endpoint::new(cluster.add_endpoint(id.local_rank)))
                    .unwrap()
            })
            .collect()
    }

    pub fn udp_group() -> Vec<GroupMember<UdpEndpoint>> {
        let proto = ProtocolConfig::paper_internode().with_pushed_buffer(512 * 1024);
        let endpoints: Vec<UdpEndpoint> = (0..4)
            .map(|r| UdpEndpoint::bind(ProcessId::new(r, 0), proto.clone(), "127.0.0.1:0").unwrap())
            .collect();
        for a in &endpoints {
            for b in &endpoints {
                if a.id() != b.id() {
                    a.add_peer(b.id(), b.local_addr().unwrap());
                }
            }
        }
        let ids: Vec<ProcessId> = endpoints.iter().map(|e| e.id()).collect();
        let group = Group::new(11, ids).unwrap();
        endpoints
            .into_iter()
            .map(|e| group.bind(Endpoint::new(e)).unwrap())
            .collect()
    }

    /// Five ranks spread over three simulated nodes: the group mixes the
    /// intranode packet path and the internode go-back-N path inside single
    /// collectives.
    pub fn loopback_group() -> Vec<GroupMember<LoopbackEndpoint>> {
        let cluster =
            LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(512 * 1024));
        let ids: Vec<ProcessId> = (0..5u32).map(|r| ProcessId::new(r / 2, r % 2)).collect();
        let group = Group::new(12, ids.clone()).unwrap();
        ids.iter()
            .map(|&id| group.bind(Endpoint::new(cluster.add_endpoint(id))).unwrap())
            .collect()
    }
}

/// Instantiates every collective conformance case as a `#[test]` for one
/// backend; each test builds a fresh group so the cases stay independent.
macro_rules! coll_conformance_suite {
    ($backend:ident, $setup:path) => {
        mod $backend {
            use super::*;

            macro_rules! case {
                ($name:ident) => {
                    #[test]
                    fn $name() {
                        cases::$name($setup());
                    }
                };
            }

            case!(broadcast_all_roots);
            case!(broadcast_chunked_large);
            case!(reduce_rank_ordered);
            case!(gather_scatter_roundtrip);
            case!(all_to_all_exchange);
            case!(barrier_repeats);
            case!(wildcard_does_not_steal);
            case!(p2p_coexists_with_collectives);
        }
    };
}

coll_conformance_suite!(intranode, setup::intranode_group);
coll_conformance_suite!(udp, setup::udp_group);
coll_conformance_suite!(loopback, setup::loopback_group);

// ---------------------------------------------------------------------
// Non-SPMD contracts.
// ---------------------------------------------------------------------

/// The facade posting API refuses the reserved tag space, in every shape.
#[test]
fn reserved_tags_rejected_on_the_posting_api() {
    let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
    let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
    let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));
    let reserved = Tag(COLLECTIVE_TAG_BIT | 3);
    let data = Bytes::from(vec![1u8; 8]);
    assert!(matches!(
        a.post_send(b.local_id(), reserved, data.clone()),
        Err(Error::ReservedTag { .. })
    ));
    assert!(matches!(
        a.post_send_vectored(b.local_id(), reserved, std::slice::from_ref(&data)),
        Err(Error::ReservedTag { .. })
    ));
    assert!(matches!(
        b.post_recv(a.local_id(), reserved, 64, TruncationPolicy::Error),
        Err(Error::ReservedTag { .. })
    ));
    assert!(matches!(
        b.post_recv_into(
            a.local_id(),
            reserved,
            RecvBuf::with_capacity(64),
            TruncationPolicy::Error
        ),
        Err(Error::ReservedTag { .. })
    ));
    assert!(matches!(
        a.send(b.local_id(), reserved, data.clone()).err(),
        Some(Error::ReservedTag { .. })
    ));
    assert!(matches!(
        b.recv(a.local_id(), reserved, 64, TruncationPolicy::Error)
            .err(),
        Some(Error::ReservedTag { .. })
    ));
    // The wildcard selector itself stays usable.
    assert!(b
        .post_recv(ANY_SOURCE, ANY_TAG, 64, TruncationPolicy::Error)
        .is_ok());
}

/// Group misuse is reported, not deadlocked on: bad roots, non-members,
/// wrong-size roots.
#[test]
fn collective_misuse_is_reported() {
    let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
    let ids: Vec<ProcessId> = (0..2).map(|r| ProcessId::new(0, r)).collect();
    let group = Group::new(0, ids.clone()).unwrap();
    let outsider = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 9)));
    assert!(matches!(
        group.bind(outsider).err(),
        Some(Error::CollectiveMisuse { .. })
    ));
    let m = group
        .bind(Endpoint::new(cluster.add_endpoint(ids[0])))
        .unwrap();
    assert!(matches!(
        block_on(m.broadcast(7, Bytes::new(), 4)),
        Err(Error::CollectiveMisuse { .. })
    ));
    assert!(matches!(
        block_on(m.broadcast(0, Bytes::from(vec![1u8; 3]), 4)),
        Err(Error::CollectiveMisuse { .. })
    ));
    assert!(matches!(
        block_on(m.scatter(0, Bytes::from(vec![1u8; 3]), 4)),
        Err(Error::CollectiveMisuse { .. })
    ));
    assert!(matches!(
        block_on(m.all_to_all(&[Bytes::new(); 1])),
        Err(Error::CollectiveMisuse { .. })
    ));
}

/// Collectives run over type-erased backends too: a `Box<dyn RawTransport>`
/// group on one deterministic `Driver`.
#[test]
fn collectives_over_boxed_dyn_backends() {
    let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
    let ids: Vec<ProcessId> = (0..3).map(|r| ProcessId::new(0, r)).collect();
    let group = Group::new(42, ids.clone()).unwrap();
    let mut driver = Driver::new();
    for &id in &ids {
        let member = group
            .bind(Endpoint::new(cluster.add_endpoint(id)).boxed())
            .unwrap();
        driver.spawn(async move {
            let got = member
                .broadcast(
                    2,
                    if member.rank() == 2 {
                        contribution(2, 50)
                    } else {
                        Bytes::new()
                    },
                    50,
                )
                .await
                .unwrap();
            assert_eq!(got, contribution(2, 50));
            member.barrier().await.unwrap();
        });
    }
    driver.run();
    assert_eq!(driver.live(), 0);
}

/// A single-member group degenerates gracefully: every collective is a
/// local no-op returning the obvious value.
#[test]
fn singleton_group_collectives() {
    let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
    let id = ProcessId::new(0, 0);
    let group = Group::new(1, vec![id]).unwrap();
    let m = group.bind(Endpoint::new(cluster.add_endpoint(id))).unwrap();
    let data = contribution(0, 16);
    assert_eq!(
        block_on(m.broadcast(0, data.clone(), 16)).unwrap(),
        data.clone()
    );
    block_on(m.barrier()).unwrap();
    assert_eq!(
        block_on(m.reduce(0, data.clone(), affine_combine))
            .unwrap()
            .unwrap(),
        data.clone()
    );
    assert_eq!(
        block_on(m.all_reduce(data.clone(), affine_combine)).unwrap(),
        data.clone()
    );
    assert_eq!(
        block_on(m.gather(0, data.clone())).unwrap().unwrap(),
        data.clone()
    );
    assert_eq!(
        block_on(m.scatter(0, data.clone(), 16)).unwrap(),
        data.clone()
    );
    assert_eq!(
        block_on(m.all_to_all(std::slice::from_ref(&data))).unwrap(),
        vec![data]
    );
}
