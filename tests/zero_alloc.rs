//! Regression test for the PR-1/PR-2 acceptance criteria: the steady-state
//! `post_send` → `handle_packet`/`handle_frame` → completion loop must
//! perform **zero heap allocations** — both for fully-eager single-packet
//! ping-pong and for the **multi-fragment pulled path** received through a
//! recycled caller-owned buffer (`post_recv_into`).
//!
//! Two independent detectors have to agree:
//!
//! 1. a counting `#[global_allocator]` observes the real allocator, counting
//!    only allocations made by the test thread itself (libtest's harness
//!    thread allocates concurrently under `cargo test -q`, which used to
//!    fail this test spuriously), and
//! 2. [`EndpointStats::steady_allocs`], the engine's own instrumentation of
//!    its arenas, index tables, operation slabs, pools, go-back-N queues,
//!    action queue, and completion queue.
//!
//! The fully-eager loop is the `lib.rs` doc-example ping-pong with a message
//! small enough to travel in one packet — the latency-critical regime the
//! paper tunes BTP for.  The pulled loop moves 4 KiB messages whose
//! remainder is fragmented and pulled; the seed allocated twice per delivery
//! there (assembly storage handoff + owned `Bytes`), which the caller-owned
//! receive buffer eliminates.

use bytes::Bytes;
// The explicit import shadows the prelude's transport front-end: the two
// synchronous loops drive the sans-I/O engine by hand.  The async loop uses
// the front-end (`prelude::Endpoint`) through an alias.
use push_pull_messaging::core::Endpoint;
use push_pull_messaging::prelude::Endpoint as FrontEnd;
use push_pull_messaging::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// `true` only on the thread whose allocations are being measured.
    /// libtest's harness thread allocates concurrently (e.g. its terse-mode
    /// progress reporting under `cargo test -q`), and those allocations must
    /// not be charged to the protocol hot path.  Const-initialised, so
    /// reading it from inside the allocator never itself allocates.
    static MEASURED_THREAD: Cell<bool> = const { Cell::new(false) };
}

/// Counts an allocator hit if it happened on the measured thread.  The
/// `try_with` guards the TLS-teardown window at thread exit.
fn count_alloc() {
    if MEASURED_THREAD.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counting side effect touches no allocator
// state and itself performs no allocation.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_alloc();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Relays actions between two endpoints until both are quiet.
fn relay(sender: &mut Endpoint, receiver: &mut Endpoint) {
    loop {
        let mut progressed = false;
        for _ in 0..2 {
            while let Some(action) = sender.poll_action() {
                progressed = true;
                match action {
                    Action::Transmit { packet, .. } => receiver.handle_packet(sender.id(), packet),
                    Action::TransmitFrame { frame, .. } => {
                        receiver.handle_frame(sender.id(), frame)
                    }
                    _ => {}
                }
            }
            std::mem::swap(sender, receiver);
        }
        if !progressed {
            break;
        }
    }
}

/// Drains both completion queues, dropping the results (dropping a
/// zero-copy `Bytes` delivery only decrements a reference count).
fn drain_completions(a: &mut Endpoint, b: &mut Endpoint) {
    while a.poll_completion().is_some() {}
    while b.poll_completion().is_some() {}
}

fn pingpong_round(a: &mut Endpoint, b: &mut Endpoint, data: &Bytes) {
    let size = data.len();
    b.post_recv(a.id(), Tag(1), size).unwrap();
    a.post_send(b.id(), Tag(1), data.clone()).unwrap();
    relay(a, b);
    a.post_recv(b.id(), Tag(2), size).unwrap();
    b.post_send(a.id(), Tag(2), data.clone()).unwrap();
    relay(b, a);
    drain_completions(a, b);
}

fn assert_steady_state_zero_alloc(cfg: ProtocolConfig, intranode: bool, size: usize, label: &str) {
    let a_id = ProcessId::new(0, 0);
    let b_id = if intranode {
        ProcessId::new(0, 1)
    } else {
        ProcessId::new(1, 0)
    };
    let mut a = Endpoint::new(a_id, cfg.clone());
    let mut b = Endpoint::new(b_id, cfg);
    // `size` must fit inside the path's BTP so each message travels as
    // exactly one fully-eager packet and is delivered as a zero-copy slice
    // of it.  (A pulled remainder delivered through `post_recv` is
    // reassembled into a freshly owned `Bytes`, which necessarily allocates
    // once per delivered message — see the `post_recv_into` loop below for
    // the allocation-free pull path.)
    let data = Bytes::from(vec![0xEEu8; size]);

    // Warm-up: size every arena, index table, pool, and queue.
    for _ in 0..64 {
        pingpong_round(&mut a, &mut b, &data);
    }

    let engine_allocs_before = a.stats().steady_allocs + b.stats().steady_allocs;
    let heap_allocs_before = ALLOCS.load(Ordering::Relaxed);

    for _ in 0..1000 {
        pingpong_round(&mut a, &mut b, &data);
    }

    let heap_allocs = ALLOCS.load(Ordering::Relaxed) - heap_allocs_before;
    let engine_allocs = a.stats().steady_allocs + b.stats().steady_allocs - engine_allocs_before;

    assert_eq!(
        heap_allocs, 0,
        "{label}: steady-state loop hit the real allocator {heap_allocs} times over 1000 rounds"
    );
    assert_eq!(
        engine_allocs, 0,
        "{label}: EndpointStats::steady_allocs grew by {engine_allocs} over 1000 rounds"
    );
    assert_eq!(a.stats().sends_completed, 1064, "{label}: sends completed");
    assert_eq!(a.stats().recvs_completed, 1064, "{label}: recvs completed");
}

/// The multi-fragment pulled path through a recycled caller-owned buffer:
/// each 4 KiB message pushes 16 eager bytes and pulls the remaining 4080 in
/// three max-payload fragments reassembled directly into the `RecvBuf`.
fn assert_pull_path_zero_alloc_with_recv_into(label: &str) {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024);
    let size = 4096usize;
    let mut a = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
    let mut b = Endpoint::new(ProcessId::new(0, 1), cfg);
    let data = Bytes::from(vec![0xABu8; size]);
    let mut recycled = Some(RecvBuf::with_capacity(size));

    let round = |a: &mut Endpoint, b: &mut Endpoint, recycled: &mut Option<RecvBuf>| {
        let buf = recycled.take().expect("buffer in flight");
        let op = b
            .post_recv_into(a.id(), Tag(1), buf, TruncationPolicy::Error)
            .unwrap();
        a.post_send(b.id(), Tag(1), data.clone()).unwrap();
        relay(a, b);
        while a.poll_completion().is_some() {}
        while let Some(completion) = b.poll_completion() {
            if completion.op == OpId::Recv(op) {
                assert!(matches!(completion.status, Status::Ok));
                let buf = completion.buf.expect("caller buffer handed back");
                assert_eq!(buf.len(), size);
                *recycled = Some(buf);
            }
        }
        assert!(recycled.is_some(), "pulled message did not complete");
    };

    // Warm-up.
    for _ in 0..64 {
        round(&mut a, &mut b, &mut recycled);
    }
    let engine_allocs_before = a.stats().steady_allocs + b.stats().steady_allocs;
    let heap_allocs_before = ALLOCS.load(Ordering::Relaxed);

    for _ in 0..1000 {
        round(&mut a, &mut b, &mut recycled);
    }

    let heap_allocs = ALLOCS.load(Ordering::Relaxed) - heap_allocs_before;
    let engine_allocs = a.stats().steady_allocs + b.stats().steady_allocs - engine_allocs_before;
    assert_eq!(
        heap_allocs, 0,
        "{label}: pulled recv_into loop hit the real allocator {heap_allocs} times over 1000 rounds"
    );
    assert_eq!(
        engine_allocs, 0,
        "{label}: EndpointStats::steady_allocs grew by {engine_allocs} over 1000 rounds"
    );
    assert!(
        b.stats().bytes_pulled == 0 && a.stats().bytes_pulled > 0,
        "{label}: transfers must actually use the pull path"
    );
}

/// The steady-state **async** ping-pong path: one task on [`block_on`]
/// drives fully-eager exchanges and recycled caller-buffered pulled
/// exchanges over the loopback cluster through the `Endpoint` front-end's
/// futures.  Posting, routing, completion storage (op-indexed slots + order
/// deque), future resolution, and a borrowed `peek_completions` pass per
/// round must all run allocation-free once warm; the async layer's only
/// steady costs are refcount bumps on the shared waker.
fn assert_async_pingpong_zero_alloc(label: &str) {
    /// One async round: a fully-eager exchange (engine-buffered receive)
    /// followed by a pulled exchange into the recycled caller buffer, then
    /// a borrowed drain pass over whatever is left unclaimed.
    async fn round(
        a: &FrontEnd<LoopbackEndpoint>,
        b: &FrontEnd<LoopbackEndpoint>,
        eager: &Bytes,
        pulled: &Bytes,
        buf: &mut Option<RecvBuf>,
    ) {
        let recv = b
            .recv(a.local_id(), Tag(1), 16, TruncationPolicy::Error)
            .unwrap();
        a.send(b.local_id(), Tag(1), eager.clone()).unwrap().await;
        let done = recv.await;
        assert!(matches!(done.status, Status::Ok));
        drop(done);
        let recv = b
            .recv_into(
                a.local_id(),
                Tag(2),
                buf.take().expect("buffer in flight"),
                TruncationPolicy::Error,
            )
            .unwrap();
        a.send(b.local_id(), Tag(2), pulled.clone()).unwrap().await;
        let done = recv.await;
        assert!(matches!(done.status, Status::Ok));
        *buf = Some(done.buf.expect("caller buffer handed back"));
        // Borrowed drain: inspecting completions in place is part of the
        // allocation-free steady state.
        b.peek_completions(|completion| {
            assert!(completion.status.is_ok());
            Claim::Keep
        });
    }

    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024));
    let a = FrontEnd::new(cluster.add_endpoint(ProcessId::new(0, 0)));
    let b = FrontEnd::new(cluster.add_endpoint(ProcessId::new(0, 1)));
    let eager = Bytes::from(vec![0xCDu8; 16]); // one fully-eager packet
    let pulled = Bytes::from(vec![0xEFu8; 4096]); // multi-fragment pull

    // Warm-up and measured phase inside a single block_on call, so the
    // executor's waker Arc is part of the warm state.
    let (heap_allocs, engine_allocs) = block_on(async {
        let mut buf = Some(RecvBuf::with_capacity(4096));
        for _ in 0..64 {
            round(&a, &b, &eager, &pulled, &mut buf).await;
        }
        let engine_before = a.stats().steady_allocs + b.stats().steady_allocs;
        let heap_before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..1000 {
            round(&a, &b, &eager, &pulled, &mut buf).await;
        }
        (
            ALLOCS.load(Ordering::Relaxed) - heap_before,
            a.stats().steady_allocs + b.stats().steady_allocs - engine_before,
        )
    });

    assert_eq!(
        heap_allocs, 0,
        "{label}: steady async loop hit the real allocator {heap_allocs} times over 1000 rounds"
    );
    assert_eq!(
        engine_allocs, 0,
        "{label}: EndpointStats::steady_allocs grew by {engine_allocs} over 1000 rounds"
    );
}

/// A small vectored send on the steady path: the push phase is chunked
/// straight off the caller's **borrowed** segment slice, so a fully-eager
/// vectored send never materialises an owned payload — no `Arc<[Bytes]>`
/// pin, no allocation at all — and the exchange into a recycled caller
/// buffer stays clean.
fn assert_small_vectored_send_zero_alloc(label: &str) {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024);
    let mut a = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
    let mut b = Endpoint::new(ProcessId::new(0, 1), cfg);
    // 16 bytes in three segments: fully eager, three packets (chunks never
    // cross segment boundaries), reassembled into the caller buffer.
    let segments = [
        Bytes::from(vec![0x11u8; 6]),
        Bytes::from(vec![0x22u8; 4]),
        Bytes::from(vec![0x33u8; 6]),
    ];
    let total: usize = segments.iter().map(Bytes::len).sum();
    let mut recycled = Some(RecvBuf::with_capacity(total));

    let round = |a: &mut Endpoint, b: &mut Endpoint, recycled: &mut Option<RecvBuf>| {
        let buf = recycled.take().expect("buffer in flight");
        let op = b
            .post_recv_into(a.id(), Tag(1), buf, TruncationPolicy::Error)
            .unwrap();
        a.post_send_vectored(b.id(), Tag(1), &segments).unwrap();
        relay(a, b);
        while a.poll_completion().is_some() {}
        while let Some(completion) = b.poll_completion() {
            if completion.op == OpId::Recv(op) {
                assert!(matches!(completion.status, Status::Ok));
                let buf = completion.buf.expect("caller buffer handed back");
                assert_eq!(buf.len(), total);
                *recycled = Some(buf);
            }
        }
        assert!(recycled.is_some(), "vectored message did not complete");
    };

    for _ in 0..64 {
        round(&mut a, &mut b, &mut recycled);
    }
    let engine_allocs_before = a.stats().steady_allocs + b.stats().steady_allocs;
    let heap_allocs_before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        round(&mut a, &mut b, &mut recycled);
    }
    let heap_allocs = ALLOCS.load(Ordering::Relaxed) - heap_allocs_before;
    let engine_allocs = a.stats().steady_allocs + b.stats().steady_allocs - engine_allocs_before;
    assert_eq!(
        heap_allocs, 0,
        "{label}: small vectored send loop hit the real allocator {heap_allocs} times"
    );
    assert_eq!(engine_allocs, 0, "{label}: steady_allocs grew");
}

/// The blocking front-end `wait` loop: with the thread-local parker cache,
/// a post + `Endpoint::wait` cycle performs no heap allocation (the old
/// code paid one `Arc` per `wait` call for its parking waker).
fn assert_blocking_wait_zero_alloc(label: &str) {
    use std::time::Duration;
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024));
    let a = FrontEnd::new(cluster.add_endpoint(ProcessId::new(0, 0)));
    let b = FrontEnd::new(cluster.add_endpoint(ProcessId::new(0, 1)));
    let data = Bytes::from(vec![0x5Au8; 16]);
    let timeout = Duration::from_secs(5);

    let round = |a: &FrontEnd<LoopbackEndpoint>, b: &FrontEnd<LoopbackEndpoint>| {
        let recv = b
            .post_recv(a.local_id(), Tag(1), 16, TruncationPolicy::Error)
            .unwrap();
        let send = a.post_send(b.local_id(), Tag(1), data.clone()).unwrap();
        assert!(b.wait(OpId::Recv(recv), timeout).is_some());
        assert!(a.wait(OpId::Send(send), timeout).is_some());
    };

    // Warm-up must cross the completion queues' order-deque compaction
    // threshold (one entry per round, compacted past 64) so the one-time
    // capacity doubling happens before measurement.
    for _ in 0..200 {
        round(&a, &b);
    }
    let heap_allocs_before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        round(&a, &b);
    }
    let heap_allocs = ALLOCS.load(Ordering::Relaxed) - heap_allocs_before;
    assert_eq!(
        heap_allocs, 0,
        "{label}: blocking wait loop hit the real allocator {heap_allocs} times over 1000 rounds"
    );
}

/// The steady-state **collective** inner loops: a 4-rank loopback group on
/// one `Driver` runs broadcast + all_reduce + barrier rounds; once warm,
/// the whole stack — tag derivation, tree posting, completion claiming,
/// future wake-ups, zero-copy eager forwarding — must not allocate.  The
/// combine operator hands back one of its inputs (a refcount move), as an
/// element-wise reduction over pre-owned buffers would.
fn assert_collective_loops_zero_alloc(label: &str) {
    use push_pull_messaging::coll::Group;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024));
    let ids: Vec<ProcessId> = (0..4).map(|r| ProcessId::new(0, r)).collect();
    let group = Group::new(6, ids.clone()).unwrap();
    // Heap-counter snapshots pushed by rank 0 between barriers; capacity
    // pre-reserved so the pushes themselves cannot allocate inside the
    // measured window.
    let marks: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(4)));
    let warm = Arc::new(AtomicBool::new(false));
    let mut driver = Driver::new();
    for &id in &ids {
        let member = group.bind(FrontEnd::new(cluster.add_endpoint(id))).unwrap();
        let marks = marks.clone();
        let warm = warm.clone();
        driver.spawn(async move {
            // ------------------------------------------------------------
            // Pre-size the engine's matching state: whether a collective
            // message arrives *unexpected* (before its receive is posted)
            // depends on interleaving phase, and each `(src, tag-slot)`
            // pair's first unexpected arrival creates a bucket in the
            // bounded unexpected-queue maps.  Push every pair through the
            // unexpected path once, deterministically, so nothing is left
            // to create later: sends first (reserved tags go through the
            // raw backend), then a point-to-point handshake that guarantees
            // every peer's sends have landed, then the claiming receives.
            // ------------------------------------------------------------
            use push_pull_messaging::core::{OpId as CoreOpId, COLLECTIVE_TAG_BIT};
            let me = member.rank();
            let n = member.group().size();
            let gid = member.group().id() as u32;
            let slot_tag = |s: u32| Tag(COLLECTIVE_TAG_BIT | gid << 8 | s);
            let slots =
                push_pull_messaging::coll::GroupMember::<LoopbackEndpoint>::SEQ_SLOTS as u32;
            let byte = Bytes::from(vec![0u8; 1]);
            let peers: Vec<ProcessId> = (0..n)
                .filter(|&r| r != me)
                .map(|r| member.group().members()[r])
                .collect();
            // Receive-queue buckets: register-and-cancel a receive per pair
            // (a receive that matches an already-buffered message instantly
            // never registers, so it would leave no bucket behind — in that
            // case repeat once against the now-empty pair).
            let mut consumed = vec![false; peers.len() * slots as usize];
            for (pi, &peer) in peers.iter().enumerate() {
                for s in 0..slots {
                    let op = member
                        .endpoint()
                        .raw()
                        .post_recv(peer, slot_tag(s), 1, TruncationPolicy::Error)
                        .unwrap();
                    if !member.endpoint().cancel(op) {
                        consumed[pi * slots as usize + s as usize] = true;
                        let op = member
                            .endpoint()
                            .raw()
                            .post_recv(peer, slot_tag(s), 1, TruncationPolicy::Error)
                            .unwrap();
                        assert!(member.endpoint().cancel(op), "one message per pair");
                    }
                }
            }
            for &peer in &peers {
                for s in 0..slots {
                    member
                        .endpoint()
                        .raw()
                        .post_send(peer, slot_tag(s), byte.clone())
                        .unwrap();
                }
                member
                    .endpoint()
                    .post_send(peer, Tag(999), byte.clone())
                    .unwrap();
            }
            for (pi, &peer) in peers.iter().enumerate() {
                let op = member
                    .endpoint()
                    .post_recv(peer, Tag(999), 1, TruncationPolicy::Error)
                    .unwrap();
                member.endpoint().future(CoreOpId::Recv(op)).await;
                for s in 0..slots {
                    if consumed[pi * slots as usize + s as usize] {
                        continue; // the bucket probe above already claimed it
                    }
                    let op = member
                        .endpoint()
                        .raw()
                        .post_recv(peer, slot_tag(s), 1, TruncationPolicy::Error)
                        .unwrap();
                    member.endpoint().future(CoreOpId::Recv(op)).await;
                }
            }
            // Retire the fire-and-forget pre-warm send completions.
            let mut scratch = Vec::new();
            member.endpoint().drain_completions(&mut scratch);
            drop(scratch);

            let mine = Bytes::from(vec![member.rank() as u8 + 1; 16]);
            let round = |data: Bytes| async {
                let got = member.broadcast(0, data, 16).await.unwrap();
                assert_eq!(got[0], 1);
                let max = member
                    .all_reduce(mine.clone(), |x, y| if x[0] >= y[0] { x } else { y })
                    .await
                    .unwrap();
                assert_eq!(max[0], 4);
                member.barrier().await.unwrap();
            };
            // Warm-up runs in 64-round blocks until one whole block stops
            // touching the allocator: whether a collective message arrives
            // *unexpected* (before its receive is posted) depends on the
            // interleaving phase, and each `(src, tag-slot)` pair's first
            // unexpected arrival creates its bucket in the bounded
            // unexpected-queue maps — convergence, not a fixed round count,
            // is the honest warm-up criterion.
            let mut blocks = 0;
            loop {
                let before = ALLOCS.load(Ordering::Relaxed);
                for _ in 0..64 {
                    round(if member.rank() == 0 {
                        mine.clone()
                    } else {
                        Bytes::new()
                    })
                    .await;
                }
                member.barrier().await.unwrap();
                if member.rank() == 0 {
                    warm.store(ALLOCS.load(Ordering::Relaxed) == before, Ordering::Relaxed);
                }
                member.barrier().await.unwrap();
                if warm.load(Ordering::Relaxed) {
                    break;
                }
                blocks += 1;
                assert!(
                    blocks < 64,
                    "collective loop never reached an allocation-free steady state"
                );
            }
            if member.rank() == 0 {
                marks.lock().unwrap().push(ALLOCS.load(Ordering::Relaxed));
            }
            member.barrier().await.unwrap();
            for _ in 0..1000 {
                round(if member.rank() == 0 {
                    mine.clone()
                } else {
                    Bytes::new()
                })
                .await;
            }
            member.barrier().await.unwrap();
            if member.rank() == 0 {
                marks.lock().unwrap().push(ALLOCS.load(Ordering::Relaxed));
            }
            // Keep every task alive until after the final mark: a sibling
            // retiring early would grow the driver's free-slot list inside
            // the measured window.
            member.barrier().await.unwrap();
        });
    }
    driver.run();
    assert_eq!(driver.live(), 0);
    let marks = marks.lock().unwrap();
    assert_eq!(marks.len(), 2);
    assert_eq!(
        marks[1] - marks[0],
        0,
        "{label}: 1000 collective rounds hit the real allocator {} times",
        marks[1] - marks[0]
    );
}

#[test]
fn steady_state_loops_perform_zero_heap_allocations() {
    // Only this thread's allocations count; the libtest harness thread is
    // free to report progress however it likes.
    MEASURED_THREAD.with(|f| f.set(true));
    // The flight recorder stays ON for every measured loop below: the
    // telemetry plane's hot-path contract is that recording trace events
    // (ops, frames, timers) costs zero heap allocations once warm.  The
    // one-time per-thread ring registration is paid here, before any
    // measured window opens.
    #[cfg(feature = "telemetry")]
    {
        use push_pull_messaging::core::telemetry::recorder;
        assert!(
            recorder::enabled(),
            "flight recorder must be on while the allocation-free loops run"
        );
        recorder::touch_current_thread();
    }
    // Intranode: raw packets through the kernel queues (BTP = 16 bytes).
    assert_steady_state_zero_alloc(
        ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024),
        true,
        16,
        "intranode packets",
    );
    // Internode: go-back-N framed path, including ack and timer traffic
    // (BTP(1) = 80 bytes covers the 64-byte message in the first push).
    assert_steady_state_zero_alloc(
        ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024),
        false,
        64,
        "internode frames",
    );
    // Multi-fragment pulled messages into a recycled caller-owned buffer.
    assert_pull_path_zero_alloc_with_recv_into("intranode pulled recv_into");
    // The same traffic through the async front-end over the loopback
    // cluster: Endpoint front-end futures + CompletionQueue, still zero-alloc.
    assert_async_pingpong_zero_alloc("async loopback pingpong");
    // Fully-eager vectored sends chunk off the borrowed slice — no Arc pin.
    assert_small_vectored_send_zero_alloc("intranode small vectored send");
    // Blocking waits reuse the thread-local parker — no Arc per call.
    assert_blocking_wait_zero_alloc("loopback blocking wait");
    // Collective broadcast/all_reduce/barrier rounds on a 4-rank group.
    assert_collective_loops_zero_alloc("loopback collectives");
    // Prove the recorder was live the whole time, not compiled out or
    // disabled: the loops above must have left real events in this thread's
    // ring (ops posted/completed at minimum).
    #[cfg(feature = "telemetry")]
    {
        use push_pull_messaging::core::telemetry::{snapshot, EventKind};
        let snap = snapshot();
        assert!(
            snap.has_kind(EventKind::OpPosted) && snap.has_kind(EventKind::OpCompleted),
            "the measured loops recorded no trace events — the zero-alloc proof no longer \
             covers the flight recorder"
        );
    }
}
