//! The backend conformance suite: every behavioural contract of the
//! transport front-end, written **once** as generic functions over
//! `Endpoint<T: RawTransport>` and instantiated per backend by the
//! `conformance_suite!` macro — replacing the copy-adapted per-backend
//! blocks the integration tests used to carry.
//!
//! Covered per backend (intranode fabric, UDP, sim-cluster loopback):
//! blocking round trips, wildcard matching, caller-owned buffers, recv and
//! send cancellation, both truncation policies (the PR-2 "too-small receive
//! poisons the message" regression), vectored sends, borrowed completion
//! peeking (`peek_completions`), batch draining, async overlap through the
//! `OpFuture` combinators, and the per-endpoint retention cap with its
//! `completions_evicted` stat.

use bytes::Bytes;
use push_pull_messaging::core::{Error, ANY_SOURCE, ANY_TAG};
use push_pull_messaging::prelude::*;
use std::time::Duration;

// Generous: the suite runs many test binaries in parallel (and CI runs the
// whole matrix), so a UDP retransmission path can be starved for seconds
// without anything being wrong.  Tests normally finish in milliseconds; the
// timeout only bounds genuine failures.
const TIMEOUT: Duration = Duration::from_secs(30);

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 7 % 256) as u8).collect::<Vec<u8>>())
}

/// The shared case bodies, generic over the backend.
mod cases {
    use super::*;

    /// Exact-match blocking round trip through the provided conveniences.
    pub fn blocking_roundtrip<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(4096);
        let recv = b
            .post_recv(a.local_id(), Tag(1), 4096, TruncationPolicy::Error)
            .unwrap();
        let sent = a
            .send_blocking(b.local_id(), Tag(1), data.clone(), TIMEOUT)
            .expect("send completed");
        assert_eq!(sent, 4096);
        let done = b.wait(OpId::Recv(recv), TIMEOUT).expect("recv completed");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.data.as_deref(), Some(&data[..]));
        assert_eq!(
            b.recv_blocking(a.local_id(), Tag(1), 16, Duration::from_millis(50)),
            None,
            "nothing further was sent"
        );
    }

    /// Wildcard receive reports the concrete source and tag.
    pub fn wildcard_receive<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(4096);
        let wild = b
            .post_recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
            .unwrap();
        a.send_blocking(b.local_id(), Tag(42), data.clone(), TIMEOUT)
            .expect("wildcard send");
        let done = b.wait(OpId::Recv(wild), TIMEOUT).expect("wildcard recv");
        assert_eq!(done.peer, a.local_id());
        assert_eq!(done.tag, Tag(42));
        assert_eq!(done.data.as_deref(), Some(&data[..]));
    }

    /// Caller-owned buffer: the multi-fragment pull path lands in caller
    /// storage and the buffer comes back in the completion.
    pub fn recv_into_buffer<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(4096);
        let op = b
            .post_recv_into(
                a.local_id(),
                Tag(2),
                RecvBuf::with_capacity(4096),
                TruncationPolicy::Error,
            )
            .unwrap();
        a.send_blocking(b.local_id(), Tag(2), data.clone(), TIMEOUT)
            .expect("recv_into send");
        let done = b.wait(OpId::Recv(op), TIMEOUT).expect("recv_into recv");
        assert_eq!(done.status, Status::Ok);
        let buf = done.buf.expect("buffer handed back");
        assert_eq!(buf.as_slice(), &data[..]);
    }

    /// Cancellation: the op completes Cancelled, never with data, and the
    /// message posted afterwards goes to the replacement receive.
    pub fn cancel_recv<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(4096);
        let doomed = b
            .post_recv(a.local_id(), Tag(3), 4096, TruncationPolicy::Error)
            .unwrap();
        assert!(b.cancel(doomed), "pending recv must cancel");
        assert!(!b.cancel(doomed), "stale handle must not cancel");
        let done = b.wait(OpId::Recv(doomed), TIMEOUT).expect("cancellation");
        assert_eq!(done.status, Status::Cancelled);
        let replacement = b
            .post_recv(a.local_id(), Tag(3), 4096, TruncationPolicy::Error)
            .unwrap();
        a.send_blocking(b.local_id(), Tag(3), data.clone(), TIMEOUT)
            .expect("post-cancel send");
        let done = b
            .wait(OpId::Recv(replacement), TIMEOUT)
            .expect("replacement");
        assert_eq!(done.data.as_deref(), Some(&data[..]));
    }

    /// cancel_send: a send whose pull never comes is reclaimed with a
    /// Cancelled completion (the pushed buffer is far smaller than 256 KiB,
    /// so a remainder is always registered for pulling, and no receive is
    /// ever posted to pull it).
    pub fn cancel_send_unpulled<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let unpulled = a
            .post_send(b.local_id(), Tag(99), payload(256 * 1024))
            .unwrap();
        assert!(a.cancel_send(unpulled), "unpulled send must cancel");
        assert!(!a.cancel_send(unpulled), "stale handle");
        let done = block_on(a.future(OpId::Send(unpulled)));
        assert_eq!(done.status, Status::Cancelled);
    }

    /// Too-small receive with `TruncationPolicy::Error` completes with an
    /// error and the next adequate receive gets the full message (the PR-1
    /// "poisoned message" regression).
    pub fn truncation_error_policy<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(8192);
        a.post_send(b.local_id(), Tag(11), data.clone()).unwrap();
        let small = b
            .post_recv(a.local_id(), Tag(11), 64, TruncationPolicy::Error)
            .unwrap();
        let failed = b
            .wait(OpId::Recv(small), TIMEOUT)
            .expect("too-small receive never completed");
        assert!(
            matches!(
                failed.status,
                Status::Error(Error::ReceiveTooSmall {
                    posted: 64,
                    incoming: 8192
                })
            ),
            "unexpected status {:?}",
            failed.status
        );
        // The message is unharmed: an adequate receive obtains every byte,
        // including the eager prefix the seed used to discard.
        let ok = b
            .post_recv(a.local_id(), Tag(11), 8192, TruncationPolicy::Error)
            .unwrap();
        let done = b
            .wait(OpId::Recv(ok), TIMEOUT)
            .expect("adequate receive hung (poisoned message)");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.data.as_deref(), Some(&data[..]));
    }

    /// `TruncationPolicy::Truncate` completes with `Status::Truncated` and
    /// the prefix that fits, consuming the message.
    pub fn truncation_truncate_policy<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(8192);
        a.post_send(b.local_id(), Tag(12), data.clone()).unwrap();
        let op = b
            .post_recv(a.local_id(), Tag(12), 100, TruncationPolicy::Truncate)
            .unwrap();
        let done = b
            .wait(OpId::Recv(op), TIMEOUT)
            .expect("truncating receive never completed");
        assert_eq!(done.status, Status::Truncated { message_len: 8192 });
        assert_eq!(done.len, 100);
        assert_eq!(done.data.as_deref(), Some(&data[..100]));
    }

    /// A vectored send delivers the concatenation of its segments — blocking
    /// and async alike — including empty segments.
    pub fn vectored_send<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let segments = vec![
            payload(100),
            Bytes::new(),
            payload(3000).slice(7..2500),
            payload(13),
        ];
        let expected: Vec<u8> = segments.iter().flat_map(|s| s.iter().copied()).collect();
        let recv = b
            .post_recv(
                a.local_id(),
                Tag(21),
                expected.len(),
                TruncationPolicy::Error,
            )
            .unwrap();
        let send = a
            .post_send_vectored(b.local_id(), Tag(21), &segments)
            .unwrap();
        let done = b.wait(OpId::Recv(recv), TIMEOUT).expect("vectored recv");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.data.as_deref(), Some(&expected[..]));
        assert_eq!(
            a.wait(OpId::Send(send), TIMEOUT).map(|c| c.len),
            Some(expected.len())
        );

        // Async flavour, reassembled into a caller buffer.
        block_on(async {
            let recv = b
                .recv_into(
                    a.local_id(),
                    Tag(22),
                    RecvBuf::with_capacity(expected.len()),
                    TruncationPolicy::Error,
                )
                .unwrap();
            a.send_vectored(b.local_id(), Tag(22), &segments)
                .unwrap()
                .await;
            let done = recv.await;
            assert_eq!(done.status, Status::Ok);
            assert_eq!(done.buf.expect("buffer back").as_slice(), &expected[..]);
        });
    }

    /// The borrowed completion drain: a multi-fragment pulled receive is
    /// inspected — status, peer, full payload — **without** its `RecvBuf`
    /// leaving the queue, then claimed intact; fire-and-forget send results
    /// are retired in place with `Claim::Remove`.
    pub fn peek_completions_borrowed<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(8192); // several max-payload fragments, pulled
        let recv = b
            .post_recv_into(
                a.local_id(),
                Tag(31),
                RecvBuf::with_capacity(8192),
                TruncationPolicy::Error,
            )
            .unwrap();
        let send = a.post_send(b.local_id(), Tag(31), data.clone()).unwrap();
        // Wait on the *send* only: the receive completion must sit in b's
        // queue unawaited, where the peek can legally see it.
        assert!(a.wait(OpId::Send(send), TIMEOUT).is_some());

        // The UDP backend publishes b's completion from its reception
        // thread; poll the peek until it shows up (instant elsewhere).
        let deadline = std::time::Instant::now() + TIMEOUT;
        let mut seen = false;
        while !seen && std::time::Instant::now() < deadline {
            b.peek_completions(|completion| {
                if completion.op == OpId::Recv(recv) {
                    seen = true;
                    // Inspect in place: the payload is visible through the
                    // borrowed RecvBuf, data stays engine-free, nothing moves.
                    assert_eq!(completion.status, Status::Ok);
                    assert_eq!(completion.peer, a.local_id());
                    assert!(completion.data.is_none());
                    let buf = completion.buf.as_ref().expect("caller buffer present");
                    assert_eq!(buf.as_slice(), &data[..]);
                }
                Claim::Keep
            });
            if !seen {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert!(seen, "peek never observed the pulled receive");
        // Keep preserved it: the completion is still claimable, buffer intact.
        let done = b
            .take_completion(OpId::Recv(recv))
            .expect("kept completion still claimable");
        assert_eq!(done.buf.expect("buffer intact").as_slice(), &data[..]);

        // Claim::Remove retires fire-and-forget results in place.
        let fire = a.post_send(b.local_id(), Tag(33), payload(8)).unwrap();
        let deadline = std::time::Instant::now() + TIMEOUT;
        let mut removed = false;
        while !removed && std::time::Instant::now() < deadline {
            a.peek_completions(|completion| {
                if completion.op == OpId::Send(fire) {
                    removed = true;
                    Claim::Remove
                } else {
                    Claim::Keep
                }
            });
            if !removed {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert!(removed, "peek never observed the fire-and-forget send");
        assert!(
            a.take_completion(OpId::Send(fire)).is_none(),
            "removed completion must be gone"
        );
    }

    /// Batch draining returns results oldest-first and leaves nothing behind.
    pub fn drain_completions_batch<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(64);
        for tag in [41u32, 42, 43] {
            let recv = b
                .post_recv(a.local_id(), Tag(tag), 64, TruncationPolicy::Error)
                .unwrap();
            a.send_blocking(b.local_id(), Tag(tag), data.clone(), TIMEOUT)
                .expect("send");
            b.wait(OpId::Recv(recv), TIMEOUT).expect("recv");
        }
        let mut leftovers = Vec::new();
        b.drain_completions(&mut leftovers);
        assert!(
            leftovers.iter().all(|c| matches!(c.op, OpId::Send(_))),
            "no receive completions may linger after their waits"
        );
    }

    /// Overlapped async exchange: completions resolve by operation, not
    /// posting order, and a caller buffer is recycled across awaits.
    pub fn async_overlap<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        let data = payload(4096);
        let (one, two) = block_on(async {
            let first = b
                .recv(a.local_id(), Tag(51), 4096, TruncationPolicy::Error)
                .unwrap();
            let second = b
                .recv(ANY_SOURCE, ANY_TAG, 4096, TruncationPolicy::Error)
                .unwrap();
            let s1 = a.send(b.local_id(), Tag(51), data.clone()).unwrap();
            let s2 = a.send(b.local_id(), Tag(52), data.clone()).unwrap();
            let two = second.await;
            let one = first.await;
            s2.await;
            s1.await;
            (one, two)
        });
        assert_eq!(one.status, Status::Ok);
        assert_eq!(one.data.as_deref(), Some(&data[..]));
        assert_eq!(two.tag, Tag(52), "wildcard reports concrete tag");
        assert_eq!(two.data.as_deref(), Some(&data[..]));

        block_on(async {
            let mut buf = RecvBuf::with_capacity(4096);
            for round in 0..2 {
                let recv = b
                    .recv_into(a.local_id(), Tag(53), buf, TruncationPolicy::Error)
                    .unwrap();
                a.send(b.local_id(), Tag(53), data.clone()).unwrap().await;
                let done = recv.await;
                assert!(matches!(done.status, Status::Ok), "round {round}");
                buf = done.buf.expect("buffer handed back");
                assert_eq!(buf.as_slice(), &data[..], "round {round}");
            }
        });
    }

    /// The per-endpoint retention cap is live-applicable and its evictions
    /// are surfaced through `EndpointStats::completions_evicted`.
    pub fn retention_cap_and_evicted_stat<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
        a.apply_config(&EndpointConfig::new().completion_retention(4));
        let evicted_before = a.stats().completions_evicted;
        // 16 fire-and-forget eager sends: tiny messages are pushed whole, so
        // each send's completion is published *inside* `post_send`, on the
        // posting thread, on every backend — by the time the loop ends, all
        // 16 completions have passed through the queue deterministically and
        // all but the newest 4 have been evicted.  (Receives are posted up
        // front only to keep the messages from lingering as unexpected.)
        let receives: Vec<_> = (0..16)
            .map(|_| {
                b.post_recv(a.local_id(), Tag(61), 8, TruncationPolicy::Error)
                    .unwrap()
            })
            .collect();
        for _ in 0..16 {
            a.post_send(b.local_id(), Tag(61), payload(8)).unwrap();
        }
        let mut drained = Vec::new();
        a.drain_completions(&mut drained);
        let evicted = a.stats().completions_evicted - evicted_before;
        assert_eq!(drained.len(), 4, "cap 4 ⇒ exactly the newest 4 retained");
        assert_eq!(evicted, 12, "12 evictions surfaced in stats");
        for recv in receives {
            b.wait(OpId::Recv(recv), TIMEOUT).expect("recv completed");
        }
    }
}

mod setup {
    use super::*;

    pub fn intranode_pair() -> (Endpoint<HostEndpoint>, Endpoint<HostEndpoint>) {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(128 * 1024),
        );
        (
            Endpoint::new(cluster.add_endpoint(0)),
            Endpoint::new(cluster.add_endpoint(1)),
        )
    }

    pub fn udp_pair() -> (Endpoint<UdpEndpoint>, Endpoint<UdpEndpoint>) {
        let proto = ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024);
        let a = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
        a.add_peer(b.id(), b.local_addr().unwrap());
        b.add_peer(a.id(), a.local_addr().unwrap());
        (Endpoint::new(a), Endpoint::new(b))
    }

    pub fn loopback_pair() -> (Endpoint<LoopbackEndpoint>, Endpoint<LoopbackEndpoint>) {
        let cluster =
            LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024));
        (
            Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0))),
            Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0))),
        )
    }

    /// The chaos cluster at a fixed seed: every contract must also hold
    /// with drops, duplicates, reordering, delay jitter, and scheduled
    /// partitions between the two endpoints (`tests/chaos.rs` sweeps the
    /// same behaviours across many seeds).
    pub fn chaos_pair() -> (Endpoint<ChaosEndpoint>, Endpoint<ChaosEndpoint>) {
        chaos_pair_with(ReliabilityMode::GoBackN)
    }

    /// The chaos pair again with selective repeat driving every channel:
    /// SACK-based recovery must satisfy the identical contracts.
    pub fn chaos_sr_pair() -> (Endpoint<ChaosEndpoint>, Endpoint<ChaosEndpoint>) {
        chaos_pair_with(ReliabilityMode::SelectiveRepeat)
    }

    fn chaos_pair_with(
        mode: ReliabilityMode,
    ) -> (Endpoint<ChaosEndpoint>, Endpoint<ChaosEndpoint>) {
        let cluster = ChaosCluster::new(
            ProtocolConfig::paper_internode()
                .with_pushed_buffer(128 * 1024)
                .with_reliability(mode),
            ChaosConfig::new(0xC0FFEE),
        );
        (
            Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0))),
            Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0))),
        )
    }

    /// One reactor event loop shared by every reactor-backend case: the
    /// suite doubles as a many-endpoints-on-one-loop stress (each case
    /// adds a fresh pair, and dropped pairs must deregister cleanly).
    fn reactor() -> &'static Reactor {
        static REACTOR: std::sync::OnceLock<Reactor> = std::sync::OnceLock::new();
        REACTOR.get_or_init(|| Reactor::new().expect("spawn reactor"))
    }

    pub fn reactor_pair() -> (Endpoint<ReactorEndpoint>, Endpoint<ReactorEndpoint>) {
        reactor_pair_with(ReliabilityMode::GoBackN)
    }

    /// Selective repeat over the reactor: both halves of the PR-7
    /// subsystem (batched event loop + SACK reliability) under the full
    /// contract suite at once.
    pub fn reactor_sr_pair() -> (Endpoint<ReactorEndpoint>, Endpoint<ReactorEndpoint>) {
        reactor_pair_with(ReliabilityMode::SelectiveRepeat)
    }

    fn reactor_pair_with(
        mode: ReliabilityMode,
    ) -> (Endpoint<ReactorEndpoint>, Endpoint<ReactorEndpoint>) {
        let proto = ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024);
        let config = EndpointConfig::new().reliability(mode);
        let r = reactor();
        let a = r
            .add_endpoint_with(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0", &config)
            .unwrap();
        let b = r
            .add_endpoint_with(ProcessId::new(1, 0), proto, "127.0.0.1:0", &config)
            .unwrap();
        a.add_peer(b.id(), b.local_addr().unwrap());
        b.add_peer(a.id(), a.local_addr().unwrap());
        (Endpoint::new(a), Endpoint::new(b))
    }
}

/// Instantiates every conformance case as a `#[test]` for one backend.
/// Each test builds a fresh pair so the cases stay independent.
macro_rules! conformance_suite {
    ($backend:ident, $setup:path) => {
        mod $backend {
            use super::*;

            macro_rules! case {
                ($name:ident) => {
                    #[test]
                    fn $name() {
                        let (a, b) = $setup();
                        cases::$name(&a, &b);
                    }
                };
            }

            case!(blocking_roundtrip);
            case!(wildcard_receive);
            case!(recv_into_buffer);
            case!(cancel_recv);
            case!(cancel_send_unpulled);
            case!(truncation_error_policy);
            case!(truncation_truncate_policy);
            case!(vectored_send);
            case!(peek_completions_borrowed);
            case!(drain_completions_batch);
            case!(async_overlap);
            case!(retention_cap_and_evicted_stat);
        }
    };
}

conformance_suite!(intranode, setup::intranode_pair);
conformance_suite!(udp, setup::udp_pair);
conformance_suite!(loopback, setup::loopback_pair);
conformance_suite!(chaos, setup::chaos_pair);
conformance_suite!(chaos_selective_repeat, setup::chaos_sr_pair);
conformance_suite!(reactor, setup::reactor_pair);
conformance_suite!(reactor_selective_repeat, setup::reactor_sr_pair);
