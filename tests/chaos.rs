//! The chaos sweeps: the conformance and collective behaviours re-executed
//! across many seeds of the deterministic fault plane
//! (`ppmsg_sim::chaos::ChaosCluster`) — drops, duplicates, reordering,
//! delay jitter, and scheduled partition-and-heal windows, all recoverable
//! through go-back-N retransmission on the virtual clock.
//!
//! Any failing seed is reported with replay instructions
//! (`ChaosConfig::new(seed)`); re-running a single seed reproduces the run
//! byte for byte.  Knobs:
//!
//! * `CHAOS_SEEDS=n` — number of seeds per sweep (CI uses 256; the local
//!   default totals 1100 across the two sweeps).
//! * `CHAOS_SEED_START=s` — first seed, for replaying one failure.
//! * `CHAOS_REPORT=path` — append rendered sweep reports to a file.
//!
//! The sweep has teeth: `sabotaged_retransmission_fails_the_sweep` disables
//! one timer re-arm in the go-back-N channel and asserts the sweep catches
//! it within the first few hundred seeds.

use bytes::Bytes;
use proptest::prelude::*;
use push_pull_messaging::coll::Group;
use push_pull_messaging::core::{Error, ANY_SOURCE, ANY_TAG};
use push_pull_messaging::prelude::*;
use push_pull_messaging::sim::chaos::{seed_start_from_env, seeds_from_env, sweep};
use push_pull_messaging::simnet::fault::{
    derive_seed, DelayModel, DuplicateModel, PartitionSchedule, ReorderModel,
};
use push_pull_messaging::simnet::loss::LossModel;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};
use std::time::Duration;

/// Virtual-clock cluster: posts return with recovery already driven to
/// quiescence, so the timeout only bounds genuine failures.
const TIMEOUT: Duration = Duration::from_secs(30);

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 13 % 251) as u8).collect::<Vec<u8>>())
}

fn proto() -> ProtocolConfig {
    ProtocolConfig::paper_internode().with_pushed_buffer(1 << 20)
}

/// The same protocol with selective repeat driving every internode
/// channel: the sweeps must hold under SACK-based recovery too.
fn proto_sr() -> ProtocolConfig {
    proto().with_reliability(ReliabilityMode::SelectiveRepeat)
}

// ---------------------------------------------------------------------------
// Conformance sweep: point-to-point contracts under every fault type
// ---------------------------------------------------------------------------

/// One seed of the conformance sweep: a three-process cluster (two
/// processes sharing node 0, one on node 1) running the point-to-point
/// contracts — exact match, late receive, wildcard, caller buffers, both
/// truncation policies, vectored sends, and a same-tag ordering stress —
/// with sizes varied by the seed.
fn conformance_scenario(seed: u64) {
    conformance_scenario_with(seed, proto())
}

/// The conformance workload with selective-repeat channels.
fn conformance_scenario_sr(seed: u64) {
    conformance_scenario_with(seed, proto_sr())
}

fn conformance_scenario_with(seed: u64, protocol: ProtocolConfig) {
    let cluster = ChaosCluster::new(protocol, ChaosConfig::new(seed));
    let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
    let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));
    let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));

    // Exact-match internode round trip, size varied by seed (spanning the
    // eager threshold and multi-fragment pulls).
    let len = 512 + (seed % 7919) as usize;
    let data = payload(len);
    let recv = c
        .post_recv(a.local_id(), Tag(1), len, TruncationPolicy::Error)
        .unwrap();
    let send = a.post_send(c.local_id(), Tag(1), data.clone()).unwrap();
    let done = c.wait(OpId::Recv(recv), TIMEOUT).expect("exact-match recv");
    assert_eq!(done.status, Status::Ok);
    assert_eq!(done.data.as_deref(), Some(&data[..]));
    assert!(a.wait(OpId::Send(send), TIMEOUT).is_some());

    // Late receive: the message arrives unexpected and is claimed afterwards.
    let late = payload(2048);
    b.post_send(c.local_id(), Tag(2), late.clone()).unwrap();
    let recv = c
        .post_recv(b.local_id(), Tag(2), 2048, TruncationPolicy::Error)
        .unwrap();
    let done = c.wait(OpId::Recv(recv), TIMEOUT).expect("late recv");
    assert_eq!(done.data.as_deref(), Some(&late[..]));

    // Wildcard reports the concrete source and tag.
    let wild = c
        .post_recv(ANY_SOURCE, ANY_TAG, 1024, TruncationPolicy::Error)
        .unwrap();
    a.post_send(c.local_id(), Tag(42), payload(1024)).unwrap();
    let done = c.wait(OpId::Recv(wild), TIMEOUT).expect("wildcard recv");
    assert_eq!(done.peer, a.local_id());
    assert_eq!(done.tag, Tag(42));

    // Caller-owned buffer over the multi-fragment pull path.
    let big = payload(8192);
    let recv = a
        .post_recv_into(
            c.local_id(),
            Tag(3),
            RecvBuf::with_capacity(8192),
            TruncationPolicy::Error,
        )
        .unwrap();
    c.post_send(a.local_id(), Tag(3), big.clone()).unwrap();
    let done = a.wait(OpId::Recv(recv), TIMEOUT).expect("recv_into");
    assert_eq!(done.status, Status::Ok);
    assert_eq!(done.buf.expect("buffer back").as_slice(), &big[..]);

    // Truncation: the error policy leaves the message intact for the next
    // adequate receive; the truncate policy consumes it.
    a.post_send(c.local_id(), Tag(4), big.clone()).unwrap();
    let small = c
        .post_recv(a.local_id(), Tag(4), 64, TruncationPolicy::Error)
        .unwrap();
    let failed = c.wait(OpId::Recv(small), TIMEOUT).expect("too-small recv");
    assert!(matches!(
        failed.status,
        Status::Error(Error::ReceiveTooSmall { .. })
    ));
    let ok = c
        .post_recv(a.local_id(), Tag(4), 8192, TruncationPolicy::Error)
        .unwrap();
    let done = c.wait(OpId::Recv(ok), TIMEOUT).expect("adequate recv");
    assert_eq!(done.data.as_deref(), Some(&big[..]));
    b.post_send(c.local_id(), Tag(5), big.clone()).unwrap();
    let trunc = c
        .post_recv(b.local_id(), Tag(5), 100, TruncationPolicy::Truncate)
        .unwrap();
    let done = c.wait(OpId::Recv(trunc), TIMEOUT).expect("truncating recv");
    assert_eq!(done.status, Status::Truncated { message_len: 8192 });
    assert_eq!(done.data.as_deref(), Some(&big[..100]));

    // Vectored send delivers the concatenation of its segments.
    let segments = vec![payload(100), Bytes::new(), payload(3000).slice(7..2500)];
    let expected: Vec<u8> = segments.iter().flat_map(|s| s.iter().copied()).collect();
    let recv = c
        .post_recv(
            a.local_id(),
            Tag(6),
            expected.len(),
            TruncationPolicy::Error,
        )
        .unwrap();
    a.post_send_vectored(c.local_id(), Tag(6), &segments)
        .unwrap();
    let done = c.wait(OpId::Recv(recv), TIMEOUT).expect("vectored recv");
    assert_eq!(done.data.as_deref(), Some(&expected[..]));

    // Same-tag ordering stress: matching order must survive reordering and
    // duplication on the wire (go-back-N re-serializes the link).
    let burst: Vec<Bytes> = (0..6)
        .map(|i| payload(256 + 617 * i + (seed % 257) as usize))
        .collect();
    for msg in &burst {
        a.post_send(c.local_id(), Tag(7), msg.clone()).unwrap();
    }
    for msg in &burst {
        let recv = c
            .post_recv(a.local_id(), Tag(7), msg.len(), TruncationPolicy::Error)
            .unwrap();
        let done = c.wait(OpId::Recv(recv), TIMEOUT).expect("burst recv");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.data.as_deref(), Some(&msg[..]), "same-tag FIFO order");
    }

    // Intranode neighbours are outside the fault plane: a↔b still works and
    // completes over reliable shared memory.
    let recv = b
        .post_recv(a.local_id(), Tag(8), 4096, TruncationPolicy::Error)
        .unwrap();
    a.post_send(b.local_id(), Tag(8), payload(4096)).unwrap();
    assert!(b.wait(OpId::Recv(recv), TIMEOUT).is_some());
}

#[test]
fn conformance_sweep_across_seeds() {
    let start = seed_start_from_env(0);
    let n = seeds_from_env(700);
    sweep(start..start + n, conformance_scenario).assert_clean("conformance");
}

/// The full conformance sweep again with selective repeat on every
/// channel: SACK-bitmap recovery must survive the same drops, duplicates,
/// reordering, and partition-and-heal windows go-back-N does.
#[test]
fn conformance_sweep_across_seeds_selective_repeat() {
    let start = seed_start_from_env(0);
    let n = seeds_from_env(700);
    sweep(start..start + n, conformance_scenario_sr).assert_clean("conformance-sr");
}

// ---------------------------------------------------------------------------
// Collective sweep: tree collectives riding the same fault plane
// ---------------------------------------------------------------------------

/// A future that returns `Pending` (rescheduling itself) `n` times before
/// resolving, staggering rank arrival deterministically.
struct YieldN(usize);

impl Future for YieldN {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.0 == 0 {
            return Poll::Ready(());
        }
        self.0 -= 1;
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

/// Deterministic per-rank contribution, perturbed by the seed.
fn contribution(rank: usize, len: usize, seed: u64) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (rank * 37 + i * 11) as u8 ^ (seed as u8))
            .collect::<Vec<u8>>(),
    )
}

/// Associative, non-commutative, length-preserving combine (affine-map
/// composition over `Z_256`; see `tests/coll_conformance.rs`).
fn affine_combine(a: Bytes, b: Bytes) -> Bytes {
    assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut i = 0;
    while i + 1 < a.len() {
        let (a1, c1) = (a[i], a[i + 1]);
        let (a2, c2) = (b[i], b[i + 1]);
        out.push(a1.wrapping_mul(a2));
        out.push(a2.wrapping_mul(c1).wrapping_add(c2));
        i += 2;
    }
    if a.len() % 2 == 1 {
        out.push(a[a.len() - 1].wrapping_mul(b[b.len() - 1]));
    }
    Bytes::from(out)
}

/// Builds an `n`-rank group on a chaos cluster seeded with `seed`, spanning
/// several simulated nodes so internode links (and thus the fault plane)
/// carry collective traffic.
fn chaos_group(n: usize, id: u16, seed: u64) -> Vec<GroupMember<ChaosEndpoint>> {
    let cluster = ChaosCluster::new(proto(), ChaosConfig::new(seed));
    let ids: Vec<ProcessId> = (0..n)
        .map(|r| ProcessId::new((r / 3) as u32, (r % 3) as u32))
        .collect();
    let group = Group::new(id, ids.clone()).unwrap();
    ids.iter()
        .map(|&pid| {
            group
                .bind(Endpoint::new(cluster.add_endpoint(pid)))
                .unwrap()
        })
        .collect()
}

/// One seed of the collective sweep: `all_reduce` with a non-commutative
/// operator, a pipelined `broadcast`, and a `barrier`, with rank count,
/// payload size, root, and arrival stagger all varied by the seed.
fn collective_scenario(seed: u64) {
    let n = 4 + (seed % 4) as usize; // 4..=7 ranks over 2-3 nodes
    let len = 1 + (seed % 96) as usize;
    let root = (seed % n as u64) as usize;
    let members = chaos_group(n, 31, seed);
    let expected = (0..n)
        .map(|r| contribution(r, len, seed))
        .reduce(affine_combine)
        .unwrap();
    let bcast = contribution(root, len + 17, seed);

    let allreduce_results = Arc::new(Mutex::new(vec![None::<Bytes>; n]));
    let bcast_results = Arc::new(Mutex::new(vec![None::<Bytes>; n]));
    let mut driver = Driver::new();
    for member in members {
        let allreduce_results = allreduce_results.clone();
        let bcast_results = bcast_results.clone();
        let bcast = bcast.clone();
        driver.spawn(async move {
            let rank = member.rank();
            YieldN((seed as usize + rank * 3) % 7).await;
            let all = member
                .all_reduce(contribution(rank, len, seed), affine_combine)
                .await
                .expect("all_reduce");
            allreduce_results.lock().unwrap()[rank] = Some(all);
            let data = if rank == root { bcast } else { Bytes::new() };
            let got = member
                .broadcast(root, data, len + 17)
                .await
                .expect("broadcast");
            bcast_results.lock().unwrap()[rank] = Some(got);
            member.barrier().await.expect("barrier");
        });
    }
    driver.run();
    assert_eq!(driver.live(), 0, "all ranks completed");
    for got in allreduce_results.lock().unwrap().iter() {
        assert_eq!(got.as_ref().expect("rank finished"), &expected);
    }
    for got in bcast_results.lock().unwrap().iter() {
        assert_eq!(got.as_ref().expect("rank finished"), &bcast);
    }
}

#[test]
fn collective_sweep_across_seeds() {
    let start = seed_start_from_env(0);
    let n = seeds_from_env(400);
    sweep(start..start + n, collective_scenario).assert_clean("collectives");
}

// ---------------------------------------------------------------------------
// Replay, partitions, and the sweep's own teeth
// ---------------------------------------------------------------------------

/// The same seed replays the full conformance workload byte for byte: the
/// recorded event traces — timestamps, kinds, endpoints, and payload hashes
/// over the wire encodings — are identical across runs.
#[test]
fn same_seed_replays_byte_for_byte() {
    let run = |seed: u64| {
        let cluster = ChaosCluster::new(proto(), ChaosConfig::new(seed).with_trace());
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        let data = payload(20_000);
        let recv = c
            .post_recv(a.local_id(), Tag(1), 20_000, TruncationPolicy::Error)
            .unwrap();
        a.post_send(c.local_id(), Tag(1), data.clone()).unwrap();
        let done = c.wait(OpId::Recv(recv), TIMEOUT).expect("recv");
        assert_eq!(done.data.as_deref(), Some(&data[..]));
        (cluster.trace_hash(), cluster.take_trace())
    };
    let (hash1, trace1) = run(2026);
    let (hash2, trace2) = run(2026);
    assert_eq!(hash1, hash2);
    assert_eq!(trace1, trace2, "same seed must replay identically");
    assert!(trace1.len() > 20, "the workload must generate real traffic");
    let (hash3, _) = run(2027);
    assert_ne!(hash1, hash3, "a different seed must steer differently");
}

/// A permanently partitioned peer produces a clean `ChannelFailed` error
/// completion on the sender — no hang — and the receiver's posted receive
/// can still be cancelled.
#[test]
fn permanent_partition_fails_cleanly() {
    let cluster = ChaosCluster::new(proto(), ChaosConfig::lossless(11));
    let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
    let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
    cluster.partition(a.local_id(), c.local_id());

    let recv = c
        .post_recv(a.local_id(), Tag(1), 64 * 1024, TruncationPolicy::Error)
        .unwrap();
    // Large enough to register for pulling: the pushed prefix never crosses
    // the partition, retries exhaust, and the pending send must fail.
    let send = a
        .post_send(c.local_id(), Tag(1), payload(64 * 1024))
        .unwrap();
    let done = a
        .wait(OpId::Send(send), TIMEOUT)
        .expect("send completed with an error instead of hanging");
    assert_eq!(
        done.status,
        Status::Error(Error::ChannelFailed { peer: c.local_id() })
    );
    assert_eq!(a.stats().channels_failed, 1);
    assert!(
        cluster.chaos_stats().partition_drops > 0,
        "the partition, not the engine, ate the frames"
    );

    // The receiver saw nothing; its receive is still pending and cancellable.
    assert!(c.cancel(recv), "unmatched receive cancels cleanly");
    let done = c.wait(OpId::Recv(recv), TIMEOUT).expect("cancelled");
    assert_eq!(done.status, Status::Cancelled);

    // After healing, fresh traffic between the nodes flows again on a new
    // cluster-level route (the failed go-back-N channel stays dead, which
    // is the declared contract).
    cluster.heal(a.local_id(), c.local_id());
}

/// The wedge detector gives the sweep teeth: disabling a single timer
/// re-arm in the go-back-N channel (via the engine's sabotage hook) must be
/// caught within the first few hundred seeds, reported as seed-labeled
/// wedge panics.
#[test]
fn sabotaged_retransmission_fails_the_sweep() {
    let report = sweep(0..300, |seed| {
        let mut cfg = ChaosConfig::new(seed).with_drop(0.3).with_partition(None);
        cfg.sabotage_skip_rearm = true;
        let cluster = ChaosCluster::new(proto(), cfg);
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        let data = payload(6_000);
        let recv = c
            .post_recv(a.local_id(), Tag(1), 6_000, TruncationPolicy::Error)
            .unwrap();
        a.post_send(c.local_id(), Tag(1), data.clone()).unwrap();
        // With the re-arm disabled, any timeout whose retransmission is
        // lost again wedges the channel; the wedge check converts that
        // into a panic naming the seed.  Seeds lucky enough to dodge the
        // double loss still complete.
        if let Some(done) = c.take_completion(OpId::Recv(recv)) {
            assert_eq!(done.data.as_deref(), Some(&data[..]));
        }
    });
    assert_eq!(report.seeds_run, 300);
    assert!(
        !report.failures.is_empty(),
        "a disabled retransmission re-arm must be caught within 300 seeds"
    );
    assert!(
        report.failures.iter().any(|f| f.message.contains("wedged")),
        "failures must come from the wedge detector: {:?}",
        report.failures.first()
    );
    // Sanity: the same sabotage off → the same seeds pass.
    let clean = sweep(0..report.failures[0].seed + 1, |seed| {
        let cfg = ChaosConfig::new(seed).with_drop(0.3).with_partition(None);
        let cluster = ChaosCluster::new(proto(), cfg);
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        let data = payload(6_000);
        let recv = c
            .post_recv(a.local_id(), Tag(1), 6_000, TruncationPolicy::Error)
            .unwrap();
        a.post_send(c.local_id(), Tag(1), data.clone()).unwrap();
        let done = c.take_completion(OpId::Recv(recv)).expect("recovered");
        assert_eq!(done.data.as_deref(), Some(&data[..]));
    });
    assert!(
        clean.failures.is_empty(),
        "without sabotage the same seeds must pass: {:?}",
        clean.failures
    );
}

/// The wedge detector understands selective-repeat channels too: with the
/// single RTO timer's re-arm sabotaged, a seed that loses the
/// retransmission leaves unacked frames with no pending timer, and the
/// quiescence check must flag the channel — naming the mode — within the
/// first few hundred seeds.
#[test]
fn sabotaged_selective_repeat_fails_the_sweep() {
    let report = sweep(0..300, |seed| {
        let mut cfg = ChaosConfig::new(seed).with_drop(0.3).with_partition(None);
        cfg.sabotage_skip_rearm = true;
        let cluster = ChaosCluster::new(proto_sr(), cfg);
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        let data = payload(6_000);
        let recv = c
            .post_recv(a.local_id(), Tag(1), 6_000, TruncationPolicy::Error)
            .unwrap();
        a.post_send(c.local_id(), Tag(1), data.clone()).unwrap();
        if let Some(done) = c.take_completion(OpId::Recv(recv)) {
            assert_eq!(done.data.as_deref(), Some(&data[..]));
        }
    });
    assert_eq!(report.seeds_run, 300);
    assert!(
        !report.failures.is_empty(),
        "a disabled RTO re-arm must be caught within 300 seeds in SR mode"
    );
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.message.contains("wedged") && f.message.contains("selective-repeat")),
        "failures must come from the wedge detector and name the mode: {:?}",
        report.failures.first()
    );
}

// ---------------------------------------------------------------------------
// Fault-model determinism (satellite: proptest over the simnet models)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every fault model replays an identical decision sequence for an
    /// identical seed, and (overwhelmingly) a different one for a different
    /// seed — the property the whole chaos harness rests on.
    #[test]
    fn fault_models_are_seed_deterministic(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        p_millis in 200u64..800,
    ) {
        // The vendored proptest has no `prop_assume`; nudge a colliding
        // pair apart instead (xor with a non-zero constant cannot be the
        // identity).
        let seed_b = if seed_a == seed_b { seed_b ^ 0xDEAD_BEEF } else { seed_b };
        let p = p_millis as f64 / 1000.0;

        type DecisionLog = (Vec<bool>, Vec<bool>, Vec<Option<u64>>, Vec<u64>, Vec<bool>);
        fn decisions(seed: u64, p: f64) -> DecisionLog {
            let mut loss = LossModel::bernoulli(p, derive_seed(seed, 1));
            let mut dup = DuplicateModel::new(p, derive_seed(seed, 2));
            let mut reorder = ReorderModel::new(p, 500, derive_seed(seed, 3));
            let mut delay = DelayModel::new(30, 700, derive_seed(seed, 4));
            let mut partition =
                PartitionSchedule::new(derive_seed(seed, 5), (50, 400), (20, 300));
            let mut drops = Vec::new();
            let mut dups = Vec::new();
            let mut holds = Vec::new();
            let mut delays = Vec::new();
            let mut blocked = Vec::new();
            for step in 0..256u64 {
                drops.push(loss.should_drop());
                dups.push(dup.should_duplicate());
                holds.push(reorder.hold_us());
                delays.push(delay.delay_us());
                blocked.push(partition.blocked(step * 37));
            }
            (drops, dups, holds, delays, blocked)
        }

        let first = decisions(seed_a, p);
        let second = decisions(seed_a, p);
        prop_assert_eq!(&first, &second, "identical seeds must replay identically");

        let other = decisions(seed_b, p);
        prop_assert_ne!(
            &first, &other,
            "256 decisions at p in [0.2, 0.8] colliding across seeds is a broken derivation"
        );
    }
}

// ---------------------------------------------------------------------------
// Flight-recorder dump on failure (the PR-10 observability contract)
// ---------------------------------------------------------------------------

/// A failing seed must leave behind a replayable chrome://tracing dump whose
/// events span the channel, timer, and engine layers — the acceptance
/// criterion for the always-on flight recorder.  The sabotaged re-arm forces
/// a wedge within the first few hundred seeds; the wedge panic names the
/// dump file it wrote.
#[cfg(feature = "telemetry")]
#[test]
fn failed_seed_dumps_a_loadable_flight_recorder_trace() {
    let report = sweep(0..300, |seed| {
        let mut cfg = ChaosConfig::new(seed).with_drop(0.3).with_partition(None);
        cfg.sabotage_skip_rearm = true;
        let cluster = ChaosCluster::new(proto(), cfg);
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let c = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        let data = payload(6_000);
        let recv = c
            .post_recv(a.local_id(), Tag(1), 6_000, TruncationPolicy::Error)
            .unwrap();
        a.post_send(c.local_id(), Tag(1), data.clone()).unwrap();
        if let Some(done) = c.take_completion(OpId::Recv(recv)) {
            assert_eq!(done.data.as_deref(), Some(&data[..]));
        }
    });
    let failure = report
        .failures
        .iter()
        .find(|f| f.message.contains("wedged"))
        .expect("the sabotaged re-arm must wedge within 300 seeds");

    // The panic message names both the stalled channel's stats and the dump.
    assert!(
        failure.message.contains("stalled channel stats"),
        "wedge report must print the channel stats: {}",
        failure.message
    );
    let path = failure
        .message
        .split("flight recorder dump: ")
        .nth(1)
        .expect("wedge report must name its dump file")
        .trim();
    assert!(
        !path.starts_with("<failed"),
        "dump must have been written: {path}"
    );

    let json = std::fs::read_to_string(path).expect("dump file readable");
    // chrome://tracing / Perfetto load a JSON array of event records.
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces — structurally loadable"
    );
    // Events from all three instrumented layers made it into the dump:
    // the ARQ channel (frames on the wire), the retransmission timers,
    // and the protocol engine (operation lifecycle).
    for name in ["frame_tx", "timer_arm", "op_posted"] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "dump must contain {name} events"
        );
    }
    let _ = std::fs::remove_file(path);
}
