//! The stats-gap audit: one fixed workload, every backend, and a
//! field-by-field cross-comparison of the merged [`EndpointStats`] each
//! backend reports.
//!
//! The protocol engine owns every counter, so for the *same* workload the
//! deterministic counters must come out **identical** no matter which
//! backend carried the frames — a backend that forgets to merge a shard,
//! drops a stats path, or double-counts shows up here as a diff against its
//! peers rather than as a silently divergent dashboard.  Counters that
//! legitimately depend on wire behaviour (retransmissions, acks, duplicate
//! deliveries) are excluded from the equality check and held to invariants
//! instead.
//!
//! Both fingerprints destructure `EndpointStats` exhaustively: adding a
//! counter without classifying it as deterministic or wire-dependent is a
//! compile error, so the audit cannot silently fall out of date.

use bytes::Bytes;
use push_pull_messaging::core::EndpointStats;
use push_pull_messaging::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// 12 exchanges, alternating direction, two sizes: 512 B messages stay on
/// the eager push path, 64 KiB messages exercise push + pull.  Receives are
/// posted before their send and every pair is awaited before the next, so
/// the engine sees the identical operation sequence on every backend.
const EXCHANGES: usize = 12;

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 7 % 256) as u8).collect::<Vec<u8>>())
}

fn exchange_len(i: usize) -> usize {
    if i.is_multiple_of(3) {
        64 * 1024
    } else {
        512
    }
}

/// Runs the fixed workload on a fresh pair and returns the two endpoints'
/// stats merged into one view (direction alternates, so only the merged
/// totals are backend-comparable).
fn run_workload<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) -> EndpointStats {
    for i in 0..EXCHANGES {
        let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
        let data = payload(exchange_len(i));
        let recv = dst
            .post_recv(
                src.local_id(),
                Tag(i as u32),
                data.len(),
                TruncationPolicy::Error,
            )
            .unwrap();
        let send = src
            .post_send(dst.local_id(), Tag(i as u32), data.clone())
            .unwrap();
        let done = dst.wait(OpId::Recv(recv), TIMEOUT).expect("recv completed");
        assert_eq!(done.status, Status::Ok);
        assert_eq!(done.data.as_deref(), Some(&data[..]));
        src.wait(OpId::Send(send), TIMEOUT).expect("send completed");
    }
    let mut merged = a.stats();
    merged.merge(&b.stats());
    merged
}

/// Counters that must be bit-identical across every backend: they are
/// decided by the engine from the operation sequence alone.
fn op_fingerprint(s: &EndpointStats) -> Vec<(&'static str, u64)> {
    vec![
        ("sends_posted", s.sends_posted),
        ("recvs_posted", s.recvs_posted),
        ("sends_completed", s.sends_completed),
        ("recvs_completed", s.recvs_completed),
        ("recvs_failed", s.recvs_failed),
        ("recvs_cancelled", s.recvs_cancelled),
        ("sends_cancelled", s.sends_cancelled),
        ("recvs_truncated", s.recvs_truncated),
        ("frames_dropped", s.frames_dropped),
        ("bytes_dropped", s.bytes_dropped),
        ("packets_dropped", s.packets_dropped),
        ("channels_failed", s.channels_failed),
        ("completions_evicted", s.completions_evicted),
    ]
}

/// Counters decided by the engine *and* the BTP policy: identical across
/// the internode backends (which share `paper_internode`), but legitimately
/// different on the intranode fabric (16-byte BTP).
fn wire_fingerprint(s: &EndpointStats) -> Vec<(&'static str, u64)> {
    vec![
        ("bytes_pushed", s.bytes_pushed),
        ("bytes_pulled", s.bytes_pulled),
        ("bytes_copied_direct", s.bytes_copied_direct),
        ("bytes_copied_staged", s.bytes_copied_staged),
        ("bytes_copied_extra", s.bytes_copied_extra),
        ("translations", s.translations),
        ("bytes_translated", s.bytes_translated),
        ("pull_requests_sent", s.pull_requests_sent),
        ("pull_requests_served", s.pull_requests_served),
    ]
}

/// The exhaustive classification.  Every `EndpointStats` field must appear
/// in exactly one bucket; the destructuring makes omissions a compile error.
fn classify(s: &EndpointStats) {
    let EndpointStats {
        // op_fingerprint
        sends_posted: _,
        recvs_posted: _,
        sends_completed: _,
        recvs_completed: _,
        recvs_failed: _,
        recvs_cancelled: _,
        sends_cancelled: _,
        recvs_truncated: _,
        frames_dropped: _,
        bytes_dropped: _,
        packets_dropped: _,
        channels_failed: _,
        completions_evicted: _,
        // wire_fingerprint
        bytes_pushed: _,
        bytes_pulled: _,
        bytes_copied_direct: _,
        bytes_copied_staged: _,
        bytes_copied_extra: _,
        translations: _,
        bytes_translated: _,
        pull_requests_sent: _,
        pull_requests_served: _,
        // wire-dependent: invariant-checked, never equality-checked
        retransmits: _,
        acks_received: _,
        duplicate_frames: _,
        rto_retransmits: _,
        fast_retransmits: _,
        // allocation timing varies with warm-up state; audited elsewhere
        // (tests/zero_alloc.rs) rather than cross-backend
        steady_allocs: _,
    } = *s;
}

/// Invariants every backend must satisfy regardless of wire behaviour.
fn check_invariants(name: &str, s: &EndpointStats) {
    classify(s);
    let total_bytes: u64 = (0..EXCHANGES).map(|i| exchange_len(i) as u64).sum();
    assert_eq!(
        s.bytes_pushed + s.bytes_pulled,
        total_bytes,
        "{name}: every payload byte is pushed or pulled exactly once"
    );
    assert_eq!(
        s.pull_requests_sent, s.pull_requests_served,
        "{name}: merged view pairs every pull request with its service"
    );
    assert_eq!(
        s.rto_retransmits + s.fast_retransmits,
        s.retransmits,
        "{name}: every retransmission is attributed to RTO or fast recovery"
    );
    assert_eq!(s.sends_posted, EXCHANGES as u64, "{name}: sends posted");
    assert_eq!(s.recvs_posted, EXCHANGES as u64, "{name}: recvs posted");
    assert_eq!(
        s.sends_completed, EXCHANGES as u64,
        "{name}: sends completed"
    );
    assert_eq!(
        s.recvs_completed, EXCHANGES as u64,
        "{name}: recvs completed"
    );
}

struct BackendReport {
    name: &'static str,
    stats: EndpointStats,
    /// Whether frames crossed an ARQ channel (everything except the
    /// intranode fabric, whose transport is reliable shared memory).
    arq: bool,
}

fn collect_reports() -> Vec<BackendReport> {
    let mut reports = Vec::new();

    {
        let cluster = HostCluster::new(
            0,
            ProtocolConfig::paper_intranode().with_pushed_buffer(128 * 1024),
        );
        let a = Endpoint::new(cluster.add_endpoint(0));
        let b = Endpoint::new(cluster.add_endpoint(1));
        reports.push(BackendReport {
            name: "intranode",
            stats: run_workload(&a, &b),
            arq: false,
        });
    }

    {
        let proto = ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024);
        let a = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
        a.add_peer(b.id(), b.local_addr().unwrap());
        b.add_peer(a.id(), a.local_addr().unwrap());
        let (a, b) = (Endpoint::new(a), Endpoint::new(b));
        reports.push(BackendReport {
            name: "udp",
            stats: run_workload(&a, &b),
            arq: true,
        });
    }

    {
        let cluster =
            LoopbackCluster::new(ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024));
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        reports.push(BackendReport {
            name: "loopback",
            stats: run_workload(&a, &b),
            arq: true,
        });
    }

    for (name, mode) in [
        ("chaos_gbn", ReliabilityMode::GoBackN),
        ("chaos_sr", ReliabilityMode::SelectiveRepeat),
    ] {
        let cluster = ChaosCluster::new(
            ProtocolConfig::paper_internode()
                .with_pushed_buffer(128 * 1024)
                .with_reliability(mode),
            ChaosConfig::new(0xC0FFEE),
        );
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        reports.push(BackendReport {
            name,
            stats: run_workload(&a, &b),
            arq: true,
        });
    }

    {
        let reactor = Reactor::new().expect("spawn reactor");
        let proto = ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024);
        let config = EndpointConfig::new();
        let a = reactor
            .add_endpoint_with(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0", &config)
            .unwrap();
        let b = reactor
            .add_endpoint_with(ProcessId::new(1, 0), proto, "127.0.0.1:0", &config)
            .unwrap();
        a.add_peer(b.id(), b.local_addr().unwrap());
        b.add_peer(a.id(), a.local_addr().unwrap());
        let (a, b) = (Endpoint::new(a), Endpoint::new(b));
        reports.push(BackendReport {
            name: "reactor",
            stats: run_workload(&a, &b),
            arq: true,
        });
    }

    reports
}

#[test]
fn backends_report_identical_deterministic_counters() {
    let reports = collect_reports();

    for report in &reports {
        check_invariants(report.name, &report.stats);
        if report.arq {
            assert!(
                report.stats.acks_received > 0,
                "{}: an ARQ backend must see acknowledgements",
                report.name
            );
        } else {
            assert_eq!(
                (report.stats.retransmits, report.stats.acks_received),
                (0, 0),
                "{}: a reliable fabric has no ARQ traffic to count",
                report.name
            );
        }
    }

    // Operation-level counters: identical across ALL backends.
    let baseline = op_fingerprint(&reports[0].stats);
    for report in &reports[1..] {
        assert_eq!(
            op_fingerprint(&report.stats),
            baseline,
            "{} diverges from {} on operation counters\n  {:?}\nvs\n  {:?}",
            report.name,
            reports[0].name,
            report.stats,
            reports[0].stats,
        );
    }

    // Wire-level counters: identical across the internode backends, which
    // run the same BTP policy over the same operation sequence.
    let internode: Vec<_> = reports.iter().filter(|r| r.name != "intranode").collect();
    let baseline = wire_fingerprint(&internode[0].stats);
    for report in &internode[1..] {
        assert_eq!(
            wire_fingerprint(&report.stats),
            baseline,
            "{} diverges from {} on wire counters\n  {:?}\nvs\n  {:?}",
            report.name,
            internode[0].name,
            report.stats,
            internode[0].stats,
        );
    }
}
