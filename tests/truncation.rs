//! Regression tests for the ROADMAP PR-1 "too-small receive poisons the
//! message" bug, at the backend level.
//!
//! The seed dropped an arriving message's state when it matched a too-small
//! receive, discarding the already-delivered eager prefix; a later
//! big-enough receive would then re-create partial state, the pull phase
//! would fill in everything *except* the discarded prefix, and the receive
//! hung forever.  Under the operations API a too-small receive under
//! [`TruncationPolicy::Error`] completes with `Status::Error` and the
//! message stays intact for the next adequate receive, while
//! [`TruncationPolicy::Truncate`] delivers the prefix that fits.

use push_pull_messaging::core::Error;
use push_pull_messaging::prelude::*;
use std::time::Duration;

use bytes::Bytes;

const TIMEOUT: Duration = Duration::from_secs(10);

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 13 % 256) as u8).collect::<Vec<u8>>())
}

/// Too-small receive with `TruncationPolicy::Error` completes with an error
/// and the next adequate receive gets the full message.
fn exercise_error_policy<T: Transport>(a: &T, b: &T, label: &str) {
    let data = payload(8192);
    a.post_send(b.local_id(), Tag(1), data.clone()).unwrap();
    // Too-small receive: must fail, not hang and not poison.
    let small = b
        .post_recv(a.local_id(), Tag(1), 64, TruncationPolicy::Error)
        .unwrap();
    let failed = b
        .wait(OpId::Recv(small), TIMEOUT)
        .unwrap_or_else(|| panic!("{label}: too-small receive never completed"));
    assert!(
        matches!(
            failed.status,
            Status::Error(Error::ReceiveTooSmall {
                posted: 64,
                incoming: 8192
            })
        ),
        "{label}: unexpected status {:?}",
        failed.status
    );
    // The message is unharmed: an adequate receive obtains every byte,
    // including the eager prefix the seed used to discard.
    let ok = b
        .post_recv(a.local_id(), Tag(1), 8192, TruncationPolicy::Error)
        .unwrap();
    let done = b
        .wait(OpId::Recv(ok), TIMEOUT)
        .unwrap_or_else(|| panic!("{label}: adequate receive hung (poisoned message)"));
    assert_eq!(done.status, Status::Ok, "{label}");
    assert_eq!(done.data.as_deref(), Some(&data[..]), "{label}");
}

/// `TruncationPolicy::Truncate` completes with `Status::Truncated` and the
/// prefix that fits, consuming the message.
fn exercise_truncate_policy<T: Transport>(a: &T, b: &T, label: &str) {
    let data = payload(8192);
    a.post_send(b.local_id(), Tag(2), data.clone()).unwrap();
    let op = b
        .post_recv(a.local_id(), Tag(2), 100, TruncationPolicy::Truncate)
        .unwrap();
    let done = b
        .wait(OpId::Recv(op), TIMEOUT)
        .unwrap_or_else(|| panic!("{label}: truncating receive never completed"));
    assert_eq!(
        done.status,
        Status::Truncated { message_len: 8192 },
        "{label}"
    );
    assert_eq!(done.len, 100, "{label}");
    assert_eq!(done.data.as_deref(), Some(&data[..100]), "{label}");
}

#[test]
fn too_small_receive_no_longer_poisons_the_message() {
    // Intranode fabric.
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(128 * 1024),
    );
    let a = cluster.add_endpoint(0);
    let b = cluster.add_endpoint(1);
    exercise_error_policy(&a, &b, "intranode");
    exercise_truncate_policy(&a, &b, "intranode");

    // UDP backend.
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(128 * 1024);
    let a = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let b = UdpEndpoint::bind(ProcessId::new(1, 0), proto.clone(), "127.0.0.1:0").unwrap();
    a.add_peer(b.id(), b.local_addr().unwrap());
    b.add_peer(a.id(), a.local_addr().unwrap());
    exercise_error_policy(&a, &b, "udp");
    exercise_truncate_policy(&a, &b, "udp");

    // Sim-cluster loopback binding.
    let cluster = LoopbackCluster::new(proto);
    let a = cluster.add_endpoint(ProcessId::new(0, 0));
    let b = cluster.add_endpoint(ProcessId::new(1, 0));
    exercise_error_policy(&a, &b, "loopback");
    exercise_truncate_policy(&a, &b, "loopback");
}
