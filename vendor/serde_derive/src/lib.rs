//! Vendored no-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace derives serde traits on its public types for downstream
//! users, but nothing in-tree actually serialises, and the build environment
//! has no access to crates.io.  These derives expand to nothing, so the
//! attribute positions stay source-compatible with the real `serde_derive`.

use proc_macro::TokenStream;

/// Expands to nothing; keeps `#[derive(Serialize)]` compiling.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; keeps `#[derive(Deserialize)]` compiling.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
