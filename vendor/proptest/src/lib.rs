//! Vendored, dependency-free property-testing harness exposing the subset of
//! the `proptest` API the workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings, integer-range / `any::<T>()` / `Just` /
//! tuple / `collection::vec` strategies, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name) and failures are reported by the
//! normal panic machinery without input shrinking.  That trades minimal
//! counter-examples for zero dependencies, which the offline build requires.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-run configuration (`cases` = how many random inputs each property is
/// checked against).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving strategy sampling (xorshift64*, seeded
/// from the test name so every test has an independent, stable stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut state: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: state | 1, // xorshift state must be non-zero
        }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

/// Strategy produced by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for "any value of type `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+ ))+) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })+
    };
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A uniform choice between several boxed strategies of one value type
/// (what [`prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let run = || -> () { $body };
                let guard = $crate::__CaseGuard {
                    case,
                    name: stringify!($name),
                };
                run();
                std::mem::forget(guard);
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Prints which random case was executing when a property panicked (stands in
/// for upstream's shrunken counter-example report).
#[doc(hidden)]
pub struct __CaseGuard {
    #[doc(hidden)]
    pub case: u32,
    #[doc(hidden)]
    pub name: &'static str,
}

impl Drop for __CaseGuard {
    fn drop(&mut self) {
        eprintln!(
            "proptest: property `{}` failed on random case #{}",
            self.name, self.case
        );
    }
}

/// Asserts a condition inside a property (panics on failure, like an
/// ordinary `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// A uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// The imports a property-test module typically wants.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..1) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 0);
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_tuples(choice in prop_oneof![Just(1u8), Just(2u8)], pair in (0usize..4, 1usize..3)) {
            prop_assert!(choice == 1u8 || choice == 2u8);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
