//! Vendored `parking_lot` API shim backed by `std::sync`.
//!
//! Exposes the `parking_lot` calling convention the workspace uses —
//! `Mutex::lock()` without a `Result`, `Condvar::wait_for(&mut guard, dur)` —
//! implemented on top of the standard library primitives.  Poisoned locks are
//! recovered transparently (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only `None` transiently inside
/// [`Condvar::wait_for`], which must move the std guard by value.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks on the guard until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already waiting");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "waiter starved");
        }
        t.join().unwrap();
    }
}
