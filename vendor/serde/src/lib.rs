//! Vendored serde facade.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize};` + `#[derive(Serialize, Deserialize)]` keep compiling without
//! crates.io access.  No runtime serialisation machinery is provided (nothing
//! in the workspace serialises at runtime).

pub use serde_derive::{Deserialize, Serialize};
