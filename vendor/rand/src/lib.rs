//! Vendored, dependency-free subset of the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (splitmix64-seeded
//! xoshiro256**), the [`SeedableRng`] seeding entry point, and the [`Rng`]
//! sampling trait for the handful of types the workspace draws
//! (`f64`, `bool`, unsigned integers).  Streams are stable across runs and
//! platforms, which is all the simulator's loss models need.

/// Seeding constructor, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the subset of `rand::Rng` the workspace
/// uses.
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly from its standard distribution
    /// (`f64` in `[0, 1)`, integers over their full range, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform sample from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

/// Types samplable from a generator's standard distribution.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256** generator (stands in for the upstream
    /// `StdRng`; stream quality is ample for simulation loss models).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut below_half = 0;
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        assert!((400..600).contains(&below_half), "{below_half}");
    }

    #[test]
    fn gen_bool_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((120..280).contains(&hits), "{hits}");
    }
}
