//! Vendored, dependency-free subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small slice of the `bytes` API it actually uses: [`Bytes`] (cheaply
//! cloneable, sliceable, reference-counted byte buffers), [`BytesMut`]
//! (growable builder that freezes into `Bytes`), and the [`Buf`]/[`BufMut`]
//! cursor traits.  Semantics match the upstream crate for this subset;
//! `Bytes::slice`/`split_to`/`clone` never copy payload bytes.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, Index, IndexMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Clones and sub-slices share one reference-counted allocation; an empty
/// `Bytes` holds no allocation at all.
#[derive(Clone, Default)]
pub struct Bytes {
    /// `None` encodes the empty buffer without touching the heap.
    data: Option<Arc<Vec<u8>>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes` without allocating.
    #[inline]
    pub const fn new() -> Self {
        Bytes {
            data: None,
            start: 0,
            end: 0,
        }
    }

    /// Copies `data` into a freshly allocated `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(arc) => &arc[self.start..self.end],
            None => &[],
        }
    }

    /// Returns a sub-view of `self` for the given range.  Shares the
    /// underlying allocation; never copies.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end,
            "slice index starts at {begin} but ends at {end}"
        );
        assert!(end <= len, "range end {end} out of bounds for length {len}");
        if begin == end {
            return Bytes::new();
        }
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits the view at `at`: returns bytes `[0, at)` and leaves
    /// `[at, len)` in `self`.  Both halves share the allocation.
    ///
    /// # Panics
    ///
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to({at}) out of bounds for length {}",
            self.len()
        );
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Splits the view at `at`: leaves bytes `[0, at)` in `self` and returns
    /// `[at, len)`.
    ///
    /// # Panics
    ///
    /// Panics when `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_off({at}) out of bounds for length {}",
            self.len()
        );
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        if end == 0 {
            return Bytes::new();
        }
        Bytes {
            data: Some(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer without allocating.
    #[inline]
    pub const fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserves capacity for at least `additional` more bytes.
    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Clears the contents, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Appends `data` to the buffer.
    #[inline]
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { buf: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    #[inline]
    fn index(&self, i: usize) -> &u8 {
        &self.buf[i]
    }
}

impl IndexMut<usize> for BytesMut {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.buf[i]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// Read cursor over a contiguous byte source (big-endian accessors, matching
/// the upstream `bytes::Buf` defaults).
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the source.
    fn remaining(&self) -> usize;
    /// The remaining bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance({cnt}) past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    #[inline]
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write cursor over a growable byte sink (big-endian writers, matching the
/// upstream `bytes::BufMut` defaults).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_sharing_and_slicing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), b[1..].as_ptr(), "slices share storage");
        let mut t = s.clone();
        let head = t.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&t[..], &[4]);
    }

    #[test]
    fn empty_bytes_do_not_allocate() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert!(b.data.is_none());
        let s = Bytes::from(vec![1u8]).slice(0..0);
        assert!(s.data.is_none());
    }

    #[test]
    fn bytesmut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(42);
        assert_eq!(m.len(), 13);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn buf_for_slices() {
        let raw = [0u8, 0, 0, 5, 9];
        let mut cursor: &[u8] = &raw;
        assert_eq!(cursor.get_u32(), 5);
        assert_eq!(cursor.get_u8(), 9);
        assert_eq!(cursor.remaining(), 0);
    }
}
