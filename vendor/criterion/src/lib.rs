//! Vendored, dependency-free stand-in for the Criterion benchmark harness.
//!
//! Implements the subset of the Criterion API the workspace's bench targets
//! use (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `iter`, `criterion_group!`, `criterion_main!`).  Timing is a straight
//! `std::time::Instant` measurement: each benchmark is auto-calibrated to a
//! batch of iterations long enough to time reliably, then the best of
//! `sample_size` batches is reported as ns/iter (best-of filters scheduler
//! noise, matching how the paper reports minimum latencies).

use std::time::Instant;

/// Prevents the optimiser from deleting a computed value.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for reporting throughput next to a timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// One measurement, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    result: Option<Measurement>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, storing the best-of-samples ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes >= 5 ms (or the
        // batch is already enormous for very cheap routines).
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 5 || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        let samples = self.sample_size.clamp(3, 100);
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.result = Some(Measurement { ns_per_iter: best });
    }
}

fn report(group: Option<&str>, name: &str, m: Measurement, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let mut line = format!("bench {label:<50} {:>14.1} ns/iter", m.ns_per_iter);
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let mb_s = bytes as f64 / (m.ns_per_iter / 1e9) / 1e6;
        line.push_str(&format!("  ({mb_s:.1} MB/s)"));
    }
    println!("{line}");
}

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Upstream-compatible no-op (CLI filtering is not implemented).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            result: None,
            sample_size: 20,
        };
        f(&mut b);
        if let Some(m) = b.result {
            report(None, &name.into(), m, None);
        }
        self
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            result: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        if let Some(m) = b.result {
            report(Some(&self.name), &name.into(), m, self.throughput);
        }
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in upstream Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given groups, as in upstream Criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
