//! The async front-end: completion-driven futures over any
//! [`RawTransport`] backend, plus the executors that drive them.
//!
//! [`Endpoint`](crate::transport::Endpoint)'s `send(...)` / `recv(...)` /
//! `recv_into(...)` combinators return an [`OpFuture`] resolving to the
//! operation's [`Completion`].  Posting is unchanged — the same
//! generation-checked handles, the same engine — but instead of blocking in
//! `wait`, a task parks its [`Waker`] in the endpoint's
//! [`CompletionQueue`](ppmsg_core::CompletionQueue) (keyed by op slot +
//! generation) and is woken exactly when its completion is published.  One
//! thread can therefore overlap any number of in-flight operations — the
//! paper's latency-hiding postal model carried through to the application
//! layer, and the single-progress-loop concurrency model of non-threaded
//! event handling frameworks rather than a thread per blocking `wait`.
//!
//! [`OpFuture`] is generic over the **raw** backend, so it works both
//! through the [`Endpoint`](crate::transport::Endpoint) front-end and
//! directly over a backend handle (or a `Box<dyn RawTransport>`).
//!
//! Two executors are provided, both dependency-free:
//!
//! * [`block_on`] drives one future on the current thread, parking between
//!   polls — the async analogue of `wait` for straight-line code;
//! * [`Driver`] is a **manual-step multiplexer**: spawn N tasks, then
//!   [`Driver::step`] / [`Driver::run_until_stalled`] poll exactly one /
//!   every ready task in FIFO order, or [`Driver::run`] parks until all
//!   tasks finish.  On the deterministic [`LoopbackCluster`] nothing ever
//!   waits on a real clock or another thread, so a `Driver`-scheduled test
//!   executes the same interleaving every run — async tests stay
//!   deterministic and single-threaded.  On the host backends the same
//!   driver overlaps real traffic: progress happens on the backends' own
//!   threads (the intranode router runs on whichever thread posted, the UDP
//!   reception thread pumps frames and timers), and completions wake the
//!   driver through the waker table.
//!
//! [`LoopbackCluster`]: ppmsg_sim::LoopbackCluster
//!
//! ```
//! use push_pull_messaging::prelude::*;
//! use bytes::Bytes;
//!
//! // One task overlaps two receives with a send on the deterministic
//! // loopback cluster; the same code drives the host backends.
//! let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
//! let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
//! let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));
//! block_on(async {
//!     let first = b.recv(a.local_id(), Tag(1), 1024, TruncationPolicy::Error).unwrap();
//!     let second = b.recv(a.local_id(), Tag(2), 1024, TruncationPolicy::Error).unwrap();
//!     a.send(b.local_id(), Tag(2), Bytes::from(b"two".to_vec())).unwrap().await;
//!     a.send(b.local_id(), Tag(1), Bytes::from(b"one".to_vec())).unwrap().await;
//!     let one = first.await;
//!     let two = second.await;
//!     assert_eq!(one.data.unwrap(), Bytes::from(b"one".to_vec()));
//!     assert_eq!(two.data.unwrap(), Bytes::from(b"two".to_vec()));
//! });
//! ```

use ppmsg_core::{Completion, OpId, RawTransport};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;
use std::time::Instant;

/// A posted operation's pending [`Completion`].
///
/// Created by the [`Endpoint`](crate::transport::Endpoint) combinators, or
/// directly with [`OpFuture::new`] over any [`RawTransport`] (including a
/// `dyn` one).  Creating the future marks the operation as waited-on, so its
/// completion cannot be retention-evicted before the first poll registers a
/// real waker.
///
/// Dropping the future abandons the await but **not** the operation: its
/// waker/interest registration is withdrawn on drop, so the transfer still
/// runs and its completion stays claimable through
/// [`Endpoint::wait`](crate::transport::Endpoint::wait) /
/// [`Endpoint::drain_completions`](crate::transport::Endpoint::drain_completions)
/// like any fire-and-forget result (use `cancel` / `cancel_send` to actually
/// revoke the operation).  Spurious wakes are harmless — a poll that finds
/// no completion just re-registers the waker, and the slot + generation key
/// guarantees a resolved future can never observe a different (newer)
/// operation's completion.
pub struct OpFuture<'a, T: RawTransport + ?Sized> {
    raw: &'a T,
    op: OpId,
    done: bool,
    /// `true` once a poll returned `Pending`, i.e. this future's task waker
    /// is (or was) the registration held for the operation.  Before that,
    /// the future's only possible registration is the bare interest from
    /// [`OpFuture::new`] — which drop must distinguish, so an unpolled
    /// future abandoned while a blocking wait is parked on the same
    /// operation does not tear down the wait's waker.
    registered: bool,
}

impl<'a, T: RawTransport + ?Sized> OpFuture<'a, T> {
    /// Wraps an already-posted operation (e.g. one posted through the
    /// blocking API, or re-awaited after a future was dropped) so its
    /// completion can be awaited.
    pub fn new(raw: &'a T, op: OpId) -> Self {
        raw.register_interest(op);
        OpFuture {
            raw,
            op,
            done: false,
            registered: false,
        }
    }

    /// The handle of the posted operation (e.g. to cancel it mid-await).
    pub fn op(&self) -> OpId {
        self.op
    }
}

impl<T: RawTransport + ?Sized> fmt::Debug for OpFuture<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpFuture")
            .field("op", &self.op)
            .field("done", &self.done)
            .finish()
    }
}

impl<T: RawTransport + ?Sized> Future for OpFuture<'_, T> {
    type Output = Completion;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Completion> {
        assert!(!self.done, "OpFuture polled after completion");
        match self.raw.poll_completion(self.op, cx.waker()) {
            Some(completion) => {
                self.done = true;
                Poll::Ready(completion)
            }
            None => {
                self.registered = true;
                Poll::Pending
            }
        }
    }
}

impl<T: RawTransport + ?Sized> Drop for OpFuture<'_, T> {
    fn drop(&mut self) {
        // An abandoned await must not keep the operation's completion
        // pinned: withdraw the registration so the result is drainable and
        // evictable again.  (Resolved futures already cleared it at claim.)
        // Withdraw only what this future owns: after a Pending poll the
        // registration is our task waker (remove it outright); before any
        // poll it can only be our bare interest — `clear_interest` leaves a
        // real waker some blocking waiter parked in the meantime alone.
        if self.done {
            return;
        }
        if self.registered {
            self.raw.deregister_interest(self.op);
        } else {
            let op = self.op;
            self.raw
                .with_completions(&mut |queue| queue.clear_interest(op));
        }
    }
}

/// Wakes a parked thread (the [`block_on`] waker, the [`Driver`]'s
/// idle-parking signal, and the blocking
/// [`Endpoint::wait`](crate::transport::Endpoint::wait)).
pub(crate) struct ThreadParker {
    thread: Thread,
    notified: AtomicBool,
}

std::thread_local! {
    /// One cached parker per thread for the blocking-wait path.  Handing the
    /// same `Arc` to every `Endpoint::wait` on a thread makes a blocking-wait
    /// loop allocation-free (the waker clone is a refcount bump); a stale
    /// notification left by an earlier wait at worst causes one spurious
    /// wake-up, which every user of the parker already tolerates.
    static CACHED_PARKER: Arc<ThreadParker> = ThreadParker::current();
}

impl ThreadParker {
    pub(crate) fn current() -> Arc<Self> {
        Arc::new(ThreadParker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        })
    }

    /// The calling thread's cached parker (see [`CACHED_PARKER`]).  Safe for
    /// `Endpoint::wait`, which never re-enters itself on one thread; the
    /// executors ([`block_on`], [`Driver`]) keep private instances because a
    /// future they poll may legitimately call a blocking wait inside.
    pub(crate) fn cached() -> Arc<Self> {
        CACHED_PARKER.with(Arc::clone)
    }

    /// Parks the current thread until `notify` has been called since the
    /// last wait returned.
    fn wait(&self) {
        while !self.notified.swap(false, Ordering::Acquire) {
            std::thread::park();
        }
    }

    /// Parks until notified or `deadline` passes, whichever comes first.
    /// Spurious returns are allowed (the caller re-checks its condition).
    pub(crate) fn wait_until(&self, deadline: Instant) {
        while !self.notified.swap(false, Ordering::Acquire) {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            std::thread::park_timeout(deadline - now);
        }
    }

    fn notify(&self) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

impl Wake for ThreadParker {
    fn wake(self: Arc<Self>) {
        self.notify();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.notify();
    }
}

/// Runs one future to completion on the current thread, parking between
/// polls — the async analogue of a blocking `wait` for straight-line code.
/// The future is polled in place (no boxing); on the deterministic loopback
/// backend it typically resolves without ever parking.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let parker = ThreadParker::current();
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => parker.wait(),
        }
    }
}

/// What the driver's tasks share with their wakers: the FIFO ready queue
/// (slot + spawn generation, so a stale waker from a finished task can never
/// poke a task that reused its slot) and the driver thread's parker.
struct DriverShared {
    ready: Mutex<VecDeque<(usize, u64)>>,
    parker: Arc<ThreadParker>,
}

impl DriverShared {
    fn mark_ready(&self, index: usize, generation: u64) {
        self.ready.lock().unwrap().push_back((index, generation));
        self.parker.notify();
    }
}

/// Wakes one driver task: flags it ready and unparks the driver thread.
struct TaskWaker {
    index: usize,
    generation: u64,
    shared: Arc<DriverShared>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.shared.mark_ready(self.index, self.generation);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.mark_ready(self.index, self.generation);
    }
}

struct Task {
    future: Pin<Box<dyn Future<Output = ()> + 'static>>,
    waker: Waker,
}

/// The shared progress driver: a single-threaded executor multiplexing any
/// number of spawned tasks over their endpoints' completion queues.
///
/// Tasks are polled in FIFO ready order, one [`Driver::step`] at a time —
/// there is no background thread and no time source, so on the synchronous
/// [`LoopbackCluster`](ppmsg_sim::LoopbackCluster) a driver-scheduled
/// workload executes **deterministically**: the same spawn order yields the
/// same interleaving, every run.  On the host backends, [`Driver::run`]
/// parks between steps and endpoint completions wake it through the waker
/// table, overlapping N in-flight operations on one thread.
///
/// Results leave tasks through whatever the closures capture (an
/// `Arc<Mutex<_>>`, a channel, ...); the driver itself only schedules.
pub struct Driver {
    shared: Arc<DriverShared>,
    tasks: Vec<Option<Task>>,
    /// Per-slot spawn generation: bumped when a task retires, so ready-queue
    /// entries and wakers of finished tasks go stale instead of poking
    /// whatever task reuses the slot.
    generations: Vec<u64>,
    /// Retired slots available for reuse — a long-lived driver spawning one
    /// task per request stays bounded by its peak concurrency, not its
    /// lifetime spawn count.
    free: Vec<usize>,
    live: usize,
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

impl Driver {
    /// Creates a driver owned by the current thread ([`Driver::run`] parks
    /// this thread while it waits for completions).
    pub fn new() -> Self {
        Driver {
            shared: Arc::new(DriverShared {
                ready: Mutex::new(VecDeque::new()),
                parker: ThreadParker::current(),
            }),
            tasks: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of spawned tasks that have not completed yet.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of task slots ever allocated — bounded by the peak number of
    /// concurrently live tasks, not by the lifetime spawn count.
    pub fn slots(&self) -> usize {
        self.tasks.len()
    }

    /// Spawns a task; it is polled for the first time on the next step.
    /// Tasks are scheduled in spawn order (retired slots are reused, FIFO
    /// fairness comes from the ready queue).
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) {
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.tasks.push(None);
                self.generations.push(0);
                self.tasks.len() - 1
            }
        };
        let generation = self.generations[index];
        let waker = Waker::from(Arc::new(TaskWaker {
            index,
            generation,
            shared: self.shared.clone(),
        }));
        self.tasks[index] = Some(Task {
            future: Box::pin(future),
            waker,
        });
        self.live += 1;
        self.shared.mark_ready(index, generation);
    }

    /// Polls the oldest ready task once.  Returns `false` when no task was
    /// ready (duplicate and stale wake-ups are skipped, not counted as
    /// progress).
    pub fn step(&mut self) -> bool {
        loop {
            let (index, generation) = {
                let mut ready = self.shared.ready.lock().unwrap();
                match ready.pop_front() {
                    Some(entry) => entry,
                    None => return false,
                }
            };
            // A wake for a task that already finished (its slot generation
            // moved on) or a duplicate entry for one already polled is
            // spurious: skip it.
            if self.generations[index] != generation {
                continue;
            }
            let Some(task) = self.tasks[index].as_mut() else {
                continue;
            };
            let mut cx = Context::from_waker(&task.waker);
            match task.future.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    self.tasks[index] = None;
                    self.generations[index] += 1;
                    self.free.push(index);
                    self.live -= 1;
                }
                Poll::Pending => {}
            }
            return true;
        }
    }

    /// Steps until no task is ready.  Never blocks: on the loopback backend
    /// this runs the whole workload to quiescence; on host backends it runs
    /// until every remaining task waits on in-flight traffic.
    pub fn run_until_stalled(&mut self) {
        while self.step() {}
    }

    /// Runs every spawned task to completion, parking the current thread
    /// whenever no task is ready (endpoint completions wake it).
    pub fn run(&mut self) {
        while self.live > 0 {
            self.run_until_stalled();
            if self.live == 0 {
                break;
            }
            self.shared.parker.wait();
        }
    }
}
