//! The multi-core executor: a work-stealing thread pool next to the
//! single-threaded [`Driver`](crate::async_transport::Driver).
//!
//! [`Pool`] spawns `Send` futures onto N worker threads.  Each worker owns a
//! FIFO run queue; tasks spawned or woken from outside the pool land in a
//! shared injector, tasks woken on a worker (the overwhelmingly common case:
//! a completion published while that worker runs the backend) go to the
//! waking worker's own queue.  A worker out of local work drains the
//! injector, then **steals half** of a sibling's queue — half, not one, so a
//! single imbalanced producer amortises the steal lock over many tasks.
//!
//! ## Task lifecycle — stale wakes are no-ops
//!
//! Every spawned task lives in a reference-counted cell whose scheduling
//! state is a single atomic: `Idle → Scheduled → Running → {Idle, Complete}`,
//! with `Notified` recording a wake that arrived mid-poll.  A waker is just a
//! handle on the cell, so a wake for a task that already completed (or is
//! already queued) finds the terminal/queued state and does nothing — the
//! same stale-wake immunity the single-threaded `Driver` gets from its
//! generation-checked slots, enforced here by the state machine because
//! cells are never reused.  The transitions guarantee a task is **enqueued
//! at most once** at any instant, so two workers can never poll the same
//! future concurrently.
//!
//! ## Picking `Driver` vs `Pool`
//!
//! The `Driver` is deterministic (same spawn order ⇒ same interleaving on
//! the loopback backend) and works with `!Send` futures; use it for tests
//! and single-core progress loops.  The `Pool` requires `Send` futures and
//! trades determinism for parallelism: with the sharded engine
//! ([`ShardedEngine`](ppmsg_core::ShardedEngine)), independent peers'
//! protocol work runs concurrently on different workers.
//!
//! ```
//! use push_pull_messaging::prelude::*;
//! use push_pull_messaging::executor::Pool;
//! use bytes::Bytes;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let cluster = HostCluster::new(0, ProtocolConfig::paper_intranode());
//! let a = Arc::new(Endpoint::new(cluster.add_endpoint(0)));
//! let b = Arc::new(Endpoint::new(cluster.add_endpoint(1)));
//!
//! let pool = Pool::new(2);
//! let delivered = Arc::new(AtomicUsize::new(0));
//! for tag in 0..4u32 {
//!     let (a, b, delivered) = (a.clone(), b.clone(), delivered.clone());
//!     pool.spawn(async move {
//!         let recv = b
//!             .recv(a.local_id(), Tag(tag), 64, TruncationPolicy::Error)
//!             .unwrap();
//!         a.send(b.local_id(), Tag(tag), Bytes::from(vec![tag as u8; 16]))
//!             .unwrap()
//!             .await;
//!         assert_eq!(recv.await.data.unwrap().len(), 16);
//!         delivered.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.wait_idle();
//! assert_eq!(delivered.load(Ordering::Relaxed), 4);
//! ```

use ppmsg_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use ppmsg_check::sync::{Condvar, Mutex};
#[cfg(not(ppmsg_check))]
use ppmsg_core::telemetry::{self, EventKind};
use ppmsg_core::telemetry::{Counter, LogHistogram};
use std::cell::Cell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;

pub use task_state::{TaskState, WakeAction};

/// The task scheduling state machine, extracted from the pool's `TaskCell` so the
/// bounded model checker (`ppmsg-check`) can drive it through instrumented
/// atomics without spinning up OS worker threads.  Public but hidden: it is
/// an implementation detail exposed only for the model harnesses.
#[doc(hidden)]
pub mod task_state {
    use ppmsg_check::sync::atomic::{AtomicU8, Ordering};

    // Task lifecycle states (see the executor module docs).
    const IDLE: u8 = 0;
    const SCHEDULED: u8 = 1;
    const RUNNING: u8 = 2;
    const NOTIFIED: u8 = 3;
    const COMPLETE: u8 = 4;

    /// Sabotage knobs for the model-checker teeth tests: each weakens the
    /// state machine in a way the checker must catch.  Plain `std` atomics
    /// on purpose — reading a knob must not be a model yield point.
    #[cfg(ppmsg_check)]
    pub mod sabotage {
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Drop a wake that lands mid-poll instead of recording `Notified`
        /// — the canonical lost-wakeup bug.
        pub static DROP_NOTIFIED: AtomicBool = AtomicBool::new(false);
        /// Replace the `IDLE -> SCHEDULED` compare-exchange with a racy
        /// load-then-store, letting two wakers both claim the enqueue.
        pub static WAKE_NOT_ATOMIC: AtomicBool = AtomicBool::new(false);

        pub(super) fn drop_notified() -> bool {
            DROP_NOTIFIED.load(Ordering::Relaxed)
        }
        pub(super) fn wake_not_atomic() -> bool {
            WAKE_NOT_ATOMIC.load(Ordering::Relaxed)
        }

        /// Restore the honest state machine (call between harness runs).
        pub fn reset() {
            DROP_NOTIFIED.store(false, Ordering::Relaxed);
            WAKE_NOT_ATOMIC.store(false, Ordering::Relaxed);
        }
    }

    /// What the caller of [`TaskState::wake`] must do.
    #[derive(Debug, PartialEq, Eq)]
    pub enum WakeAction {
        /// This wake won the `IDLE -> SCHEDULED` transition: enqueue the
        /// task exactly once.
        Enqueue,
        /// The wake was absorbed (already queued, mid-poll, or complete).
        None,
    }

    /// The atomic scheduling state that makes task wakes idempotent: any
    /// number of concurrent wakes produce at most one enqueue, and a wake
    /// racing a poll is never lost (the poller re-enqueues via `Notified`).
    #[derive(Debug)]
    pub struct TaskState {
        state: AtomicU8,
    }

    impl TaskState {
        /// A freshly spawned task: already queued by its spawner.
        pub fn new_scheduled() -> TaskState {
            TaskState {
                state: AtomicU8::new(SCHEDULED),
            }
        }

        /// A wake: claims the enqueue unless the task is already queued,
        /// finished, or mid-poll (then the poller reschedules it itself
        /// via `Notified`).
        pub fn wake(&self) -> WakeAction {
            loop {
                #[cfg(ppmsg_check)]
                if sabotage::wake_not_atomic() {
                    // BUG (sabotage): load-then-store lets two wakers both
                    // observe IDLE and both claim the enqueue.
                    if self.state.load(Ordering::SeqCst) == IDLE {
                        self.state.store(SCHEDULED, Ordering::SeqCst);
                        return WakeAction::Enqueue;
                    }
                }
                match self.state.compare_exchange(
                    IDLE,
                    SCHEDULED,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => return WakeAction::Enqueue,
                    Err(RUNNING) => {
                        #[cfg(ppmsg_check)]
                        if sabotage::drop_notified() {
                            // BUG (sabotage): a wake racing the poll is
                            // silently dropped — the classic lost wakeup.
                            return WakeAction::None;
                        }
                        if self
                            .state
                            .compare_exchange(RUNNING, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            return WakeAction::None;
                        }
                        // Lost a race with the poller settling the state;
                        // retry from the top.
                    }
                    // Already queued, already notified, or already
                    // finished: this wake has nothing to add.
                    Err(_) => return WakeAction::None,
                }
            }
        }

        /// The worker dequeued this task and is about to poll it.
        pub fn begin_poll(&self) {
            self.state.store(RUNNING, Ordering::SeqCst);
        }

        /// The poll returned `Pending`.  Returns `true` when a wake raced
        /// the poll (`Notified`) and the caller must re-enqueue now.
        pub fn finish_poll_pending(&self) -> bool {
            if self
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                self.state.store(SCHEDULED, Ordering::SeqCst);
                return true;
            }
            false
        }

        /// The poll returned `Ready`: the task is done, later wakes no-op.
        pub fn finish_poll_complete(&self) {
            self.state.store(COMPLETE, Ordering::SeqCst);
        }

        /// Retires the task without polling (pool gone, queue dropped).
        pub fn force_complete(&self) {
            self.state.store(COMPLETE, Ordering::SeqCst);
        }

        /// Whether the task has finished.
        pub fn is_complete(&self) -> bool {
            self.state.load(Ordering::SeqCst) == COMPLETE
        }
    }
}

/// One spawned task: its future and the atomic scheduling state that makes
/// wakes idempotent.  The waker for the task is the cell itself.
struct TaskCell {
    state: TaskState,
    /// `None` once the task completed (the future is dropped eagerly, not
    /// kept until the last waker dies).  The mutex is uncontended by
    /// construction — the state machine admits one poller at a time — and
    /// exists to make the cell `Sync` without `unsafe`.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    pool: Weak<PoolShared>,
}

impl TaskCell {
    /// A wake: schedules the task unless it is already queued, finished, or
    /// mid-poll (then the poller reschedules it itself via `Notified`).
    fn schedule(self: &Arc<Self>) {
        match self.state.wake() {
            WakeAction::Enqueue => {
                if let Some(pool) = self.pool.upgrade() {
                    pool.enqueue(self.clone());
                } else {
                    // The pool is gone: the task can never run again.
                    self.state.force_complete();
                    *self.future.lock() = None;
                }
            }
            WakeAction::None => {}
        }
    }
}

impl Wake for TaskCell {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// The pool's metrics plane: scheduling counters and a queue-depth
/// histogram, recordable lock-free from every worker and snapshot-able via
/// [`Pool::metrics`].  All fields are zero-cost no-ops when the `telemetry`
/// feature is off, and the bumps are compiled out entirely under
/// `--cfg ppmsg_check` so model runs of the pool keep their state space.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    /// Tasks spawned onto the pool.
    pub spawns: Counter,
    /// Steal operations that found a victim (each moves half a queue).
    pub steals: Counter,
    /// Tasks moved by steals — `stolen_tasks / steals` is the mean batch.
    pub stolen_tasks: Counter,
    /// Times a worker went to sleep with no work anywhere.
    pub parks: Counter,
    /// Queued-task count observed at each enqueue (scheduling pressure).
    pub queue_depth: LogHistogram,
}

/// State shared by the workers, spawners and wakers.
struct PoolShared {
    /// Per-worker FIFO run queues.
    locals: Box<[Mutex<VecDeque<Arc<TaskCell>>>]>,
    /// Overflow/entry queue for tasks spawned or woken off-pool.
    injector: Mutex<VecDeque<Arc<TaskCell>>>,
    /// Tasks sitting in some queue right now.  Paired with `sleepers` in a
    /// two-flag handshake (both `SeqCst`): an enqueuer bumps `pending` then
    /// reads `sleepers`; a worker registers in `sleepers` then re-reads
    /// `pending` — in the single total order at least one side sees the
    /// other, so no task is left queued with every worker asleep.
    pending: AtomicUsize,
    /// Workers parked on `park_cv`.
    sleepers: AtomicUsize,
    /// Spawned-but-not-completed tasks (queued, mid-poll, *or* idle awaiting
    /// an external wake) — what [`Pool::wait_idle`] waits on.
    live: AtomicUsize,
    shutdown: AtomicBool,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    metrics: PoolMetrics,
}

std::thread_local! {
    /// `(pool identity, worker index)` when the current thread is a pool
    /// worker — wakes on a worker thread go to its own run queue.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

impl PoolShared {
    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn enqueue(self: &Arc<Self>, task: Arc<TaskCell>) {
        let me = self.identity();
        let slot = CURRENT_WORKER.with(|w| match w.get() {
            Some((pool, worker)) if pool == me => Some(worker),
            _ => None,
        });
        match slot {
            Some(worker) => self.locals[worker].lock().push_back(task),
            None => self.injector.lock().push_back(task),
        }
        let queued = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        #[cfg(not(ppmsg_check))]
        self.metrics.queue_depth.record(queued as u64);
        #[cfg(ppmsg_check)]
        let _ = queued;
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Notify under the park lock so a worker between its `pending`
            // re-check and its condvar wait cannot miss this signal.
            let _guard = self.park_lock.lock();
            self.park_cv.notify_one();
        }
    }

    /// Dequeues the next task for `worker`: own queue, then the injector,
    /// then half of the first non-empty sibling queue.
    fn find_work(&self, worker: usize) -> Option<Arc<TaskCell>> {
        if let Some(task) = self.locals[worker].lock().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(task);
        }
        if let Some(task) = self.injector.lock().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(task);
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            let mut stolen = {
                let mut queue = self.locals[victim].lock();
                let len = queue.len();
                if len == 0 {
                    continue;
                }
                // Steal the older half (rounded up) from the queue front,
                // preserving FIFO order on both sides of the split.
                queue.drain(..len.div_ceil(2)).collect::<VecDeque<_>>()
            };
            let task = stolen.pop_front().expect("stole at least one task");
            self.pending.fetch_sub(1, Ordering::SeqCst);
            #[cfg(not(ppmsg_check))]
            {
                self.metrics.steals.inc();
                self.metrics.stolen_tasks.add(1 + stolen.len() as u64);
                telemetry::event(
                    EventKind::ExecutorSteal,
                    worker as u32,
                    victim as u32,
                    1 + stolen.len() as u64,
                );
            }
            if !stolen.is_empty() {
                self.locals[worker].lock().append(&mut stolen);
            }
            return Some(task);
        }
        None
    }

    fn retire_task(&self) {
        if self.live.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }
    }

    /// Polls one dequeued task.  On `Pending`, settles the state machine: a
    /// wake that raced the poll (`Notified`) re-enqueues immediately.
    fn run_task(self: &Arc<Self>, task: Arc<TaskCell>) {
        task.state.begin_poll();
        let waker = Waker::from(task.clone());
        let mut cx = Context::from_waker(&waker);
        let mut future = task.future.lock();
        let Some(fut) = future.as_mut() else {
            // Unreachable by construction; tolerate it rather than poison.
            task.state.force_complete();
            return;
        };
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                *future = None;
                drop(future);
                task.state.finish_poll_complete();
                self.retire_task();
            }
            Poll::Pending => {
                drop(future);
                if task.state.finish_poll_pending() {
                    // A wake arrived mid-poll (`Notified`): requeue now.
                    self.enqueue(task);
                }
            }
        }
    }

    fn worker_loop(self: &Arc<Self>, worker: usize) {
        CURRENT_WORKER.with(|w| w.set(Some((self.identity(), worker))));
        loop {
            if let Some(task) = self.find_work(worker) {
                self.run_task(task);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Two-flag handshake with `enqueue` (see `pending`): register as
            // a sleeper first, then re-check for work before waiting.
            let guard = self.park_lock.lock();
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.pending.load(Ordering::SeqCst) == 0 && !self.shutdown.load(Ordering::SeqCst) {
                #[cfg(not(ppmsg_check))]
                {
                    self.metrics.parks.inc();
                    telemetry::event(EventKind::ExecutorPark, worker as u32, 0, 0);
                }
                let _unused = self.park_cv.wait(guard);
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A work-stealing executor: N worker threads, per-worker FIFO run queues,
/// a shared injector, steal-half balancing.  See the [module docs](self)
/// for the scheduling model and for when to prefer the single-threaded
/// [`Driver`](crate::async_transport::Driver).
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Starts a pool of `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            locals: (0..workers)
                .map(|_| Mutex::new("pool.local", VecDeque::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            injector: Mutex::new("pool.injector", VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            live: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            park_lock: Mutex::new("pool.park", ()),
            park_cv: Condvar::new(),
            idle_lock: Mutex::new("pool.idle", ()),
            idle_cv: Condvar::new(),
            metrics: PoolMetrics::default(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ppmsg-pool-{index}"))
                    .spawn(move || shared.worker_loop(index))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// Spawned tasks that have not completed yet (queued, running, or idle
    /// awaiting a wake).
    pub fn live(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Spawns a task onto the pool.  Unlike
    /// [`Driver::spawn`](crate::async_transport::Driver::spawn) the future
    /// must be `Send` — it may be polled from any worker thread, a different
    /// one after every suspension.
    pub fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) {
        let task = Arc::new(TaskCell {
            state: TaskState::new_scheduled(),
            future: Mutex::new("pool.task", Some(Box::pin(future))),
            pool: Arc::downgrade(&self.shared),
        });
        self.shared.live.fetch_add(1, Ordering::SeqCst);
        #[cfg(not(ppmsg_check))]
        {
            self.shared.metrics.spawns.inc();
            telemetry::event(EventKind::ExecutorSpawn, 0, 0, self.live() as u64);
        }
        self.shared.enqueue(task);
    }

    /// The pool's live metrics plane — scheduling counters and the
    /// queue-depth histogram, snapshot-able while workers run.
    pub fn metrics(&self) -> &PoolMetrics {
        &self.shared.metrics
    }

    /// Blocks until every spawned task has completed — including tasks idle
    /// in an `await`, which finish when their backend wakes them.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.live.load(Ordering::SeqCst) > 0 {
            guard = self.shared.idle_cv.wait(guard);
        }
    }
}

impl Drop for Pool {
    /// Stops the workers and joins them.  Tasks still queued or suspended
    /// are **cancelled** (their futures dropped); call [`Pool::wait_idle`]
    /// first to run everything to completion.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.park_lock.lock();
            self.shared.park_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _unused = handle.join();
        }
        // Drop abandoned futures deterministically (a suspended task's
        // waker may otherwise keep its cell alive past the pool).
        for queue in self.shared.locals.iter() {
            queue.lock().clear();
        }
        self.shared.injector.lock().clear();
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers())
            .field("live", &self.live())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_plain_tasks_to_completion() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = counter.clone();
            pool.spawn(async move {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.live(), 0);
    }

    /// A future that suspends `yields` times, waking itself from a thread.
    struct ExternalYield {
        yields: usize,
    }

    impl Future for ExternalYield {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yields == 0 {
                return Poll::Ready(());
            }
            self.yields -= 1;
            let waker = cx.waker().clone();
            std::thread::spawn(move || waker.wake());
            Poll::Pending
        }
    }

    #[test]
    fn external_wakes_resume_tasks() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = counter.clone();
            pool.spawn(async move {
                ExternalYield { yields: 3 }.await;
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn single_worker_pool_still_progresses() {
        let pool = Pool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let counter = counter.clone();
            pool.spawn(async move {
                ExternalYield { yields: 2 }.await;
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn drop_cancels_queued_tasks() {
        // A task suspended forever must not hang Drop.
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let pool = Pool::new(2);
        pool.spawn(Never);
        drop(pool);
    }

    #[test]
    fn wake_after_completion_is_a_no_op() {
        let pool = Pool::new(1);
        let stash: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new("test.stash", None));
        struct Stash {
            stash: Arc<Mutex<Option<Waker>>>,
            polled: bool,
        }
        impl Future for Stash {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                *self.stash.lock() = Some(cx.waker().clone());
                if self.polled {
                    return Poll::Ready(());
                }
                self.polled = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
        pool.spawn(Stash {
            stash: stash.clone(),
            polled: false,
        });
        pool.wait_idle();
        // The task completed; its stashed waker must be inert.
        stash.lock().take().unwrap().wake();
        pool.wait_idle();
        assert_eq!(pool.live(), 0);
    }
}
