//! The capability-split transport front-end: an object-safe backend core
//! ([`RawTransport`]) under a generic convenience layer ([`Endpoint`]).
//!
//! PR 4 replaced the monolithic 13-method `Transport` trait — which every
//! backend re-implemented verbatim in three near-identical delegation
//! blocks — with two layers:
//!
//! * [`RawTransport`] (defined in `ppmsg_core::transport`, implemented once
//!   per backend in the backend's own crate): the minimal, **object-safe**
//!   posting/polling core.  `Box<dyn RawTransport>` is a first-class
//!   backend, so heterogeneous endpoints can live behind one type.
//! * [`Endpoint`]`<T: RawTransport>`: everything else as **shared code** —
//!   blocking `send`/`recv`/[`Endpoint::wait`], the async
//!   [`OpFuture`] combinators, vectored
//!   sends, borrowed completion drains ([`Endpoint::peek_completions`]),
//!   and the per-endpoint [`EndpointConfig`] overrides.
//!
//! # Migrating from the PR-3 `Transport` / `AsyncTransport` traits
//!
//! `Transport` and `AsyncTransport` are gone.  Wrap any backend endpoint in
//! [`Endpoint::new`] (or construct it with a backend's `*_with` method and
//! [`EndpointConfig`]) and map methods as follows:
//!
//! | PR-3 surface                              | PR-4 replacement |
//! |-------------------------------------------|------------------|
//! | `impl Transport for MyBackend` (13 methods) | `impl RawTransport for MyBackend` (9 methods) |
//! | `Transport::post_send` / `post_recv` / `post_recv_into` | same names on [`RawTransport`] / [`Endpoint`] |
//! | `Transport::cancel`                       | [`RawTransport::cancel_recv`] / [`Endpoint::cancel`] |
//! | `Transport::cancel_send`                  | unchanged |
//! | `Transport::wait`                         | [`Endpoint::wait`] (waker-parked, shared across backends) |
//! | `Transport::drain_completions`            | [`RawTransport::drain_completions`] (provided) / [`Endpoint::drain_completions`] |
//! | `Transport::poll_completion` / `register_interest` / `deregister_interest` | provided methods on [`RawTransport`] |
//! | `Transport::send_blocking` / `recv_blocking` | [`Endpoint::send_blocking`] / [`Endpoint::recv_blocking`] |
//! | `AsyncTransport::send` / `recv` / `recv_into` | [`Endpoint::send`] / [`Endpoint::recv`] / [`Endpoint::recv_into`] |
//! | `OpFuture<'a, T: AsyncTransport>`         | `OpFuture<'a, T: RawTransport>` |
//! | — (new)                                   | [`Endpoint::post_send_vectored`] / [`Endpoint::send_vectored`] |
//! | — (new)                                   | [`Endpoint::peek_completions`] (borrowed drain, [`Claim`]) |
//! | — (new)                                   | [`EndpointConfig`] (retention cap, default truncation, GBN window, eager threshold) |
//! | — (new)                                   | `stats().completions_evicted` |
//!
//! ```
//! use push_pull_messaging::prelude::*;
//! use push_pull_messaging::core::{ANY_SOURCE, ANY_TAG};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! // The same function drives the sim-cluster binding here, and the
//! // intranode / UDP backends in the conformance tests.
//! fn exchange<T: RawTransport>(a: &Endpoint<T>, b: &Endpoint<T>) {
//!     let recv = b
//!         .post_recv(ANY_SOURCE, ANY_TAG, 1024, TruncationPolicy::Error)
//!         .unwrap();
//!     let send = a
//!         .post_send(b.local_id(), Tag(7), Bytes::from(vec![1u8; 512]))
//!         .unwrap();
//!     let timeout = Duration::from_secs(5);
//!     let done = b.wait(OpId::Recv(recv), timeout).expect("delivered");
//!     assert_eq!(done.status, Status::Ok);
//!     assert_eq!(done.tag, Tag(7));
//!     assert_eq!(done.data.unwrap().len(), 512);
//!     assert!(a.wait(OpId::Send(send), timeout).is_some());
//! }
//!
//! let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
//! let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
//! let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));
//! exchange(&a, &b);
//! ```

use crate::async_transport::{OpFuture, ThreadParker};
use bytes::Bytes;
use ppmsg_core::{
    Claim, Completion, EndpointStats, Error, OpId, ProcessId, RecvBuf, RecvOp, Result, SendOp,
    Status, Tag, TruncationPolicy,
};
use std::task::Waker;
use std::time::{Duration, Instant};

pub use ppmsg_core::{EndpointConfig, RawTransport};

/// Rejects a send tag in the reserved (collective) half of the tag space:
/// the front-end keeps user point-to-point traffic out of it so per-group
/// collective tags can never collide with application messages.  The
/// collectives layer posts through [`RawTransport`] directly.
#[inline]
fn check_send_tag(tag: Tag) -> Result<()> {
    if tag.is_reserved() {
        return Err(Error::ReservedTag { tag });
    }
    Ok(())
}

/// Rejects a reserved receive selector.  [`ppmsg_core::ANY_TAG`] is allowed
/// (it is a wildcard, not a tag on the wire) — and the matching engine
/// guarantees it never matches reserved-tag messages.
#[inline]
fn check_recv_tag(tag: Tag) -> Result<()> {
    if tag.is_reserved() && !tag.is_any() {
        return Err(Error::ReservedTag { tag });
    }
    Ok(())
}

/// The generic transport front-end: one convenience layer over any
/// [`RawTransport`] backend.
///
/// Everything the old `Transport`/`AsyncTransport` traits made each backend
/// re-derive lives here as shared code: blocking waits and conveniences,
/// async futures, vectored sends, batch and borrowed completion drains, and
/// per-endpoint defaults from [`EndpointConfig`].  The wrapped backend is a
/// plain value — `Endpoint<LoopbackEndpoint>`, `Endpoint<UdpEndpoint>`,
/// `Endpoint<Box<dyn RawTransport>>` (see [`Endpoint::boxed`]) — and stays
/// accessible through [`Endpoint::raw`].
#[derive(Debug)]
pub struct Endpoint<T: RawTransport + ?Sized> {
    /// Default policy for the convenience receives that do not spell one
    /// out ([`Endpoint::recv_blocking`]).
    default_truncation: TruncationPolicy,
    raw: T,
}

impl<T: RawTransport + Clone> Clone for Endpoint<T> {
    fn clone(&self) -> Self {
        Endpoint {
            default_truncation: self.default_truncation,
            raw: self.raw.clone(),
        }
    }
}

impl<T: RawTransport> Endpoint<T> {
    /// Wraps a backend endpoint with default settings.
    pub fn new(raw: T) -> Self {
        Endpoint {
            default_truncation: TruncationPolicy::default(),
            raw,
        }
    }

    /// Wraps a backend endpoint and applies `config`'s front-end overrides:
    /// the completion-retention cap is applied to the live endpoint, and the
    /// default [`TruncationPolicy`] governs convenience receives.  (The
    /// protocol-level overrides — go-back-N window, eager threshold — must
    /// be applied at construction through a backend's `*_with` method; they
    /// shape the engine itself.)
    pub fn with_config(raw: T, config: &EndpointConfig) -> Self {
        let endpoint = Endpoint {
            default_truncation: config.default_truncation(),
            raw,
        };
        endpoint.apply_config(config);
        endpoint
    }

    /// Erases the backend type: the resulting endpoint routes through
    /// `Box<dyn RawTransport>`, so endpoints of *different* backends can
    /// share one concrete type (a routing table, a `Vec`, a trait-object
    /// fan-out).
    pub fn boxed(self) -> Endpoint<Box<dyn RawTransport>>
    where
        T: 'static,
    {
        Endpoint {
            default_truncation: self.default_truncation,
            raw: Box::new(self.raw),
        }
    }

    /// Unwraps the backend endpoint.
    pub fn into_inner(self) -> T {
        self.raw
    }
}

impl<T: RawTransport + ?Sized> Endpoint<T> {
    /// The wrapped backend endpoint.
    pub fn raw(&self) -> &T {
        &self.raw
    }

    /// Re-applies the front-end overrides of `config` to this endpoint (the
    /// retention cap takes effect immediately; protocol-level overrides are
    /// construction-time and ignored here).
    pub fn apply_config(&self, config: &EndpointConfig) {
        self.raw
            .with_completions(&mut |queue| config.apply_retention(queue));
    }

    /// The process id of this endpoint.
    pub fn local_id(&self) -> ProcessId {
        self.raw.local_id()
    }

    /// Protocol statistics, including
    /// [`completions_evicted`](EndpointStats::completions_evicted).
    pub fn stats(&self) -> EndpointStats {
        self.raw.stats()
    }

    // ------------------------------------------------------------------
    // Posting (delegated to the backend core).
    // ------------------------------------------------------------------

    /// Posts a send; see [`RawTransport::post_send`].
    pub fn post_send(&self, peer: ProcessId, tag: Tag, data: impl Into<Bytes>) -> Result<SendOp> {
        check_send_tag(tag)?;
        self.raw.post_send(peer, tag, data.into())
    }

    /// Posts a vectored send: the segments arrive as one concatenated
    /// message but are never coalesced on the wire; see
    /// [`RawTransport::post_send_vectored`].
    pub fn post_send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        check_send_tag(tag)?;
        self.raw.post_send_vectored(peer, tag, segments)
    }

    /// Posts an engine-buffered receive (wildcards allowed); see
    /// [`RawTransport::post_recv`].
    pub fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        check_recv_tag(tag)?;
        self.raw.post_recv(src, tag, capacity, policy)
    }

    /// Posts a caller-buffered receive; see [`RawTransport::post_recv_into`].
    pub fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        check_recv_tag(tag)?;
        self.raw.post_recv_into(src, tag, buf, policy)
    }

    /// Cancels a still-unmatched receive; see [`RawTransport::cancel_recv`].
    pub fn cancel(&self, op: RecvOp) -> bool {
        self.raw.cancel_recv(op)
    }

    /// Cancels a posted send whose remainder has not been pulled yet; see
    /// [`RawTransport::cancel_send`].
    pub fn cancel_send(&self, op: SendOp) -> bool {
        self.raw.cancel_send(op)
    }

    // ------------------------------------------------------------------
    // Completion access (shared code over `RawTransport::with_completions`).
    // ------------------------------------------------------------------

    /// Takes the completion of `op` if the operation has finished, without
    /// blocking.
    pub fn take_completion(&self, op: OpId) -> Option<Completion> {
        self.raw.take_completion(op)
    }

    /// The poll primitive behind the async front-end; see
    /// [`RawTransport::poll_completion`].
    pub fn poll_completion(&self, op: OpId, waker: &Waker) -> Option<Completion> {
        self.raw.poll_completion(op, waker)
    }

    /// Drains every unclaimed completion into `out`, oldest first — except
    /// completions some waiter has registered for (a parked future or a
    /// blocking [`Endpoint::wait`]), which stay queued for that waiter.
    /// Note the endpoint's **retention cap**
    /// ([`ppmsg_core::DEFAULT_COMPLETION_RETENTION`], configurable through
    /// [`EndpointConfig::completion_retention`]): completions of operations
    /// nobody waits for are evicted oldest-first beyond it — observably, via
    /// [`EndpointStats::completions_evicted`].
    pub fn drain_completions(&self, out: &mut Vec<Completion>) {
        self.raw.drain_completions(out);
    }

    /// Shows every unclaimed, unawaited completion to `f` **by reference**,
    /// oldest first — the borrowed drain: nothing is moved, so a
    /// multi-fragment pulled receive can be inspected (status, peer, payload
    /// bytes) without its [`RecvBuf`] or `Bytes` leaving the queue.  Return
    /// [`Claim::Keep`] to preserve a completion for a later
    /// [`Endpoint::wait`]/[`Endpoint::take_completion`], [`Claim::Remove`]
    /// to consume and drop it in place.
    pub fn peek_completions(&self, mut f: impl FnMut(&Completion) -> Claim) {
        self.raw.peek_completions(&mut f);
    }

    /// Waits until operation `op` completes, returning its completion, or
    /// `None` when `timeout` expires first.
    ///
    /// This is shared code over every backend: the calling thread registers
    /// a parking waker in the endpoint's completion queue (which also
    /// exempts the completion from retention eviction) and parks until the
    /// backend publishes the completion or the deadline passes.  The
    /// registration is **polite** ([`ppmsg_core::WaitPoll`]): if another
    /// task — a live [`OpFuture`] — is already registered for `op`, `wait`
    /// neither displaces its waker nor steals its completion; it re-polls
    /// periodically and, if the other waiter claims the result, returns
    /// `None` at the deadline.
    ///
    /// A completion that was **already evicted** before any waiter appeared
    /// is gone: `wait` then blocks the full timeout and returns `None` even
    /// though the operation succeeded — claim completions promptly, or
    /// register the wait before flooding the endpoint.
    pub fn wait(&self, op: OpId, timeout: Duration) -> Option<Completion> {
        use ppmsg_core::WaitPoll;
        /// Re-poll cadence while another task owns the operation's waker
        /// registration (we must not replace it, so publication cannot wake
        /// us directly).
        const OCCUPIED_POLL: Duration = Duration::from_millis(2);
        let deadline = Instant::now() + timeout;
        // The thread-local parker: a blocking-wait loop pays refcount bumps,
        // not an `Arc` allocation per call (ROADMAP PR-4 item).
        let parker = ThreadParker::cached();
        let waker = Waker::from(parker.clone());
        loop {
            let mut poll = WaitPoll::Occupied;
            self.raw
                .with_completions(&mut |queue| poll = queue.take_or_wait(op, &waker));
            let now = Instant::now();
            match poll {
                WaitPoll::Ready(completion) => return Some(completion),
                WaitPoll::Registered => {
                    if now >= deadline {
                        // Withdraw our registration (and only ours — the
                        // registration may meanwhile have gone to a future):
                        // an abandoned wait must not pin its completion.  A
                        // completion published between the failed poll and
                        // the deregistration is still claimed by the final
                        // take.
                        let mut out = None;
                        self.raw.with_completions(&mut |queue| {
                            queue.deregister_waiter(op, &waker);
                            out = queue.take(op);
                        });
                        return out;
                    }
                    parker.wait_until(deadline);
                }
                WaitPoll::Occupied => {
                    // A future owns the registration; let it win the claim
                    // and check back periodically in case it is abandoned.
                    if now >= deadline {
                        return None;
                    }
                    parker.wait_until(deadline.min(now + OCCUPIED_POLL));
                }
            }
        }
    }

    /// Convenience: posts a send and blocks until it completes, returning
    /// the number of bytes handed to the transport.
    pub fn send_blocking(
        &self,
        peer: ProcessId,
        tag: Tag,
        data: impl Into<Bytes>,
        timeout: Duration,
    ) -> Option<usize> {
        let op = self.post_send(peer, tag, data).ok()?;
        self.wait(OpId::Send(op), timeout).map(|c| c.len)
    }

    /// Convenience: posts a receive (with this endpoint's default
    /// [`TruncationPolicy`], see [`EndpointConfig::truncation`]) and blocks
    /// until the message arrives, returning its bytes (`None` on timeout,
    /// cancellation, or failure).
    pub fn recv_blocking(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        timeout: Duration,
    ) -> Option<Bytes> {
        let op = self
            .post_recv(src, tag, capacity, self.default_truncation)
            .ok()?;
        let completion = self.wait(OpId::Recv(op), timeout)?;
        match completion.status {
            Status::Ok | Status::Truncated { .. } => completion.data,
            Status::Cancelled | Status::Error(_) => None,
        }
    }

    // ------------------------------------------------------------------
    // Async combinators (futures resolved from the completion queue; see
    // `crate::async_transport`).
    // ------------------------------------------------------------------

    /// Posts a send and returns a future resolving to its [`Completion`]
    /// when the message has been fully handed to the transport (for
    /// Push-Pull sends, when the receiver has pulled the remainder).
    pub fn send(
        &self,
        peer: ProcessId,
        tag: Tag,
        data: impl Into<Bytes>,
    ) -> Result<OpFuture<'_, T>> {
        check_send_tag(tag)?;
        let op = self.raw.post_send(peer, tag, data.into())?;
        Ok(OpFuture::new(&self.raw, OpId::Send(op)))
    }

    /// Posts a vectored send and returns a future resolving to its
    /// [`Completion`].
    pub fn send_vectored(
        &self,
        peer: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<OpFuture<'_, T>> {
        check_send_tag(tag)?;
        let op = self.raw.post_send_vectored(peer, tag, segments)?;
        Ok(OpFuture::new(&self.raw, OpId::Send(op)))
    }

    /// Posts an engine-buffered receive (wildcards allowed) and returns a
    /// future resolving to its [`Completion`]; the message bytes arrive in
    /// the completion's `data` field.
    pub fn recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<OpFuture<'_, T>> {
        check_recv_tag(tag)?;
        let op = self.raw.post_recv(src, tag, capacity, policy)?;
        Ok(OpFuture::new(&self.raw, OpId::Recv(op)))
    }

    /// Posts a caller-buffered receive and returns a future resolving to its
    /// [`Completion`]; the buffer comes back in the completion's `buf` field
    /// (also on cancellation and failure), so one buffer can be recycled
    /// across awaits indefinitely.
    pub fn recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<OpFuture<'_, T>> {
        check_recv_tag(tag)?;
        let op = self.raw.post_recv_into(src, tag, buf, policy)?;
        Ok(OpFuture::new(&self.raw, OpId::Recv(op)))
    }

    /// Wraps an already-posted operation (e.g. one posted through the
    /// blocking API, or re-awaited after its future was dropped) so its
    /// completion can be awaited.
    pub fn future(&self, op: OpId) -> OpFuture<'_, T> {
        OpFuture::new(&self.raw, op)
    }
}
