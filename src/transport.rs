//! The unified transport front-end: one typed operation API over every
//! backend.
//!
//! [`Transport`] is the post / drain-completions / wait shape shared by
//! the intranode shared-memory fabric ([`HostEndpoint`]), the UDP internode
//! backend ([`UdpEndpoint`]), and the deterministic in-memory sim-cluster
//! binding ([`LoopbackEndpoint`]).  Examples, integration tests, and
//! benchmarks are written once against the trait and run unmodified on any
//! backend — the backend injects the effects, the protocol code stays the
//! same.

use bytes::Bytes;
use ppmsg_core::{
    Completion, OpId, ProcessId, RecvBuf, RecvOp, Result, SendOp, Status, Tag, TruncationPolicy,
};
use ppmsg_host::{HostEndpoint, UdpEndpoint};
use ppmsg_sim::LoopbackEndpoint;
use std::task::Waker;
use std::time::Duration;

/// A protocol endpoint that can post typed operations and report their
/// completions, independent of the transport carrying the bytes.
///
/// The three required groups mirror modern completion-queue interfaces:
/// **post** an operation and get a generation-checked handle back
/// ([`SendOp`] / [`RecvOp`]), **drain** finished operations in batches, and
/// **wait** for one specific operation.  Receives support wildcard
/// selectors ([`ppmsg_core::ANY_SOURCE`] / [`ppmsg_core::ANY_TAG`]),
/// caller-owned buffers ([`RecvBuf`]), cancellation, and explicit
/// truncation semantics ([`TruncationPolicy`]) on every backend.
///
/// ```
/// use push_pull_messaging::prelude::*;
/// use push_pull_messaging::core::{ANY_SOURCE, ANY_TAG};
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// // The same function drives the sim-cluster binding here, and the
/// // intranode / UDP backends in the integration tests.
/// fn exchange<T: Transport>(a: &T, b: &T) {
///     let recv = b
///         .post_recv(ANY_SOURCE, ANY_TAG, 1024, TruncationPolicy::Error)
///         .unwrap();
///     let send = a
///         .post_send(b.local_id(), Tag(7), Bytes::from(vec![1u8; 512]))
///         .unwrap();
///     let timeout = Duration::from_secs(5);
///     let done = b.wait(OpId::Recv(recv), timeout).expect("delivered");
///     assert_eq!(done.status, Status::Ok);
///     assert_eq!(done.tag, Tag(7));
///     assert_eq!(done.data.unwrap().len(), 512);
///     assert!(a.wait(OpId::Send(send), timeout).is_some());
/// }
///
/// let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
/// let a = cluster.add_endpoint(ProcessId::new(0, 0));
/// let b = cluster.add_endpoint(ProcessId::new(0, 1));
/// exchange(&a, &b);
/// ```
pub trait Transport {
    /// The process id of this endpoint.
    fn local_id(&self) -> ProcessId;

    /// Posts a send of `data` to `peer` with tag `tag`, returning its
    /// operation handle.  The matching [`Completion`] reports when the
    /// message has been fully handed to the transport (for Push-Pull sends,
    /// when the receiver has pulled the remainder).
    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp>;

    /// Posts an engine-buffered receive of up to `capacity` bytes.  `src` /
    /// `tag` may be the [`ppmsg_core::ANY_SOURCE`] /
    /// [`ppmsg_core::ANY_TAG`] wildcards; the completion reports the
    /// concrete source and tag.
    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp>;

    /// Posts a receive that reassembles the message directly into the
    /// caller-owned `buf`, which is handed back in the completion (also on
    /// cancellation and failure).  Reusing one buffer keeps even the
    /// multi-fragment pull path allocation-free.
    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp>;

    /// Cancels a still-unmatched receive.  Returns `true` when the
    /// operation was cancelled (a [`Status::Cancelled`] completion is
    /// produced and the operation can never complete afterwards); `false`
    /// for stale handles and already-matched receives.
    fn cancel(&self, op: RecvOp) -> bool;

    /// Cancels a posted send whose remainder has not been pulled yet,
    /// reclaiming the pinned payload.  Returns `true` when the operation was
    /// cancelled (a [`Status::Cancelled`] completion is produced); `false`
    /// for stale handles, eagerly-completed sends, and sends whose pull has
    /// already been served.  See
    /// [`ppmsg_core::Endpoint::cancel_send`] for the receiver-side caveat.
    fn cancel_send(&self, op: SendOp) -> bool;

    /// Drains every unclaimed completion into `out`, oldest first — except
    /// completions some waiter has registered for (a parked async future or
    /// a blocking [`Transport::wait`]), which stay queued for that waiter.
    /// Note the endpoint's **retention cap**
    /// ([`ppmsg_core::DEFAULT_COMPLETION_RETENTION`]): completions of
    /// operations nobody waits for are evicted oldest-first beyond it, so a
    /// fire-and-forget workload that drains only occasionally sees at most
    /// the newest `retention` results.
    fn drain_completions(&self, out: &mut Vec<Completion>);

    /// Waits until operation `op` completes, returning its completion, or
    /// `None` when `timeout` expires first.  Calling `wait` (or creating an
    /// async future) marks the operation as waited-on, which exempts its
    /// completion from retention eviction — but a completion that was
    /// **already evicted** before any waiter appeared (it aged past the
    /// retention cap as unclaimed fire-and-forget traffic) is gone: `wait`
    /// then blocks the full timeout and returns `None` even though the
    /// operation succeeded.  Claim completions promptly, or register the
    /// wait before flooding the endpoint.
    fn wait(&self, op: OpId, timeout: Duration) -> Option<Completion>;

    /// Takes the completion of `op` if the operation has finished, or
    /// registers `waker` to be woken when it does — one atomic step with
    /// respect to completion publication.  This is the poll primitive
    /// behind the async front-end.
    fn poll_completion(&self, op: OpId, waker: &Waker) -> Option<Completion>;

    /// Exempts `op`'s completion (present or future) from retention
    /// eviction until claimed; see
    /// [`ppmsg_core::CompletionQueue::register_interest`].
    fn register_interest(&self, op: OpId);

    /// Withdraws any waker or interest registered for `op` (an abandoned
    /// await); see [`ppmsg_core::CompletionQueue::deregister`].
    fn deregister_interest(&self, op: OpId);

    /// Convenience: posts a send and blocks until it completes, returning
    /// the number of bytes handed to the transport.
    fn send_blocking(
        &self,
        peer: ProcessId,
        tag: Tag,
        data: Bytes,
        timeout: Duration,
    ) -> Option<usize> {
        let op = self.post_send(peer, tag, data).ok()?;
        self.wait(OpId::Send(op), timeout).map(|c| c.len)
    }

    /// Convenience: posts a receive and blocks until the message arrives,
    /// returning its bytes (`None` on timeout, cancellation, or failure).
    fn recv_blocking(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        timeout: Duration,
    ) -> Option<Bytes> {
        let op = self
            .post_recv(src, tag, capacity, TruncationPolicy::Error)
            .ok()?;
        let completion = self.wait(OpId::Recv(op), timeout)?;
        match completion.status {
            Status::Ok | Status::Truncated { .. } => completion.data,
            Status::Cancelled | Status::Error(_) => None,
        }
    }
}

impl Transport for HostEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        HostEndpoint::post_send(self, peer, tag, data)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        HostEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        HostEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel(&self, op: RecvOp) -> bool {
        HostEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        HostEndpoint::cancel_send(self, op)
    }

    fn drain_completions(&self, out: &mut Vec<Completion>) {
        HostEndpoint::drain_completions(self, out)
    }

    fn wait(&self, op: OpId, timeout: Duration) -> Option<Completion> {
        HostEndpoint::wait(self, op, timeout)
    }

    fn poll_completion(&self, op: OpId, waker: &Waker) -> Option<Completion> {
        HostEndpoint::poll_completion(self, op, waker)
    }

    fn register_interest(&self, op: OpId) {
        HostEndpoint::register_interest(self, op)
    }

    fn deregister_interest(&self, op: OpId) {
        HostEndpoint::deregister_interest(self, op)
    }
}

impl Transport for UdpEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        UdpEndpoint::post_send(self, peer, tag, data)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        UdpEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        UdpEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel(&self, op: RecvOp) -> bool {
        UdpEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        UdpEndpoint::cancel_send(self, op)
    }

    fn drain_completions(&self, out: &mut Vec<Completion>) {
        UdpEndpoint::drain_completions(self, out)
    }

    fn wait(&self, op: OpId, timeout: Duration) -> Option<Completion> {
        UdpEndpoint::wait(self, op, timeout)
    }

    fn poll_completion(&self, op: OpId, waker: &Waker) -> Option<Completion> {
        UdpEndpoint::poll_completion(self, op, waker)
    }

    fn register_interest(&self, op: OpId) {
        UdpEndpoint::register_interest(self, op)
    }

    fn deregister_interest(&self, op: OpId) {
        UdpEndpoint::deregister_interest(self, op)
    }
}

impl Transport for LoopbackEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id()
    }

    fn post_send(&self, peer: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        LoopbackEndpoint::post_send(self, peer, tag, data)
    }

    fn post_recv(
        &self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        LoopbackEndpoint::post_recv(self, src, tag, capacity, policy)
    }

    fn post_recv_into(
        &self,
        src: ProcessId,
        tag: Tag,
        buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        LoopbackEndpoint::post_recv_into(self, src, tag, buf, policy)
    }

    fn cancel(&self, op: RecvOp) -> bool {
        LoopbackEndpoint::cancel(self, op)
    }

    fn cancel_send(&self, op: SendOp) -> bool {
        LoopbackEndpoint::cancel_send(self, op)
    }

    fn drain_completions(&self, out: &mut Vec<Completion>) {
        LoopbackEndpoint::drain_completions(self, out)
    }

    /// The loopback cluster is synchronous: anything that can complete has
    /// completed by the time `wait` is called, so the timeout never blocks.
    fn wait(&self, op: OpId, _timeout: Duration) -> Option<Completion> {
        self.take_completion(op)
    }

    fn poll_completion(&self, op: OpId, waker: &Waker) -> Option<Completion> {
        LoopbackEndpoint::poll_completion(self, op, waker)
    }

    fn register_interest(&self, op: OpId) {
        LoopbackEndpoint::register_interest(self, op)
    }

    fn deregister_interest(&self, op: OpId) {
        LoopbackEndpoint::deregister_interest(self, op)
    }
}
