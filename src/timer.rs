//! Wall-clock futures: [`sleep`] and [`timeout`].
//!
//! The protocol engine reads no clock and the executors keep no time source,
//! so until now an async caller awaiting a completion that never arrives
//! (peer crashed before posting, wildcard mismatch, ...) waited forever.
//! This module closes that hazard with the same machinery the reactor
//! backend uses for retransmission deadlines: a hashed **timer wheel**
//! (fixed slot ring, millisecond ticks, lazy cancellation) driven by one
//! global, lazily-started thread.
//!
//! * [`sleep`] resolves once a duration has elapsed;
//! * [`timeout`] races any future against a deadline, yielding
//!   `Err(`[`Elapsed`]`)` if the deadline wins.
//!
//! Entries are generation-checked: dropping a [`Sleep`] retires its slot
//! immediately and leaves the wheel entry to be collected at its original
//! tick, where the stale generation makes it a no-op — cancellation costs
//! O(1), exactly like the reactor wheel and the engine's own timer
//! generations.  Wakes never fire early; they may fire up to one tick
//! (1 ms) late, which is noise against the retransmission-scale timeouts
//! this layer exists for.

use ppmsg_check::sync::{Condvar, Mutex};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Wheel resolution: 1 ms ticks (deadlines round up, never firing early).
const TICK_US: u64 = 1_000;
/// Wheel slot count; deadlines further out than `WHEEL_SLOTS` ticks survive
/// extra cursor revolutions in their slot, as in the reactor wheel.
const WHEEL_SLOTS: usize = 256;

/// One wheel entry: the absolute tick it fires at and the generation-checked
/// timer slot it resolves.
struct Entry {
    tick: u64,
    slot: usize,
    generation: u64,
}

/// A timer slot's lifecycle.  `Waiting` holds the waker of the last poll
/// (none before the first); `Elapsed` means the wheel fired it and the next
/// poll resolves.
enum SlotState {
    Waiting(Option<Waker>),
    Elapsed,
}

struct TimerSlot {
    generation: u64,
    state: SlotState,
}

struct TimerInner {
    start: Instant,
    /// The next tick the cursor will collect.
    next_tick: u64,
    wheel: Vec<Vec<Entry>>,
    table: Vec<TimerSlot>,
    free: Vec<usize>,
    /// Slots in `Waiting` state — when zero the driver parks indefinitely.
    live: usize,
    /// Scratch for entries collected in one cursor pass.
    fired: Vec<Entry>,
}

impl TimerInner {
    fn new(start: Instant) -> TimerInner {
        TimerInner {
            start,
            next_tick: 0,
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            table: Vec::new(),
            free: Vec::new(),
            live: 0,
            fired: Vec::new(),
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.start).as_micros() as u64 / TICK_US
    }

    fn instant_of(&self, tick: u64) -> Instant {
        self.start + Duration::from_micros(tick * TICK_US)
    }

    /// Registers a sleep until `deadline`, returning `(slot, generation)`.
    fn register(&mut self, deadline: Instant) -> (usize, u64) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.table.push(TimerSlot {
                generation: 0,
                state: SlotState::Elapsed,
            });
            self.table.len() - 1
        });
        self.table[slot].state = SlotState::Waiting(None);
        let generation = self.table[slot].generation;
        // Round up one tick so the timer never fires early; clamp deadlines
        // behind the cursor to its next collection pass.
        let tick = (self.tick_of(deadline) + 1).max(self.next_tick);
        self.wheel[(tick % WHEEL_SLOTS as u64) as usize].push(Entry {
            tick,
            slot,
            generation,
        });
        self.live += 1;
        (slot, generation)
    }

    /// The earliest tick any entry (live or stale) occupies.
    fn nearest_tick(&self) -> Option<u64> {
        self.wheel
            .iter()
            .flat_map(|bucket| bucket.iter().map(|entry| entry.tick))
            .min()
    }

    /// Advances the cursor to `now`, collecting every due entry.  Ticks no
    /// entry occupies are jumped over, so waking after a long idle stretch
    /// costs O(entries), not O(elapsed ticks).
    fn advance(&mut self, now: Instant, woken: &mut Vec<Waker>) {
        let now_tick = self.tick_of(now);
        while self.next_tick <= now_tick {
            let cur = self.next_tick;
            let bucket = &mut self.wheel[(cur % WHEEL_SLOTS as u64) as usize];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].tick <= cur {
                    let entry = bucket.swap_remove(i);
                    self.fired.push(entry);
                } else {
                    i += 1;
                }
            }
            while let Some(entry) = self.fired.pop() {
                let slot = &mut self.table[entry.slot];
                // Stale generation = the sleep was dropped; skip.
                if slot.generation != entry.generation {
                    ppmsg_core::telemetry::event(
                        ppmsg_core::telemetry::EventKind::TimerStale,
                        entry.generation as u32,
                        0,
                        entry.slot as u64,
                    );
                    continue;
                }
                if let SlotState::Waiting(waker) = &mut slot.state {
                    if let Some(waker) = waker.take() {
                        woken.push(waker);
                    }
                    slot.state = SlotState::Elapsed;
                    self.live -= 1;
                    ppmsg_core::telemetry::event(
                        ppmsg_core::telemetry::EventKind::TimerFire,
                        entry.generation as u32,
                        0,
                        entry.slot as u64,
                    );
                }
            }
            self.next_tick = cur + 1;
            match self.nearest_tick() {
                Some(next) if next > self.next_tick => {
                    self.next_tick = next.min(now_tick + 1);
                }
                None => break,
                _ => {}
            }
        }
    }

    /// Frees a slot, invalidating any wheel entry still pointing at it.
    fn retire(&mut self, slot: usize) {
        self.table[slot].generation += 1;
        self.free.push(slot);
    }
}

struct TimerShared {
    inner: Mutex<TimerInner>,
    cv: Condvar,
}

/// The global timer driver, started on first use and never stopped (one
/// parked thread while no timer is armed).
fn driver() -> &'static Arc<TimerShared> {
    static DRIVER: OnceLock<Arc<TimerShared>> = OnceLock::new();
    DRIVER.get_or_init(|| {
        let shared = Arc::new(TimerShared {
            inner: Mutex::new("timer.driver", TimerInner::new(Instant::now())),
            cv: Condvar::new(),
        });
        let thread_shared = shared.clone();
        std::thread::Builder::new()
            .name("ppmsg-timer".into())
            .spawn(move || driver_loop(thread_shared))
            .expect("spawn timer driver");
        shared
    })
}

fn driver_loop(shared: Arc<TimerShared>) {
    let mut woken: Vec<Waker> = Vec::new();
    let mut inner = shared.inner.lock();
    loop {
        let now = Instant::now();
        inner.advance(now, &mut woken);
        if !woken.is_empty() {
            // Wakers run without the wheel lock: a waker is arbitrary
            // executor code and may arm new timers inside.
            drop(inner);
            for waker in woken.drain(..) {
                waker.wake();
            }
            inner = shared.inner.lock();
            continue;
        }
        match inner.nearest_tick() {
            Some(tick) => {
                let deadline = inner.instant_of(tick);
                let timeout = deadline.saturating_duration_since(Instant::now());
                let (guard, _timed_out) = shared.cv.wait_timeout(inner, timeout);
                inner = guard;
            }
            None => {
                // Idle: re-anchor the wheel so the cursor never has a long
                // catch-up, then park until the next registration.
                inner.start = now;
                inner.next_tick = 0;
                inner = shared.cv.wait(inner);
            }
        }
    }
}

/// A future that resolves once a duration has elapsed.  Created by
/// [`sleep`]; see [`timeout`] to bound another future instead.
///
/// Dropping a `Sleep` before it resolves cancels it in O(1) (the wheel
/// entry goes stale; no scan, no wake).
pub struct Sleep {
    shared: &'static Arc<TimerShared>,
    /// A live `Sleep` owns its slot exclusively — the generation is only
    /// carried by the wheel entry, to be checked when it fires.
    slot: usize,
    done: bool,
}

/// Returns a future that resolves after `duration` (never early; up to one
/// wheel tick — 1 ms — late).  The timer is armed immediately, so the delay
/// runs from this call, not from the first poll.
///
/// ```
/// use push_pull_messaging::{block_on, timer::sleep};
/// use std::time::{Duration, Instant};
///
/// let start = Instant::now();
/// block_on(sleep(Duration::from_millis(5)));
/// assert!(start.elapsed() >= Duration::from_millis(5));
/// ```
pub fn sleep(duration: Duration) -> Sleep {
    let shared = driver();
    let deadline = Instant::now() + duration;
    let (slot, generation) = shared.inner.lock().register(deadline);
    ppmsg_core::telemetry::event(
        ppmsg_core::telemetry::EventKind::TimerArm,
        generation as u32,
        duration.as_micros().min(u32::MAX as u128) as u32,
        slot as u64,
    );
    shared.cv.notify_one();
    Sleep {
        shared,
        slot,
        done: false,
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.done {
            return Poll::Ready(());
        }
        let mut inner = self.shared.inner.lock();
        match &mut inner.table[self.slot].state {
            SlotState::Elapsed => {
                inner.retire(self.slot);
                drop(inner);
                self.done = true;
                Poll::Ready(())
            }
            SlotState::Waiting(waker) => {
                *waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let mut inner = self.shared.inner.lock();
        if let SlotState::Waiting(_) = inner.table[self.slot].state {
            inner.live -= 1;
        }
        inner.retire(self.slot);
    }
}

impl fmt::Debug for Sleep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sleep").field("done", &self.done).finish()
    }
}

/// The deadline of a [`timeout`] elapsed before its future resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("deadline elapsed before the future resolved")
    }
}

impl std::error::Error for Elapsed {}

/// A future racing an inner future against a deadline.  Created by
/// [`timeout`].
pub struct Timeout<F> {
    /// Boxed so `Timeout` can poll the inner future without unsafe pin
    /// projection — one allocation per timeout, off every steady path.
    future: Pin<Box<F>>,
    sleep: Sleep,
}

/// Bounds `future` to `duration`: resolves to `Ok(output)` if the future
/// finishes first, `Err(`[`Elapsed`]`)` if the deadline does.  On timeout
/// the inner future is dropped with the `Timeout` — for a transfer that
/// means the *await* is abandoned, not the posted operation (cancel the
/// handle to revoke it; see
/// [`OpFuture`](crate::async_transport::OpFuture)'s drop contract).
///
/// ```
/// use push_pull_messaging::{block_on, timer::timeout};
/// use std::time::Duration;
///
/// // A future that never resolves loses the race...
/// let lost = block_on(timeout(Duration::from_millis(5), std::future::pending::<u32>()));
/// assert!(lost.is_err());
///
/// // ...a prompt one wins it.
/// let won = block_on(timeout(Duration::from_secs(10), async { 7 }));
/// assert_eq!(won, Ok(7));
/// ```
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future: Box::pin(future),
        sleep: sleep(duration),
    }
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(output) = self.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(output));
        }
        match Pin::new(&mut self.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<F> fmt::Debug for Timeout<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Timeout")
            .field("sleep", &self.sleep)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_transport::block_on;

    #[test]
    fn sleep_elapses() {
        let start = Instant::now();
        block_on(sleep(Duration::from_millis(10)));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn many_sleeps_resolve_in_any_order() {
        let start = Instant::now();
        block_on(async {
            let long = sleep(Duration::from_millis(30));
            let short = sleep(Duration::from_millis(5));
            short.await;
            assert!(start.elapsed() < Duration::from_millis(30));
            long.await;
        });
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn dropping_a_sleep_cancels_it() {
        let armed = sleep(Duration::from_millis(2));
        drop(armed);
        // The stale entry must not confuse a slot-reusing successor.
        std::thread::sleep(Duration::from_millis(5));
        block_on(sleep(Duration::from_millis(2)));
    }

    #[test]
    fn timeout_elapses_on_stuck_future() {
        let result = block_on(timeout(
            Duration::from_millis(10),
            std::future::pending::<()>(),
        ));
        assert_eq!(result, Err(Elapsed));
    }

    #[test]
    fn timeout_passes_through_prompt_future() {
        let result = block_on(timeout(Duration::from_secs(10), async { 42 }));
        assert_eq!(result, Ok(42));
    }

    #[test]
    fn timeout_on_real_transfer() {
        use crate::prelude::*;
        use bytes::Bytes;

        let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 1)));
        block_on(async {
            // No sender: the await gives up at the deadline.
            let orphan = b
                .recv(a.local_id(), Tag(9), 64, TruncationPolicy::Error)
                .unwrap();
            let result = timeout(Duration::from_millis(10), orphan).await;
            assert_eq!(result.err(), Some(Elapsed));

            // With a sender the transfer beats any sane deadline.
            let recv = b
                .recv(a.local_id(), Tag(1), 64, TruncationPolicy::Error)
                .unwrap();
            a.send(b.local_id(), Tag(1), Bytes::from(vec![7u8; 16]))
                .unwrap()
                .await;
            let done = timeout(Duration::from_secs(5), recv).await.unwrap();
            assert_eq!(done.data.unwrap().len(), 16);
        });
    }
}
