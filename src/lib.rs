//! # push-pull-messaging
//!
//! Facade crate for the Push-Pull Messaging reproduction (Wong & Wang,
//! ICPP 1999).  It re-exports the workspace crates so examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`core`] — the sans-I/O protocol engine (Push-Zero / Push-Pull /
//!   Push-All, BTP policy, go-back-N, zero-buffer descriptors) and the
//!   typed operations layer (`SendOp`/`RecvOp` handles, completion queues,
//!   caller-owned receive buffers, wildcards, cancellation).
//! * [`sim`] — the paper's testbed as a discrete-event simulation
//!   plus the experiment harness for every figure, and the deterministic
//!   loopback binding of the operations API.
//! * [`host`] — the same engine over real shared memory
//!   (threads) and UDP sockets.
//! * [`transport`] — the [`Transport`] trait: one post / drain-completions /
//!   wait front-end implemented by every backend.
//! * [`async_transport`] — the [`AsyncTransport`] trait: `send(...).await` /
//!   `recv(...).await` futures resolved from the per-endpoint completion
//!   queue, plus the [`block_on`] and [`Driver`] executors.
//! * [`simsmp`] / [`simnet`] — the SMP-node and Fast-Ethernet substrates.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction details.

pub use ppmsg_core as core;
pub use ppmsg_host as host;
pub use ppmsg_sim as sim;
pub use simnet;
pub use simsmp;

pub mod async_transport;
pub mod transport;

pub use async_transport::{block_on, AsyncTransport, Driver, OpFuture};
pub use transport::Transport;

/// The protocol types most users need, re-exported flat.
pub mod prelude {
    pub use crate::async_transport::{block_on, AsyncTransport, Driver, OpFuture};
    pub use crate::transport::Transport;
    pub use ppmsg_core::{
        Action, BtpPolicy, Completion, Endpoint, OpId, OptFlags, ProcessId, ProtocolConfig,
        ProtocolMode, RecvBuf, RecvOp, SendOp, Status, Tag, TruncationPolicy,
    };
    pub use ppmsg_host::{HostCluster, HostEndpoint, UdpEndpoint};
    pub use ppmsg_sim::{
        ClusterConfig, LoopbackCluster, LoopbackEndpoint, Op, ProcessScript, SimCluster,
    };
}
