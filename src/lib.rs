//! # push-pull-messaging
//!
//! Facade crate for the Push-Pull Messaging reproduction (Wong & Wang,
//! ICPP 1999).  It re-exports the workspace crates so examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`core`] — the sans-I/O protocol engine (Push-Zero / Push-Pull /
//!   Push-All, BTP policy, go-back-N, zero-buffer descriptors), the typed
//!   operations layer (`SendOp`/`RecvOp` handles, completion queues,
//!   caller-owned receive buffers, wildcards, cancellation, vectored
//!   sends), and the object-safe [`RawTransport`] backend contract.
//! * [`sim`] — the paper's testbed as a discrete-event simulation
//!   plus the experiment harness for every figure, and the deterministic
//!   loopback binding of the operations API.
//! * [`host`] — the same engine over real shared memory
//!   (threads) and UDP sockets, including the many-peer
//!   [`host::Reactor`] backend (one event loop, batched
//!   `recvmmsg`/`sendmmsg` I/O, a shared timer wheel).
//! * [`transport`] — the generic [`Endpoint`]`<T: RawTransport>` front-end:
//!   blocking `send`/`recv`/`wait`, async futures, vectored sends, borrowed
//!   completion drains, and per-endpoint [`EndpointConfig`] overrides — all
//!   shared code over the backend core.  **The PR-3 `Transport` /
//!   `AsyncTransport` traits were replaced by this split; see the
//!   [migration guide](transport) in the module docs.**
//! * [`async_transport`] — the [`OpFuture`] completion future plus the
//!   [`block_on`] and [`Driver`] executors.
//! * [`executor`] — the multi-core side: the work-stealing [`Pool`]
//!   executor (per-worker FIFO deques, steal-half, shared injector) for
//!   `Send` futures; pairs with the sharded engine
//!   (`ppmsg_core::ShardedEngine`) so independent peers progress on
//!   different cores.
//! * [`timer`] — wall-clock futures over a timer wheel: [`sleep`] and
//!   [`timeout`], so an orphaned await can give up instead of waiting
//!   forever.
//! * [`coll`] — the collectives subsystem: process [`Group`]s with a
//!   reserved per-group tag space, and tree-structured broadcast / barrier /
//!   reduce / all-reduce / gather / scatter / all-to-all over any
//!   [`RawTransport`] backend, as futures and blocking calls.
//! * [`simsmp`] / [`simnet`] — the SMP-node and Fast-Ethernet substrates.
//!
//! See `README.md` for a quickstart and the `Transport` → `RawTransport` /
//! `Endpoint` migration table.

pub use ppmsg_core as core;
pub use ppmsg_host as host;
pub use ppmsg_sim as sim;
pub use simnet;
pub use simsmp;

pub mod async_transport;
pub mod coll;
pub mod executor;
pub mod timer;
pub mod transport;

pub use async_transport::{block_on, Driver, OpFuture};
pub use coll::{Group, GroupMember};
pub use executor::Pool;
pub use timer::{sleep, timeout, Elapsed, Sleep, Timeout};
pub use transport::{Endpoint, EndpointConfig, RawTransport};

/// The protocol types most users need, re-exported flat.
///
/// Note that [`Endpoint`] here is the generic transport front-end
/// ([`transport::Endpoint`]); the sans-I/O protocol engine it drives is
/// `ppmsg_core::Endpoint` (import it explicitly when
/// relaying actions by hand).
pub mod prelude {
    pub use crate::async_transport::{block_on, Driver, OpFuture};
    pub use crate::coll::{Group, GroupMember};
    pub use crate::executor::Pool;
    pub use crate::timer::{sleep, timeout, Elapsed};
    pub use crate::transport::{Endpoint, EndpointConfig, RawTransport};
    pub use ppmsg_core::{
        Action, BtpPolicy, Claim, Completion, OpId, OptFlags, ProcessId, ProtocolConfig,
        ProtocolMode, RecvBuf, RecvOp, ReliabilityMode, SendOp, Status, Tag, TruncationPolicy,
    };
    pub use ppmsg_host::{HostCluster, HostEndpoint, Reactor, ReactorEndpoint, UdpEndpoint};
    pub use ppmsg_sim::{
        ChaosCluster, ChaosConfig, ChaosEndpoint, ChaosReport, ChaosStats, ClusterConfig,
        LoopbackCluster, LoopbackEndpoint, Op, ProcessScript, SimCluster,
    };
}
