//! Binomial-tree reduction: combine every rank's contribution with a
//! user-supplied associative operator, preserving **rank order** so
//! non-commutative operators fold exactly like the sequential reference.

use super::group::GroupMember;
use bytes::Bytes;
use ppmsg_core::{Error, RawTransport, Result, Tag};
use std::future::Future;

impl<T: RawTransport> GroupMember<T> {
    /// Reduces the group's contributions to rank `root`, returning
    /// `Some(result)` there and `None` on every other rank.
    ///
    /// `combine` must be **associative** and **length-preserving** (the
    /// result of `combine(a, b)` has the same length as `a` and `b`; all
    /// ranks contribute equal-length payloads) — it need *not* be
    /// commutative: the binomial tree only ever combines a contiguous rank
    /// range with the contiguous range right of it, so the result equals
    /// the sequential left fold `combine(..combine(combine(c0, c1), c2).., cn-1)`
    /// in rank order, for any operator an MPI user could pass as a custom
    /// op.
    ///
    /// The tree is rooted at rank 0 (rooting it elsewhere would rotate the
    /// combine order, breaking non-commutative operators); for `root != 0`
    /// the result takes one extra hop from rank 0 to `root`.
    pub fn reduce<'a, F>(
        &'a self,
        root: usize,
        contribution: Bytes,
        mut combine: F,
    ) -> impl Future<Output = Result<Option<Bytes>>> + 'a
    where
        F: FnMut(Bytes, Bytes) -> Bytes + 'a,
    {
        let tag = self.coll_tag();
        async move {
            self.check_root(root)?;
            let len = contribution.len();
            let acc = self.reduce_to_zero(contribution, tag, &mut combine).await?;
            if root == 0 {
                return Ok(acc);
            }
            let rank = self.rank();
            if rank == 0 {
                self.coll_send(root, tag, acc.expect("rank 0 holds the fold"))
                    .await?;
                Ok(None)
            } else if rank == root {
                Ok(Some(self.coll_recv(0, tag, len).await?))
            } else {
                Ok(None)
            }
        }
    }

    /// Blocking flavour of [`GroupMember::reduce`].
    pub fn reduce_blocking<F>(
        &self,
        root: usize,
        contribution: Bytes,
        combine: F,
    ) -> Result<Option<Bytes>>
    where
        F: FnMut(Bytes, Bytes) -> Bytes,
    {
        crate::async_transport::block_on(self.reduce(root, contribution, combine))
    }

    /// Reduces the group's contributions and delivers the result to
    /// **every** rank: a rank-0-rooted binomial reduction followed by a
    /// binomial broadcast, each on its own tag.  The same operator contract
    /// as [`GroupMember::reduce`] applies.
    pub fn all_reduce<'a, F>(
        &'a self,
        contribution: Bytes,
        mut combine: F,
    ) -> impl Future<Output = Result<Bytes>> + 'a
    where
        F: FnMut(Bytes, Bytes) -> Bytes + 'a,
    {
        let reduce_tag = self.coll_tag();
        let bcast_tag = self.coll_tag();
        async move {
            let len = contribution.len();
            let acc = self
                .reduce_to_zero(contribution, reduce_tag, &mut combine)
                .await?;
            self.broadcast_with_tag(0, acc.unwrap_or_default(), len, bcast_tag)
                .await
        }
    }

    /// Blocking flavour of [`GroupMember::all_reduce`].
    pub fn all_reduce_blocking<F>(&self, contribution: Bytes, combine: F) -> Result<Bytes>
    where
        F: FnMut(Bytes, Bytes) -> Bytes,
    {
        crate::async_transport::block_on(self.all_reduce(contribution, combine))
    }

    /// The rank-0-rooted binomial reduction: in round `k`, every rank with
    /// bit `k` set sends its partial fold (covering the contiguous rank
    /// range `[rank, rank + 2^k)`) to `rank - 2^k` and retires; the receiver
    /// appends it to the right of its own partial — contiguity is what keeps
    /// non-commutative operators correct.  Returns `Some(fold)` on rank 0.
    pub(crate) async fn reduce_to_zero<F>(
        &self,
        contribution: Bytes,
        tag: Tag,
        combine: &mut F,
    ) -> Result<Option<Bytes>>
    where
        F: FnMut(Bytes, Bytes) -> Bytes,
    {
        let n = self.size();
        let rank = self.rank();
        let len = contribution.len();
        let mut acc = contribution;
        let mut k = 0;
        while 1usize << k < n {
            let bit = 1usize << k;
            if rank & bit != 0 {
                self.coll_send(rank - bit, tag, acc).await?;
                return Ok(None);
            }
            if rank + bit < n {
                let got = self.coll_recv(rank + bit, tag, len).await?;
                if got.len() != len {
                    return Err(Error::CollectiveMisuse {
                        what: "reduce contributions must have equal length on every rank",
                    });
                }
                acc = combine(acc, got);
                if acc.len() != len {
                    return Err(Error::CollectiveMisuse {
                        what: "reduce combine operator must preserve length",
                    });
                }
            }
            k += 1;
        }
        Ok(Some(acc))
    }
}
