//! Binomial-tree gather and scatter.  Both move whole **subtree blocks** —
//! a binomial subtree covers a contiguous rank range, so its members'
//! payloads form one contiguous region of the gathered buffer.  Gather rides
//! the vectored-send path: a relay forwards its accumulated segment list
//! without ever coalescing it in memory.

use super::group::GroupMember;
use super::tree;
use super::MAX_CHILDREN;
use bytes::Bytes;
use ppmsg_core::{Error, OpId, RawTransport, Result};
use std::future::Future;

impl<T: RawTransport> GroupMember<T> {
    /// Gathers every rank's `contribution` to rank `root`, which receives
    /// the concatenation in **rank order** (`n * len` bytes, where `len` is
    /// the group-uniform contribution length); the other ranks get `None`.
    ///
    /// Relays climb a rank-0-rooted binomial tree: each relay accumulates
    /// its subtree's blocks as a segment list and forwards them as **one
    /// vectored send** — the blocks are concatenated by the transport on the
    /// receiving side, never copied into a staging buffer on the sending
    /// side.  For `root != 0`, the result takes one extra hop from rank 0.
    pub fn gather(
        &self,
        root: usize,
        contribution: Bytes,
    ) -> impl Future<Output = Result<Option<Bytes>>> + '_ {
        let tag = self.coll_tag();
        async move {
            self.check_root(root)?;
            let n = self.size();
            let rank = self.rank();
            let len = contribution.len();
            // Climb: segments accumulate [rank, rank + covered) in order.
            let mut segments: Vec<Bytes> = Vec::with_capacity(tree::rounds(n) as usize + 1);
            segments.push(contribution);
            let mut k = 0;
            while 1usize << k < n {
                let bit = 1usize << k;
                if rank & bit != 0 {
                    let op = self.coll_post_send_vectored(rank - bit, tag, &segments)?;
                    self.coll_wait(op).await?;
                    segments.clear();
                    break;
                }
                if rank + bit < n {
                    let peer = rank + bit;
                    let block = bit.min(n - peer) * len;
                    let got = self.coll_recv(peer, tag, block).await?;
                    if got.len() != block {
                        return Err(Error::CollectiveMisuse {
                            what: "gather contributions must have equal length on every rank",
                        });
                    }
                    segments.push(got);
                }
                k += 1;
            }
            if rank == 0 {
                let mut out = Vec::with_capacity(n * len);
                for segment in &segments {
                    out.extend_from_slice(segment);
                }
                let all = Bytes::from(out);
                if root == 0 {
                    return Ok(Some(all));
                }
                self.coll_send(root, tag, all).await?;
                Ok(None)
            } else if rank == root {
                Ok(Some(self.coll_recv(0, tag, n * len).await?))
            } else {
                Ok(None)
            }
        }
    }

    /// Blocking flavour of [`GroupMember::gather`].
    pub fn gather_blocking(&self, root: usize, contribution: Bytes) -> Result<Option<Bytes>> {
        crate::async_transport::block_on(self.gather(root, contribution))
    }

    /// Scatters `root`'s buffer of `n * len` bytes across the group in rank
    /// order: every rank returns its own `len`-byte block.  The root passes
    /// the full buffer as `data`; the other ranks pass anything
    /// (conventionally `Bytes::new()`).  Like `broadcast`, **`len` must be
    /// group-uniform**.
    ///
    /// Blocks descend a rank-0-rooted binomial tree, halving at each level:
    /// every forwarded piece is a zero-copy slice of the buffer the relay
    /// received.  For `root != 0` the whole buffer takes one extra hop from
    /// `root` to rank 0 first (rank 0 then redistributes — the root's own
    /// block comes back to it through the tree).
    pub fn scatter(
        &self,
        root: usize,
        data: Bytes,
        len: usize,
    ) -> impl Future<Output = Result<Bytes>> + '_ {
        let tag = self.coll_tag();
        async move {
            self.check_root(root)?;
            let n = self.size();
            let rank = self.rank();
            if rank == root && data.len() != n * len {
                return Err(Error::CollectiveMisuse {
                    what: "scatter root must supply size() * len bytes",
                });
            }
            // Move the full buffer to the tree root (rank 0).
            let held = if rank == 0 {
                if root == 0 {
                    data
                } else {
                    let got = self.coll_recv(root, tag, n * len).await?;
                    if got.len() != n * len {
                        return Err(Error::CollectiveMisuse {
                            what: "scatter buffer shorter than the group-uniform split",
                        });
                    }
                    got
                }
            } else {
                if rank == root {
                    self.coll_send(0, tag, data).await?;
                }
                // Receive my subtree's block from my tree parent.
                let span = tree::subtree_size(rank, n);
                let got = self.coll_recv(tree::parent(rank), tag, span * len).await?;
                if got.len() != span * len {
                    return Err(Error::CollectiveMisuse {
                        what: "scatter block shorter than the group-uniform split",
                    });
                }
                got
            };
            // Forward each child its subtree's slice (zero-copy).
            let mut pending = [None::<OpId>; MAX_CHILDREN];
            let mut count = 0;
            for child in tree::children(rank, n) {
                let offset = (child - rank) * len;
                let piece = held.slice(offset..offset + tree::subtree_size(child, n) * len);
                pending[count] = Some(self.coll_post_send(child, tag, piece)?);
                count += 1;
            }
            for op in pending.iter().take(count).flatten() {
                self.coll_wait(*op).await?;
            }
            Ok(held.slice(0..len))
        }
    }

    /// Blocking flavour of [`GroupMember::scatter`].
    pub fn scatter_blocking(&self, root: usize, data: Bytes, len: usize) -> Result<Bytes> {
        crate::async_transport::block_on(self.scatter(root, data, len))
    }
}
