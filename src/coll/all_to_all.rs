//! Personalized all-to-all exchange: every rank hands a distinct block to
//! every other rank.

use super::group::GroupMember;
use bytes::Bytes;
use ppmsg_core::{Error, OpId, RawTransport, Result};
use std::future::Future;

impl<T: RawTransport> GroupMember<T> {
    /// Exchanges personalized blocks with every member: `blocks[r]` is what
    /// this rank sends to rank `r` (all blocks the same, group-uniform
    /// length; `blocks.len()` must equal the group size), and the returned
    /// vector holds what each rank sent to this one (`result[r]` from rank
    /// `r`, the own block passed through locally).
    ///
    /// All `n - 1` receives are posted up front, then the sends go out in
    /// rotation order (`rank + 1, rank + 2, ...` wrapping), so every pair
    /// exchanges simultaneously and no rank is a hotspot; the transport's
    /// push-pull flow control does the pacing.
    pub fn all_to_all(&self, blocks: &[Bytes]) -> impl Future<Output = Result<Vec<Bytes>>> + '_ {
        let tag = self.coll_tag();
        // Pin the caller's blocks (refcount bumps) so the future is
        // self-contained.
        let blocks = blocks.to_vec();
        async move {
            let n = self.size();
            let rank = self.rank();
            if blocks.len() != n {
                return Err(Error::CollectiveMisuse {
                    what: "all_to_all needs exactly one block per member",
                });
            }
            let len = blocks.first().map(Bytes::len).unwrap_or(0);
            if blocks.iter().any(|b| b.len() != len) {
                return Err(Error::CollectiveMisuse {
                    what: "all_to_all blocks must have equal, group-uniform length",
                });
            }
            let mut recvs: Vec<(usize, OpId)> = Vec::with_capacity(n - 1);
            for i in 1..n {
                let from = (rank + n - i) % n;
                recvs.push((from, self.coll_post_recv(from, tag, len)?));
            }
            let mut sends: Vec<OpId> = Vec::with_capacity(n - 1);
            for i in 1..n {
                let to = (rank + i) % n;
                sends.push(self.coll_post_send(to, tag, blocks[to].clone())?);
            }
            let mut results: Vec<Bytes> = vec![Bytes::new(); n];
            results[rank] = blocks[rank].clone();
            for (from, op) in recvs {
                let done = self.coll_wait(op).await?;
                let got = done.data.unwrap_or_default();
                if got.len() != len {
                    return Err(Error::CollectiveMisuse {
                        what: "all_to_all blocks must have equal, group-uniform length",
                    });
                }
                results[from] = got;
            }
            for op in sends {
                self.coll_wait(op).await?;
            }
            Ok(results)
        }
    }

    /// Blocking flavour of [`GroupMember::all_to_all`].
    pub fn all_to_all_blocking(&self, blocks: &[Bytes]) -> Result<Vec<Bytes>> {
        crate::async_transport::block_on(self.all_to_all(blocks))
    }
}
