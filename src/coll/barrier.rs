//! Dissemination barrier: `ceil(log2 n)` rounds of zero-byte exchanges
//! after which every rank has (transitively) heard from every other rank —
//! no rank can pass the barrier before the last rank has entered it.

use super::group::GroupMember;
use super::tree;
use bytes::Bytes;
use ppmsg_core::{RawTransport, Result};
use std::future::Future;

impl<T: RawTransport> GroupMember<T> {
    /// Synchronizes the whole group: completes only after **every** member
    /// has entered the barrier.
    ///
    /// Uses the dissemination algorithm: in round `k` each rank sends a
    /// zero-byte message to `(rank + 2^k) mod n` and waits for one from
    /// `(rank - 2^k) mod n`.  After `ceil(log2 n)` rounds, each rank's exit
    /// transitively depends on every rank's entry — the same latency as a
    /// binomial gather + broadcast, but symmetric (no root) and with one
    /// message per rank per round.
    pub fn barrier(&self) -> impl Future<Output = Result<()>> + '_ {
        let tag = self.coll_tag();
        async move {
            let n = self.size();
            for k in 0..tree::rounds(n) {
                let (to, from) = tree::dissemination_peers(self.rank(), n, k);
                // Post both before awaiting either: the send must not wait
                // for the receive, or two ranks in the same round deadlock.
                let recv = self.coll_post_recv(from, tag, 0)?;
                let send = self.coll_post_send(to, tag, Bytes::new())?;
                self.coll_wait(recv).await?;
                self.coll_wait(send).await?;
            }
            Ok(())
        }
    }

    /// Blocking flavour of [`GroupMember::barrier`] (one thread per rank on
    /// the host backends).
    pub fn barrier_blocking(&self) -> Result<()> {
        crate::async_transport::block_on(self.barrier())
    }
}
