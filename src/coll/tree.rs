//! Topology helpers for the collective algorithms: binomial trees (used by
//! broadcast, reduce, gather, scatter) and dissemination rounds (used by
//! barrier).  Everything here is pure rank arithmetic, unit-tested in
//! isolation from any transport.
//!
//! # Binomial trees
//!
//! Ranks are *virtual* (tree-relative): the caller maps between virtual and
//! absolute ranks when the tree is rooted away from rank 0 (broadcast
//! rotates; the order-sensitive collectives root at absolute 0 instead, see
//! the module docs of [`super`]).  Virtual rank 0 is the root; the parent of
//! `v != 0` is `v` with its lowest set bit cleared, and the children of `v`
//! are `v | 1 << k` for each `k` below the lowest set bit of `v` (every `k`
//! for the root).  The subtree of `v` covers the contiguous virtual range
//! `[v, min(v + 2^lsb(v), n))` — contiguity is what lets gather and scatter
//! move whole subtree blocks as single messages.

/// Number of communication rounds a collective over `n` ranks needs:
/// `ceil(log2 n)`, the binomial tree depth and the dissemination round
/// count.
#[inline]
pub(crate) fn rounds(n: usize) -> u32 {
    debug_assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

/// Parent of virtual rank `v` in the binomial tree (`v != 0`): `v` with its
/// lowest set bit cleared.
#[inline]
pub(crate) fn parent(v: usize) -> usize {
    debug_assert!(v != 0);
    v & (v - 1)
}

/// The size of the subtree rooted at virtual rank `v` in a tree of `n`
/// ranks (including `v` itself).
#[inline]
pub(crate) fn subtree_size(v: usize, n: usize) -> usize {
    debug_assert!(v < n);
    if v == 0 {
        return n;
    }
    let span = 1 << v.trailing_zeros();
    span.min(n - v)
}

/// Children of virtual rank `v` in a tree of `n` ranks, **largest subtree
/// first** (the order a pipelined broadcast should feed them in).
pub(crate) fn children(v: usize, n: usize) -> impl Iterator<Item = usize> {
    let limit = if v == 0 {
        rounds(n)
    } else {
        v.trailing_zeros()
    };
    (0..limit)
        .rev()
        .map(move |k| v | 1 << k)
        .filter(move |&c| c < n)
}

/// The dissemination peers of `rank` in round `k` (distance `2^k`): who we
/// send to and who we receive from.
#[inline]
pub(crate) fn dissemination_peers(rank: usize, n: usize, k: u32) -> (usize, usize) {
    let d = 1 << k;
    ((rank + d) % n, (rank + n - d % n) % n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_counts() {
        assert_eq!(rounds(1), 0);
        assert_eq!(rounds(2), 1);
        assert_eq!(rounds(3), 2);
        assert_eq!(rounds(4), 2);
        assert_eq!(rounds(5), 3);
        assert_eq!(rounds(16), 4);
        assert_eq!(rounds(17), 5);
    }

    #[test]
    fn every_rank_has_exactly_one_parent_edge() {
        for n in 1..=33usize {
            for v in 1..n {
                let p = parent(v);
                assert!(p < v, "parent must be older (n={n}, v={v})");
                assert!(
                    children(p, n).any(|c| c == v),
                    "child lists must mirror parent (n={n}, v={v})"
                );
            }
            // The tree spans all ranks: walking parents from any rank
            // terminates at the root.
            for mut v in 0..n {
                let mut hops = 0;
                while v != 0 {
                    v = parent(v);
                    hops += 1;
                    assert!(hops <= rounds(n), "path longer than tree depth");
                }
            }
        }
    }

    #[test]
    fn subtrees_are_contiguous_and_partition_the_ranks() {
        for n in 1..=33usize {
            for v in 0..n {
                let size = subtree_size(v, n);
                assert!(v + size <= n);
                // v's subtree = v plus its children's subtrees, contiguously.
                let mut covered = size - 1;
                for c in children(v, n) {
                    covered -= subtree_size(c, n);
                }
                assert_eq!(covered, 0, "n={n}, v={v}");
            }
            assert_eq!(subtree_size(0, n), n);
        }
    }

    #[test]
    fn children_are_ordered_largest_subtree_first() {
        let kids: Vec<usize> = children(0, 16).collect();
        assert_eq!(kids, vec![8, 4, 2, 1]);
        let kids: Vec<usize> = children(4, 16).collect();
        assert_eq!(kids, vec![6, 5]);
        let kids: Vec<usize> = children(0, 6).collect();
        assert_eq!(kids, vec![4, 2, 1]);
        assert_eq!(children(5, 6).count(), 0);
    }

    #[test]
    fn dissemination_peers_cover_every_distance() {
        let n = 5;
        for rank in 0..n {
            let mut sends = Vec::new();
            for k in 0..rounds(n) {
                let (to, from) = dissemination_peers(rank, n, k);
                assert_ne!(to, rank);
                assert_ne!(from, rank);
                sends.push(to);
            }
            sends.sort_unstable();
            sends.dedup();
            assert_eq!(sends.len(), rounds(n) as usize, "distinct send peers");
        }
    }
}
