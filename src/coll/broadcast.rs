//! Binomial-tree broadcast, with a pipelined chunked variant for large
//! payloads.

use super::group::GroupMember;
use super::tree;
use super::MAX_CHILDREN;
use bytes::Bytes;
use ppmsg_core::{Error, OpId, RawTransport, Result, Tag};
use std::future::Future;

impl<T: RawTransport> GroupMember<T> {
    /// Broadcasts `len` bytes from rank `root` to every member, returning
    /// the payload on all ranks.
    ///
    /// The root passes the payload as `data` (its length must equal `len`);
    /// the other ranks pass anything (conventionally `Bytes::new()`) — like
    /// MPI's `MPI_Bcast` count, **`len` must be the same on every rank**: it
    /// is what lets each relay derive the pipeline chunking without a
    /// metadata round-trip.
    ///
    /// Payloads up to the group's [`chunk size`](super::Group::chunk_size)
    /// travel as one message down a binomial tree rooted at `root`
    /// (`ceil(log2 n)` latency steps, every hop a zero-copy refcount of the
    /// same buffer).  Larger payloads are split into chunks that each relay
    /// forwards as soon as it arrives, so all tree levels stream
    /// concurrently and the pipeline hides the depth.
    ///
    /// ```
    /// use push_pull_messaging::prelude::*;
    /// use push_pull_messaging::coll::Group;
    /// use bytes::Bytes;
    ///
    /// let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
    /// let ids: Vec<ProcessId> = (0..3).map(|r| ProcessId::new(0, r)).collect();
    /// let group = Group::new(1, ids.clone()).unwrap();
    /// let members: Vec<_> = ids
    ///     .iter()
    ///     .map(|&id| group.bind(Endpoint::new(cluster.add_endpoint(id))).unwrap())
    ///     .collect();
    ///
    /// // One Driver runs all three ranks deterministically on one thread.
    /// let mut driver = Driver::new();
    /// for member in members {
    ///     driver.spawn(async move {
    ///         let data = if member.rank() == 0 {
    ///             Bytes::from(vec![0xAB; 64])
    ///         } else {
    ///             Bytes::new()
    ///         };
    ///         let got = member.broadcast(0, data, 64).await.unwrap();
    ///         assert_eq!(&got[..], &[0xAB; 64][..]);
    ///     });
    /// }
    /// driver.run();
    /// ```
    pub fn broadcast(
        &self,
        root: usize,
        data: Bytes,
        len: usize,
    ) -> impl Future<Output = Result<Bytes>> + '_ {
        let tag = self.coll_tag();
        async move { self.broadcast_with_tag(root, data, len, tag).await }
    }

    /// Blocking flavour of [`GroupMember::broadcast`]: drives the future on
    /// the calling thread (each rank on its own thread for the host
    /// backends; prefer the future + a `Driver` on the loopback cluster,
    /// where a lone blocking rank would wait for peers forever).
    pub fn broadcast_blocking(&self, root: usize, data: Bytes, len: usize) -> Result<Bytes> {
        crate::async_transport::block_on(self.broadcast(root, data, len))
    }

    /// The broadcast body under an externally chosen tag — shared with the
    /// dissemination phase of [`GroupMember::all_reduce`].
    pub(crate) async fn broadcast_with_tag(
        &self,
        root: usize,
        data: Bytes,
        len: usize,
        tag: Tag,
    ) -> Result<Bytes> {
        self.check_root(root)?;
        let n = self.size();
        if self.rank() == root && data.len() != len {
            return Err(Error::CollectiveMisuse {
                what: "broadcast root must supply exactly `len` bytes",
            });
        }
        if n == 1 {
            return Ok(data);
        }
        if len > self.group().chunk_size() {
            self.broadcast_chunked(root, data, len, tag).await
        } else {
            self.broadcast_plain(root, data, len, tag).await
        }
    }

    /// Single-message binomial broadcast: receive from the tree parent,
    /// forward to every child (largest subtree first), all forwards
    /// overlapped.
    async fn broadcast_plain(
        &self,
        root: usize,
        data: Bytes,
        len: usize,
        tag: Tag,
    ) -> Result<Bytes> {
        let n = self.size();
        // Virtual rank: the tree is rooted at `root` by rotation — order is
        // irrelevant for a broadcast, so no extra relay hop is needed.
        let v = (self.rank() + n - root) % n;
        let abs = |vr: usize| (vr + root) % n;
        let payload = if v == 0 {
            data
        } else {
            let got = self.coll_recv(abs(tree::parent(v)), tag, len).await?;
            if got.len() != len {
                return Err(Error::CollectiveMisuse {
                    what: "broadcast payload shorter than the group-uniform len",
                });
            }
            got
        };
        // Forwarding is a refcount bump per child, never a copy.
        let mut pending = [None::<OpId>; MAX_CHILDREN];
        let mut count = 0;
        for child in tree::children(v, n) {
            pending[count] = Some(self.coll_post_send(abs(child), tag, payload.clone())?);
            count += 1;
        }
        for op in pending.iter().take(count).flatten() {
            self.coll_wait(*op).await?;
        }
        Ok(payload)
    }

    /// Pipelined chunked broadcast: the payload is cut into
    /// [`chunk_size`](super::Group::chunk_size) pieces; every relay posts
    /// all its chunk receives up front and forwards each chunk the moment it
    /// completes, so the tree streams — chunk `i` moves through level `d+1`
    /// while chunk `i+1` is still arriving at level `d`.
    async fn broadcast_chunked(
        &self,
        root: usize,
        data: Bytes,
        len: usize,
        tag: Tag,
    ) -> Result<Bytes> {
        let n = self.size();
        let chunk = self.group().chunk_size();
        let chunks = len.div_ceil(chunk);
        let v = (self.rank() + n - root) % n;
        let abs = |vr: usize| (vr + root) % n;
        let children: Vec<usize> = tree::children(v, n).map(abs).collect();
        let mut sends: Vec<OpId> = Vec::with_capacity(children.len() * chunks);

        let payload = if v == 0 {
            for i in 0..chunks {
                let lo = i * chunk;
                // Chunks are zero-copy slices of the root buffer.
                let piece = data.slice(lo..len.min(lo + chunk));
                for &child in &children {
                    sends.push(self.coll_post_send(child, tag, piece.clone())?);
                }
            }
            data
        } else {
            let parent = abs(tree::parent(v));
            let recvs: Vec<OpId> = (0..chunks)
                .map(|_| self.coll_post_recv(parent, tag, chunk))
                .collect::<Result<_>>()?;
            let mut assembled = Vec::with_capacity(len);
            for (i, op) in recvs.into_iter().enumerate() {
                let done = self.coll_wait(op).await?;
                let piece = done.data.unwrap_or_default();
                let lo = i * chunk;
                if piece.len() != len.min(lo + chunk) - lo {
                    return Err(Error::CollectiveMisuse {
                        what: "broadcast chunk shorter than the group-uniform split",
                    });
                }
                // Forward before touching the next chunk: the pipeline.
                for &child in &children {
                    sends.push(self.coll_post_send(child, tag, piece.clone())?);
                }
                assembled.extend_from_slice(&piece);
            }
            Bytes::from(assembled)
        };
        for op in sends {
            self.coll_wait(op).await?;
        }
        Ok(payload)
    }
}
