//! The collectives subsystem: process groups and multi-party operations —
//! broadcast, barrier, reduce / all-reduce, gather / scatter, all-to-all —
//! implemented **once**, generically over the transport front-end's
//! [`Endpoint`](crate::transport::Endpoint)`<T:`[`RawTransport`]`>`, so the
//! intranode shared-memory fabric, the UDP internode backend, and the
//! deterministic loopback cluster all get them from the same code.
//!
//! [`RawTransport`]: ppmsg_core::RawTransport
//!
//! # Groups, ranks, and the reserved tag space
//!
//! A [`Group`] is an ordered member set: a member's index is its **rank**,
//! and every collective is defined in rank order.  Each rank binds its own
//! endpoint with [`Group::bind`], obtaining the [`GroupMember`] handle that
//! collective operations are invoked on.  All members must invoke the same
//! collectives in the same order (the MPI rule); each invocation consumes
//! one slot of the member's collective sequence, from which the operation's
//! wire tag is derived inside the **reserved tag space**
//! ([`ppmsg_core::COLLECTIVE_TAG_BIT`]): user point-to-point traffic cannot
//! use those tags (the front-end rejects them), and wildcard (`ANY_TAG`)
//! receives never match them — collective traffic and application traffic
//! coexist on one endpoint without stealing each other's messages.  Groups
//! with different ids occupy disjoint tag slices and may run concurrently.
//!
//! # Algorithms
//!
//! Shapes follow the paper's cluster model — message count and latency
//! depth over `n` ranks, message sizes for payload `m`:
//!
//! | operation | algorithm | latency steps | notes |
//! |---|---|---|---|
//! | [`broadcast`](GroupMember::broadcast) | binomial tree, rooted at `root` by rotation | `ceil(log2 n)` | every hop zero-copy (refcount) |
//! | — large payloads | pipelined chunked tree | `ceil(log2 n) + m/chunk` overlapped | relays forward each chunk on arrival |
//! | [`barrier`](GroupMember::barrier) | dissemination | `ceil(log2 n)` | symmetric, zero-byte messages |
//! | [`reduce`](GroupMember::reduce) | binomial tree at rank 0 (+1 hop if `root != 0`) | `ceil(log2 n)` | rank-ordered: non-commutative ops fold left |
//! | [`all_reduce`](GroupMember::all_reduce) | reduce-to-0 + broadcast | `2 ceil(log2 n)` | |
//! | [`gather`](GroupMember::gather) | binomial tree at rank 0 (+1 hop if `root != 0`) | `ceil(log2 n)` | relays forward **vectored** segment lists |
//! | [`scatter`](GroupMember::scatter) | binomial tree at rank 0 (+1 hop if `root != 0`) | `ceil(log2 n)` | every block a zero-copy slice |
//! | [`all_to_all`](GroupMember::all_to_all) | pairwise rotation | `n - 1` overlapped | all receives pre-posted |
//!
//! Every operation is available as a future (driveable by
//! [`Driver`](crate::async_transport::Driver) — on the loopback cluster a
//! whole group runs deterministically on one thread) and as a `*_blocking`
//! call (one thread per rank on the host backends).
//!
//! ```
//! use push_pull_messaging::prelude::*;
//! use push_pull_messaging::coll::Group;
//! use bytes::Bytes;
//!
//! let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
//! let ids: Vec<ProcessId> = (0..4).map(|r| ProcessId::new(0, r)).collect();
//! let group = Group::new(0, ids.clone()).unwrap();
//!
//! let mut driver = Driver::new();
//! for &id in &ids {
//!     let member = group
//!         .bind(Endpoint::new(cluster.add_endpoint(id)))
//!         .unwrap();
//!     driver.spawn(async move {
//!         let mine = Bytes::from(vec![member.rank() as u8; 4]);
//!         // Rank-ordered concatenation-style reduce (associative, not
//!         // commutative): byte-wise (2a + b) would NOT be usable, but
//!         // element-wise max is — combine sees contiguous rank ranges.
//!         let max = member
//!             .all_reduce(mine, |a, b| if a[0] >= b[0] { a } else { b })
//!             .await
//!             .unwrap();
//!         assert_eq!(&max[..], &[3u8; 4][..]);
//!         member.barrier().await.unwrap();
//!     });
//! }
//! driver.run();
//! ```

mod all_to_all;
mod barrier;
mod broadcast;
mod gather;
mod group;
mod reduce;
mod tree;

pub use group::{Group, GroupMember, DEFAULT_CHUNK_SIZE};

/// Upper bound on a binomial-tree node's child count (one child per bit of
/// the rank space) — lets the small-fan-out collectives keep their pending
/// operation handles in a stack array instead of a heap `Vec`.
pub(crate) const MAX_CHILDREN: usize = usize::BITS as usize;
