//! Process groups: the ordered member set every collective operation runs
//! over, and the per-rank [`GroupMember`] handle that binds a group to one
//! endpoint.

use crate::transport::Endpoint;
use bytes::Bytes;
use ppmsg_core::{
    Error, OpId, ProcessId, RawTransport, Result, Tag, TruncationPolicy, COLLECTIVE_TAG_BIT,
};
use std::cell::Cell;
use std::sync::Arc;

/// Default pipeline chunk size for large broadcasts (see
/// [`Group::with_chunk_size`]): payloads above this are split into
/// `chunk_size` pieces relayed down the tree as they arrive.
pub const DEFAULT_CHUNK_SIZE: usize = 32 * 1024;

#[derive(Debug)]
struct GroupInner {
    id: u16,
    members: Box<[ProcessId]>,
    chunk_size: usize,
}

/// An ordered set of processes that perform collective operations together —
/// the communicator of the collectives subsystem.
///
/// A process's **rank** is its index in the member list; every collective is
/// defined in rank order (a non-commutative reduce combines contributions as
/// the left fold over ranks `0..n`).  The group's `id` carves out a slice of
/// the reserved collective tag space ([`COLLECTIVE_TAG_BIT`]): two groups
/// with different ids can run collectives over the same endpoints
/// concurrently without their traffic mixing, and no group's traffic is ever
/// visible to user point-to-point receives — wildcard (`ANY_TAG`) receives
/// skip the reserved space entirely.
///
/// `Group` is cheaply cloneable (shared immutable state); every rank
/// typically holds a clone and binds its own endpoint with [`Group::bind`].
///
/// ```
/// use push_pull_messaging::prelude::*;
/// use push_pull_messaging::coll::Group;
/// use bytes::Bytes;
///
/// let cluster = LoopbackCluster::new(ProtocolConfig::paper_intranode());
/// let ids: Vec<ProcessId> = (0..4).map(|r| ProcessId::new(0, r)).collect();
/// let group = Group::new(7, ids.clone()).unwrap();
/// assert_eq!(group.size(), 4);
/// assert_eq!(group.rank_of(ids[2]), Some(2));
///
/// // Each rank binds its own endpoint; the binding checks membership.
/// let member0 = group
///     .bind(Endpoint::new(cluster.add_endpoint(ids[0])))
///     .unwrap();
/// assert_eq!(member0.rank(), 0);
/// # let _ = member0;
/// # let _ = Bytes::new();
/// ```
#[derive(Debug, Clone)]
pub struct Group {
    inner: Arc<GroupInner>,
}

impl Group {
    /// Largest usable group id.  The derived-tag layout is `bit 31`
    /// (reserved flag) `| id << 8 | sequence slot`, so ids occupy bits
    /// 8..23 and bits 24..30 are **always zero** — that zero gap is what
    /// keeps every derived tag distinct from the all-ones `ANY_TAG`
    /// sentinel, for any id.  The cap merely keeps ids to 15 bits, holding
    /// the top bit of the id field (and the value `0x7FFF`) in reserve for
    /// future tag-space subdivision.
    pub const MAX_GROUP_ID: u16 = 0x7FFE;

    /// Creates a group from an ordered member list.  Every member must be a
    /// distinct, concrete process id; `id` must be at most
    /// [`Group::MAX_GROUP_ID`]; the list must not be empty.  All ranks must
    /// construct the group with the **same id and member order** — the order
    /// *is* the rank assignment.
    pub fn new(id: u16, members: impl Into<Vec<ProcessId>>) -> Result<Group> {
        let members: Vec<ProcessId> = members.into();
        if id > Self::MAX_GROUP_ID {
            return Err(Error::CollectiveMisuse {
                what: "group id exceeds MAX_GROUP_ID",
            });
        }
        if members.is_empty() {
            return Err(Error::CollectiveMisuse {
                what: "a group needs at least one member",
            });
        }
        for (i, m) in members.iter().enumerate() {
            if m.is_any_source() {
                return Err(Error::CollectiveMisuse {
                    what: "wildcard process ids cannot be group members",
                });
            }
            if members[..i].contains(m) {
                return Err(Error::CollectiveMisuse {
                    what: "duplicate member in group",
                });
            }
        }
        Ok(Group {
            inner: Arc::new(GroupInner {
                id,
                members: members.into_boxed_slice(),
                chunk_size: DEFAULT_CHUNK_SIZE,
            }),
        })
    }

    /// Returns a copy of this group with a different broadcast pipeline
    /// chunk size (minimum 1).  Like the member order, the chunk size is
    /// part of the collective contract: all ranks must use the same value.
    pub fn with_chunk_size(&self, chunk_size: usize) -> Group {
        Group {
            inner: Arc::new(GroupInner {
                id: self.inner.id,
                members: self.inner.members.clone(),
                chunk_size: chunk_size.max(1),
            }),
        }
    }

    /// The group id (the tag-space slice this group communicates in).
    pub fn id(&self) -> u16 {
        self.inner.id
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.inner.members.len()
    }

    /// The ordered member list; a member's index is its rank.
    pub fn members(&self) -> &[ProcessId] {
        &self.inner.members
    }

    /// The rank of `id` within this group, if it is a member.
    pub fn rank_of(&self, id: ProcessId) -> Option<usize> {
        self.inner.members.iter().position(|&m| m == id)
    }

    /// The broadcast pipeline chunk size (see [`Group::with_chunk_size`]).
    pub fn chunk_size(&self) -> usize {
        self.inner.chunk_size
    }

    /// Binds `endpoint` to this group, producing the [`GroupMember`] handle
    /// collective operations are invoked on.  Fails if the endpoint's
    /// process id is not in the member list.
    pub fn bind<T: RawTransport>(&self, endpoint: Endpoint<T>) -> Result<GroupMember<T>> {
        let Some(rank) = self.rank_of(endpoint.local_id()) else {
            return Err(Error::CollectiveMisuse {
                what: "endpoint is not a member of the group",
            });
        };
        Ok(GroupMember {
            group: self.clone(),
            rank,
            endpoint,
            next_seq: Cell::new(0),
        })
    }
}

/// One rank's handle on a [`Group`]: the object collective operations are
/// invoked on.
///
/// Each collective call consumes one slot of the member's cyclic collective
/// sequence, which (together with the group id) derives the reserved tag the
/// operation communicates under.  For the tags to line up, **every member
/// must invoke the same collectives in the same order** — the usual MPI
/// rule.  Consequently a `GroupMember` is not `Clone`: one handle per
/// (group, endpoint) pair keeps the sequence consistent.  Collectives on
/// *different* groups (different ids) may interleave freely, as may ordinary
/// point-to-point traffic on the same endpoint.
///
/// The sequence cycles through [`GroupMember::SEQ_SLOTS`] tag slots, so a
/// long-lived group reuses a bounded tag set (the engine's per-`(src, tag)`
/// matching state stays bounded too, however many collectives ever run); the
/// corresponding contract is that no more than `SEQ_SLOTS` collectives of
/// one group may be simultaneously in flight per member — far beyond any
/// sane overlap, since each one pins buffers and operations.
///
/// Every collective comes in two flavours: a future (driveable by
/// [`Driver`](crate::async_transport::Driver) or any executor, so one thread
/// can run many ranks deterministically on the loopback cluster) and a
/// `*_blocking` convenience that drives the future on the calling thread.
///
/// # Errors are not recoverable within the group
///
/// A collective that returns an error (a contract violation such as
/// mismatched lengths, a cancelled operation, a transport failure) may
/// leave reserved-tag messages of the failed operation buffered at some
/// members, and the facade deliberately gives applications no way to
/// receive reserved tags — a later collective whose cyclic tag slot comes
/// back around could otherwise silently match the stale message.  Treat a
/// collective error as fatal for the group: drop every member handle and
/// re-bind under a **fresh group id**, whose tag slice is untouched.
#[derive(Debug)]
pub struct GroupMember<T: RawTransport> {
    group: Group,
    rank: usize,
    endpoint: Endpoint<T>,
    next_seq: Cell<u8>,
}

impl<T: RawTransport> GroupMember<T> {
    /// Number of distinct tag slots a member's collective sequence cycles
    /// through — the bound on how many collectives of one group may overlap
    /// in flight per member.
    pub const SEQ_SLOTS: usize = 64;

    /// The group this member belongs to.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// This member's rank (its index in [`Group::members`]).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The bound endpoint (point-to-point traffic stays fully usable next
    /// to collectives).
    pub fn endpoint(&self) -> &Endpoint<T> {
        &self.endpoint
    }

    /// Unbinds, handing the endpoint back.
    pub fn into_endpoint(self) -> Endpoint<T> {
        self.endpoint
    }

    /// Number of members (shorthand for `self.group().size()`).
    #[inline]
    pub(crate) fn size(&self) -> usize {
        self.group.size()
    }

    /// The process id of `rank`.
    #[inline]
    pub(crate) fn peer(&self, rank: usize) -> ProcessId {
        self.group.inner.members[rank]
    }

    /// Derives the reserved tag of the next collective operation and
    /// advances the cyclic sequence.  Called exactly once per collective,
    /// **at invocation** (not at first poll), so the tag order matches the
    /// call order even when the returned futures are polled out of order.
    /// Layout: the reserved bit, then the 15-bit group id, then the 8-bit
    /// sequence slot — a bounded tag set per group, reused forever.
    #[inline]
    pub(crate) fn coll_tag(&self) -> Tag {
        let seq = self.next_seq.get();
        self.next_seq.set((seq + 1) % Self::SEQ_SLOTS as u8);
        Tag(COLLECTIVE_TAG_BIT | (self.group.id() as u32) << 8 | seq as u32)
    }

    /// Validates a root rank.
    #[inline]
    pub(crate) fn check_root(&self, root: usize) -> Result<()> {
        if root >= self.size() {
            return Err(Error::CollectiveMisuse {
                what: "root rank out of range",
            });
        }
        Ok(())
    }

    /// Posts a collective send to `rank` and awaits its completion.  Posting
    /// goes through the raw backend: the facade's posting API rejects
    /// reserved tags, which is exactly what collective traffic uses.
    pub(crate) async fn coll_send(&self, rank: usize, tag: Tag, data: Bytes) -> Result<()> {
        let op = self.endpoint.raw().post_send(self.peer(rank), tag, data)?;
        check(self.endpoint.future(OpId::Send(op)).await).map(|_| ())
    }

    /// Posts a collective send without awaiting it (the caller collects the
    /// handle and awaits later, overlapping several children).
    pub(crate) fn coll_post_send(&self, rank: usize, tag: Tag, data: Bytes) -> Result<OpId> {
        Ok(OpId::Send(self.endpoint.raw().post_send(
            self.peer(rank),
            tag,
            data,
        )?))
    }

    /// Vectored flavour of [`GroupMember::coll_post_send`].
    pub(crate) fn coll_post_send_vectored(
        &self,
        rank: usize,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<OpId> {
        Ok(OpId::Send(self.endpoint.raw().post_send_vectored(
            self.peer(rank),
            tag,
            segments,
        )?))
    }

    /// Posts a collective receive from `rank` without awaiting it.
    pub(crate) fn coll_post_recv(&self, rank: usize, tag: Tag, capacity: usize) -> Result<OpId> {
        Ok(OpId::Recv(self.endpoint.raw().post_recv(
            self.peer(rank),
            tag,
            capacity,
            TruncationPolicy::Error,
        )?))
    }

    /// Posts a collective receive from `rank` and awaits the message.
    pub(crate) async fn coll_recv(&self, rank: usize, tag: Tag, capacity: usize) -> Result<Bytes> {
        let op = self.coll_post_recv(rank, tag, capacity)?;
        let done = check(self.endpoint.future(op).await)?;
        Ok(done.data.unwrap_or_default())
    }

    /// Awaits a previously posted collective operation.
    pub(crate) async fn coll_wait(&self, op: OpId) -> Result<ppmsg_core::Completion> {
        check(self.endpoint.future(op).await)
    }
}

/// Maps a completion's status onto the collective's `Result`: anything but
/// `Ok` aborts the operation with the underlying error.
pub(crate) fn check(completion: ppmsg_core::Completion) -> Result<ppmsg_core::Completion> {
    use ppmsg_core::Status;
    match completion.status {
        Status::Ok => Ok(completion),
        Status::Truncated { message_len } => Err(Error::ReceiveTooSmall {
            posted: completion.len,
            incoming: message_len,
        }),
        Status::Cancelled => Err(Error::CollectiveMisuse {
            what: "a collective operation was cancelled mid-flight",
        }),
        Status::Error(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::ANY_SOURCE;

    fn ids(n: u32) -> Vec<ProcessId> {
        (0..n).map(|r| ProcessId::new(0, r)).collect()
    }

    #[test]
    fn group_validation() {
        assert!(Group::new(0, ids(4)).is_ok());
        assert!(Group::new(Group::MAX_GROUP_ID, ids(1)).is_ok());
        assert!(matches!(
            Group::new(Group::MAX_GROUP_ID + 1, ids(2)),
            Err(Error::CollectiveMisuse { .. })
        ));
        assert!(matches!(
            Group::new(0, Vec::new()),
            Err(Error::CollectiveMisuse { .. })
        ));
        let mut dup = ids(3);
        dup.push(dup[1]);
        assert!(matches!(
            Group::new(0, dup),
            Err(Error::CollectiveMisuse { .. })
        ));
        assert!(matches!(
            Group::new(0, vec![ANY_SOURCE]),
            Err(Error::CollectiveMisuse { .. })
        ));
    }

    #[test]
    fn ranks_follow_member_order() {
        let members = vec![
            ProcessId::new(1, 0),
            ProcessId::new(0, 0),
            ProcessId::new(0, 1),
        ];
        let group = Group::new(3, members.clone()).unwrap();
        for (rank, id) in members.iter().enumerate() {
            assert_eq!(group.rank_of(*id), Some(rank));
        }
        assert_eq!(group.rank_of(ProcessId::new(9, 9)), None);
        assert_eq!(group.members(), &members[..]);
    }

    #[test]
    fn derived_tags_are_reserved_and_never_any_tag() {
        use ppmsg_core::ANY_TAG;
        // Even the worst-case id/seq combination stays clear of the
        // sentinel.
        let tag = Tag(COLLECTIVE_TAG_BIT | (Group::MAX_GROUP_ID as u32) << 8 | 0xFF);
        assert!(tag.is_reserved());
        assert_ne!(tag, ANY_TAG);
    }
}
