//! Self-tests for the bounded model checker: known-good protocols must pass
//! exhaustively, and known-bad ones must be caught within the preemption
//! bound.  These are the "teeth for the teeth" — if the checker stops
//! detecting any of these canonical bugs, this suite fails.
#![cfg(ppmsg_check)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ppmsg_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use ppmsg_check::sync::{Condvar, Mutex};
use ppmsg_check::{thread, Model};

fn expect_caught<F: Fn() + Send + Sync + 'static>(model: Model, f: F, needle: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| model.check(f)));
    let payload = match result {
        Ok(stats) => panic!(
            "model checker missed the bug (explored {} executions clean)",
            stats.executions
        ),
        Err(p) => p,
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains(needle),
        "checker reported a failure but not the expected one; wanted `{needle}`, got:\n{msg}"
    );
}

#[test]
fn atomic_counter_passes() {
    let stats = Model::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let a = {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
            })
        };
        let b = {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
            })
        };
        a.join();
        b.join();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(
        stats.executions > 1,
        "two racing threads must produce more than one schedule"
    );
}

#[test]
fn racy_read_modify_write_caught() {
    // Non-atomic increment (load; store) — a lost update exists and must be
    // found within one preemption.
    expect_caught(
        Model::new(),
        || {
            let n = Arc::new(AtomicUsize::new(0));
            let mk = |n: Arc<AtomicUsize>| {
                thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            };
            let a = mk(Arc::clone(&n));
            let b = mk(Arc::clone(&n));
            a.join();
            b.join();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        },
        "lost update",
    );
}

/// Dekker-style two-flag mutual exclusion: each thread raises its flag, then
/// checks the other's.  With SeqCst both can *refrain*, but both can never
/// *enter*.
fn dekker(ordering: Ordering) -> impl Fn() + Send + Sync + 'static {
    move || {
        let flags = Arc::new((AtomicUsize::new(0), AtomicUsize::new(0)));
        let in_crit = Arc::new(AtomicUsize::new(0));
        let spawn_side = |flags: Arc<(AtomicUsize, AtomicUsize)>,
                          in_crit: Arc<AtomicUsize>,
                          mine_first: bool| {
            thread::spawn(move || {
                let (mine, theirs) = if mine_first {
                    (&flags.0, &flags.1)
                } else {
                    (&flags.1, &flags.0)
                };
                mine.store(1, ordering);
                if theirs.load(ordering) == 0 {
                    let overlap = in_crit.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(overlap, 0, "mutual exclusion violated");
                    in_crit.fetch_sub(1, Ordering::SeqCst);
                }
            })
        };
        let a = spawn_side(Arc::clone(&flags), Arc::clone(&in_crit), true);
        let b = spawn_side(Arc::clone(&flags), Arc::clone(&in_crit), false);
        a.join();
        b.join();
    }
}

#[test]
fn dekker_seqcst_passes() {
    let stats = Model::new().check(dekker(Ordering::SeqCst));
    assert!(stats.executions > 1);
}

#[test]
fn dekker_relaxed_caught_via_store_buffer() {
    // With Relaxed flags both stores can sit in store buffers while both
    // loads read 0 — the classic TSO reordering.  This is exactly the bug
    // class the mailbox sabotage variants exercise.
    expect_caught(
        Model::new(),
        dekker(Ordering::Relaxed),
        "mutual exclusion violated",
    );
}

#[test]
fn ab_ba_deadlock_caught() {
    expect_caught(
        Model::new(),
        || {
            let a = Arc::new(Mutex::new("self.a", ()));
            let b = Arc::new(Mutex::new("self.b", ()));
            let t1 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            let t2 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _gb = b.lock();
                    let _ga = a.lock();
                })
            };
            t1.join();
            t2.join();
        },
        "deadlock",
    );
}

struct FlagAndCv {
    flag: AtomicBool,
    m: Mutex<()>,
    cv: Condvar,
}

#[test]
fn lost_wakeup_caught() {
    // Producer flips the flag and notifies WITHOUT holding the mutex: the
    // consumer can check the flag, get preempted before parking, miss the
    // notify, and sleep forever.
    expect_caught(
        Model::new(),
        || {
            let s = Arc::new(FlagAndCv {
                flag: AtomicBool::new(false),
                m: Mutex::new("self.park", ()),
                cv: Condvar::new(),
            });
            let producer = {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    s.flag.store(true, Ordering::SeqCst);
                    s.cv.notify_one();
                })
            };
            let mut g = s.m.lock();
            while !s.flag.load(Ordering::SeqCst) {
                g = s.cv.wait(g);
            }
            drop(g);
            producer.join();
        },
        "deadlock",
    );
}

#[test]
fn guarded_wakeup_passes() {
    // Same protocol with the store+notify under the mutex: no interleaving
    // loses the wake-up, and the checker proves it.
    let stats = Model::new().check(|| {
        let s = Arc::new(FlagAndCv {
            flag: AtomicBool::new(false),
            m: Mutex::new("self.park2", ()),
            cv: Condvar::new(),
        });
        let producer = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                let _g = s.m.lock();
                s.flag.store(true, Ordering::SeqCst);
                s.cv.notify_one();
            })
        };
        let mut g = s.m.lock();
        while !s.flag.load(Ordering::SeqCst) {
            g = s.cv.wait(g);
        }
        drop(g);
        producer.join();
    });
    assert!(stats.executions > 1);
}

#[test]
fn spurious_wakeup_injected() {
    // A wait that does NOT re-check its predicate is broken under spurious
    // wake-ups; the model injects one and catches the assertion.
    expect_caught(
        Model {
            spurious_budget: 1,
            ..Model::new()
        },
        || {
            let s = Arc::new(FlagAndCv {
                flag: AtomicBool::new(false),
                m: Mutex::new("self.spur", ()),
                cv: Condvar::new(),
            });
            let producer = {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let _g = s.m.lock();
                    s.flag.store(true, Ordering::SeqCst);
                    s.cv.notify_one();
                })
            };
            let g = s.m.lock();
            if !s.flag.load(Ordering::SeqCst) {
                let g = s.cv.wait(g);
                // BUG: single un-looped wait.
                assert!(s.flag.load(Ordering::SeqCst), "woke without predicate");
                drop(g);
            } else {
                drop(g);
            }
            producer.join();
        },
        "woke without predicate",
    );
}

#[test]
fn spurious_tolerant_loop_passes() {
    // The canonical while-loop wait survives injected spurious wake-ups.
    let stats = Model {
        spurious_budget: 2,
        ..Model::new()
    }
    .check(|| {
        let s = Arc::new(FlagAndCv {
            flag: AtomicBool::new(false),
            m: Mutex::new("self.spur2", ()),
            cv: Condvar::new(),
        });
        let producer = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                let _g = s.m.lock();
                s.flag.store(true, Ordering::SeqCst);
                s.cv.notify_one();
            })
        };
        let mut g = s.m.lock();
        while !s.flag.load(Ordering::SeqCst) {
            g = s.cv.wait(g);
        }
        drop(g);
        producer.join();
    });
    assert!(stats.executions > 1);
}

#[test]
fn state_hash_prunes() {
    // Three independent incrementers explode combinatorially; state hashing
    // must collapse equivalent orders.
    let stats = Model::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 3);
    });
    assert!(stats.pruned > 0, "expected state-hash pruning to trigger");
}
