//! Self-tests for the lockdep lock-order analyzer.  Lockdep is active in
//! `debug_assertions` builds (release builds compile the wrapper down to a
//! plain mutex), so the teeth tests only run in debug.
//!
//! Kept in a dedicated test binary: a deliberately provoked cycle leaves its
//! edges in the global order graph, and the class names used here must not
//! collide with any production class.
#![cfg(debug_assertions)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use ppmsg_check::lockdep;
use ppmsg_check::sync::{Condvar, Mutex};

fn expect_panic(f: impl FnOnce(), needles: &[&str]) -> String {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a lockdep panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    for needle in needles {
        assert!(
            msg.contains(needle),
            "lockdep panic missing `{needle}`:\n{msg}"
        );
    }
    msg
}

#[test]
fn consistent_order_is_silent() {
    let a = Mutex::new("ld.ok.outer", 0u32);
    let b = Mutex::new("ld.ok.inner", 0u32);
    for _ in 0..3 {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
    assert_eq!(lockdep::held_count(), 0);
}

#[test]
fn inverted_order_panics_with_both_class_names() {
    let a = Mutex::new("ld.cycle.first", 0u32);
    let b = Mutex::new("ld.cycle.second", 0u32);
    {
        let ga = a.lock();
        let _gb = b.lock();
        drop(ga);
    }
    expect_panic(
        || {
            let _gb = b.lock();
            let _ga = a.lock();
        },
        &["lock-order cycle", "ld.cycle.first", "ld.cycle.second"],
    );
    // The failed acquisition must not leak a held entry.
    assert_eq!(lockdep::held_count(), 0);
}

#[test]
fn three_lock_cycle_is_found() {
    let a = Mutex::new("ld.tri.a", ());
    let b = Mutex::new("ld.tri.b", ());
    let c = Mutex::new("ld.tri.c", ());
    {
        let ga = a.lock();
        let _gb = b.lock();
        drop(ga);
    }
    {
        let gb = b.lock();
        let _gc = c.lock();
        drop(gb);
    }
    expect_panic(
        || {
            let _gc = c.lock();
            let _ga = a.lock();
        },
        &["lock-order cycle", "ld.tri.a", "ld.tri.c"],
    );
}

#[test]
fn same_class_nesting_panics() {
    let a = Mutex::new("ld.same.class", ());
    let b = Mutex::new("ld.same.class", ());
    expect_panic(
        || {
            let _ga = a.lock();
            let _gb = b.lock();
        },
        &["same class", "ld.same.class"],
    );
}

#[test]
fn parking_with_foreign_lock_panics() {
    let park = Mutex::new("ld.park.own", false);
    let other = Mutex::new("ld.park.other", ());
    let cv = Condvar::new();
    expect_panic(
        || {
            let _go = other.lock();
            let g = park.lock();
            let _g = cv.wait(g);
        },
        &["parking", "ld.park.own", "ld.park.other"],
    );
}

#[test]
fn assert_no_locks_held_fires() {
    let m = Mutex::new("ld.publish.guard", ());
    lockdep::assert_no_locks_held("test-publish");
    expect_panic(
        || {
            let _g = m.lock();
            lockdep::assert_no_locks_held("test-publish");
        },
        &["test-publish", "ld.publish.guard"],
    );
}

#[test]
fn trylock_adds_no_edges() {
    // try_lock in the "wrong" order must not poison the graph: it cannot
    // block, so no deadlock potential exists.
    let a = Mutex::new("ld.try.a", ());
    let b = Mutex::new("ld.try.b", ());
    {
        let ga = a.lock();
        let _gb = b.lock();
        drop(ga);
    }
    {
        let gb = b.lock();
        let _ga = a.try_lock().expect("uncontended");
        drop(gb);
    }
    // And the straight order still works afterwards.
    let ga = a.lock();
    let _gb = b.lock();
    drop(ga);
}
