//! Bounded model checker: deterministic schedule exploration over real OS
//! threads.
//!
//! # How it works
//!
//! Every synchronization operation performed through the [`crate::sync`] shims
//! is a *yield point*.  Exactly one controlled thread runs at a time; at each
//! yield point the scheduler picks the next transition:
//!
//! * `Run(t)` — let thread `t` execute its next operation,
//! * `Flush(t)` — flush thread `t`'s store buffer to shared memory,
//! * `Spurious(t)` — spuriously wake thread `t` out of a condvar wait
//!   (enabled only when the model is configured with a spurious-wake budget).
//!
//! The checker performs a depth-first search over these decisions using a
//! replayable decision trail: each execution follows the recorded prefix, then
//! takes default choices, recording every branch point it passes.  Backtracking
//! advances the deepest unexhausted decision.  Choosing anything other than
//! "continue the current runnable thread" consumes one unit of the preemption
//! bound; once the bound is exhausted the current thread runs without further
//! branching, which keeps the state space tractable (most concurrency bugs are
//! exposed by very few preemptions — see CHESS).
//!
//! A fingerprint of the full model state (thread statuses and op histories,
//! shared atomic values, store buffers, lock/condvar queues, preemptions used)
//! is taken at every branch point; once a decision node's subtree has been
//! fully explored its fingerprint enters a "done" set, and any later path that
//! reaches an identical state is pruned.
//!
//! # Memory model
//!
//! `SeqCst` operations and all read-modify-writes act directly on the shared
//! value (RMWs flush the executing thread's buffer first).  Non-`SeqCst`
//! stores are buffered per thread per address with store-to-load forwarding;
//! buffers flush on a later `SeqCst` operation by the same thread or when the
//! scheduler takes an explicit `Flush` transition.  This is a TSO-style
//! approximation: it is weaker than `SeqCst` (so classic two-flag handshake
//! bugs are found) while remaining cheap to explore.
//!
//! # Failure reporting
//!
//! Deadlocks (no runnable thread while some thread is unfinished), harness
//! panics (assertion failures), and step-budget livelocks abort the run and
//! surface through a panic in [`Model::check`] carrying the interleaving
//! trace.

/// Configuration for one bounded model-checking run.
#[derive(Debug, Clone)]
pub struct Model {
    /// Maximum number of scheduling decisions that deviate from "keep running
    /// the current thread" per execution.
    pub preemption_bound: usize,
    /// Hard cap on explored executions; exceeding it fails the check loudly
    /// rather than burning CI time.
    pub max_executions: usize,
    /// Hard cap on transitions within a single execution (livelock guard).
    pub max_steps: usize,
    /// Number of spurious condvar wake-ups the scheduler may inject per
    /// execution.  Keep at 0 when checking for lost-wakeup deadlocks: a
    /// spurious wake would rescue the very hang being checked for.
    pub spurious_budget: usize,
}

impl Default for Model {
    fn default() -> Self {
        Model {
            preemption_bound: 2,
            max_executions: 400_000,
            max_steps: 4_000,
            spurious_budget: 0,
        }
    }
}

/// Exploration statistics returned by a successful [`Model::check`] run.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    /// Complete executions explored.
    pub executions: u64,
    /// Total scheduler transitions taken across all executions.
    pub transitions: u64,
    /// Branch points skipped because an identical state had already been
    /// fully explored.
    pub pruned: u64,
}

impl Model {
    /// A model with the default bounds (preemption bound 2, no spurious
    /// wake-ups).
    pub fn new() -> Self {
        Self::default()
    }

    /// Exhaustively run `f` under every schedule within the configured
    /// bounds.  Panics with the failing interleaving trace on deadlock,
    /// harness panic, or livelock.
    ///
    /// Without `--cfg ppmsg_check` this degenerates to running `f` once, so
    /// harness code stays compilable (and trivially green) in normal builds.
    pub fn check<F>(&self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        #[cfg(ppmsg_check)]
        {
            engine::explore(self, std::sync::Arc::new(f))
        }
        #[cfg(not(ppmsg_check))]
        {
            f();
            Stats {
                executions: 1,
                transitions: 0,
                pruned: 0,
            }
        }
    }
}

#[cfg(ppmsg_check)]
pub(crate) use engine::{
    active, model_cv_notify, model_cv_wait_begin, model_cv_wait_finish, model_join, model_lock,
    model_rmw, model_spawn, model_try_lock, model_unlock, model_volatile_load,
    model_volatile_store, Tid,
};

#[cfg(ppmsg_check)]
mod engine {
    use super::{Model, Stats};
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

    pub(crate) type Tid = usize;

    /// Panic payload used to unwind controlled threads when a failure has
    /// already been recorded; never reported as a bug itself.
    struct Abort;

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    enum Transition {
        Run(Tid),
        Flush(Tid),
        Spurious(Tid),
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    enum Status {
        Runnable,
        BlockedLock(u32),
        BlockedCv(u32),
        BlockedJoin(Tid),
        Finished,
    }

    struct ThreadSt {
        status: Status,
        /// Rolling hash of every operation (and observed value) this thread
        /// has performed — a schedule-independent stand-in for its program
        /// counter plus local state.
        history: u64,
        /// TSO store buffer: (address id, value), insertion-ordered, at most
        /// one entry per address.
        buffer: Vec<(u32, u64)>,
    }

    struct LockSt {
        owner: Option<Tid>,
        waiters: Vec<Tid>,
        class: &'static str,
    }

    #[derive(Clone, Copy)]
    struct TraceEv {
        tid: Tid,
        what: &'static str,
        class: &'static str,
        addr: u32,
        val: u64,
    }

    struct Decision {
        options: Vec<Transition>,
        chosen: usize,
        fingerprint: u64,
    }

    struct Exec {
        cfg: Model,
        current: Tid,
        threads: Vec<ThreadSt>,
        live: usize,
        atomics: HashMap<u32, u64>,
        locks: HashMap<u32, LockSt>,
        condvars: HashMap<u32, Vec<Tid>>,
        /// Raw address → small dense id, assigned in first-touch order so ids
        /// are stable across executions of a deterministic harness.
        addr_ids: HashMap<usize, u32>,
        next_addr_id: u32,
        trail: Vec<Decision>,
        depth: usize,
        preemptions: usize,
        steps: usize,
        spurious_left: usize,
        /// Set when the current path entered an already-explored subtree; no
        /// further decisions are recorded until the execution ends.
        pruned: bool,
        done: HashSet<u64>,
        failure: Option<String>,
        trace: Vec<TraceEv>,
        aborting: bool,
        completed: bool,
        transitions: u64,
        pruned_hits: u64,
    }

    pub(crate) struct Shared {
        state: StdMutex<Exec>,
        cv: StdCondvar,
        handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
    }

    thread_local! {
        static CTX: RefCell<Option<(Arc<Shared>, Tid)>> = const { RefCell::new(None) };
    }

    /// The scheduler context of the calling thread, if it is a controlled
    /// thread inside an active model run.
    pub(crate) fn active() -> Option<(Arc<Shared>, Tid)> {
        CTX.with(|c| c.borrow().clone())
    }

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(FNV_PRIME)
    }

    fn lock_state(sh: &Shared) -> StdMutexGuard<'_, Exec> {
        sh.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl Exec {
        fn norm(&mut self, addr: usize) -> u32 {
            if let Some(&id) = self.addr_ids.get(&addr) {
                return id;
            }
            let id = self.next_addr_id;
            self.next_addr_id += 1;
            self.addr_ids.insert(addr, id);
            id
        }

        fn record(
            &mut self,
            tid: Tid,
            what: &'static str,
            class: &'static str,
            addr: u32,
            val: u64,
        ) {
            let t = &mut self.threads[tid];
            let mut h = t.history;
            h = mix(h, what.as_ptr() as u64 ^ what.len() as u64);
            h = mix(h, addr as u64);
            h = mix(h, val);
            t.history = h;
            if self.trace.len() < self.cfg.max_steps + 64 {
                self.trace.push(TraceEv {
                    tid,
                    what,
                    class,
                    addr,
                    val,
                });
            }
        }

        fn fingerprint(&self) -> u64 {
            let mut h = FNV_OFFSET;
            h = mix(h, self.current as u64);
            h = mix(h, self.preemptions as u64);
            h = mix(h, self.spurious_left as u64);
            for t in &self.threads {
                h = mix(
                    h,
                    match t.status {
                        Status::Runnable => 1,
                        Status::BlockedLock(a) => 0x100 | u64::from(a) << 16,
                        Status::BlockedCv(a) => 0x200 | u64::from(a) << 16,
                        Status::BlockedJoin(t) => 0x300 | (t as u64) << 16,
                        Status::Finished => 4,
                    },
                );
                h = mix(h, t.history);
                for &(a, v) in &t.buffer {
                    h = mix(h, u64::from(a));
                    h = mix(h, v);
                }
                h = mix(h, 0x5ea1);
            }
            let mut keys: Vec<u32> = self.atomics.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                h = mix(h, u64::from(k));
                h = mix(h, self.atomics[&k]);
            }
            let mut keys: Vec<u32> = self.locks.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                let l = &self.locks[&k];
                h = mix(h, u64::from(k));
                h = mix(h, l.owner.map_or(u64::MAX, |t| t as u64));
                for &w in &l.waiters {
                    h = mix(h, w as u64);
                }
            }
            let mut keys: Vec<u32> = self.condvars.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                h = mix(h, u64::from(k));
                for &w in &self.condvars[&k] {
                    h = mix(h, w as u64);
                }
            }
            h
        }

        fn flush_buffer(&mut self, tid: Tid) {
            let buf = std::mem::take(&mut self.threads[tid].buffer);
            for (addr, val) in buf {
                self.atomics.insert(addr, val);
            }
        }

        fn fail(&mut self, msg: String) {
            if self.failure.is_none() {
                let mut out = String::new();
                out.push_str(&msg);
                out.push_str("\n--- interleaving trace (most recent last) ---\n");
                let start = self.trace.len().saturating_sub(120);
                for ev in &self.trace[start..] {
                    out.push_str(&format!(
                        "  t{} {:<14} {} (addr#{}, val {})\n",
                        ev.tid, ev.what, ev.class, ev.addr, ev.val
                    ));
                }
                out.push_str(&format!(
                    "--- {} transitions, {} decision points this execution ---",
                    self.steps, self.depth
                ));
                self.failure = Some(out);
            }
            self.aborting = true;
            self.completed = true;
        }

        fn deadlock_report(&self) -> String {
            let mut msg = String::from("deadlock: no runnable thread\n");
            for (tid, t) in self.threads.iter().enumerate() {
                let desc = match t.status {
                    Status::Runnable => "runnable (?)".to_string(),
                    Status::BlockedLock(a) => {
                        let class = self.locks.get(&a).map_or("?", |l| l.class);
                        format!("blocked acquiring lock `{class}` (addr#{a})")
                    }
                    Status::BlockedCv(a) => format!("blocked in condvar wait (addr#{a})"),
                    Status::BlockedJoin(j) => format!("blocked joining thread t{j}"),
                    Status::Finished => "finished".to_string(),
                };
                msg.push_str(&format!("  t{tid}: {desc}\n"));
            }
            msg
        }
    }

    fn check_abort(st: &Exec) {
        if st.aborting {
            std::panic::panic_any(Abort);
        }
    }

    /// Pick the next transition and hand control to it.  Called with the
    /// state lock held by whichever controlled thread just completed an
    /// operation (or blocked).
    fn schedule(sh: &Shared, st: &mut Exec) {
        if st.aborting {
            sh.cv.notify_all();
            return;
        }
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            st.fail(format!(
                "step budget exceeded ({} transitions): livelock or unbounded loop in harness",
                st.cfg.max_steps
            ));
            sh.cv.notify_all();
            return;
        }
        loop {
            if st.live == 0 {
                st.completed = true;
                sh.cv.notify_all();
                return;
            }
            let cur_runnable = st
                .threads
                .get(st.current)
                .is_some_and(|t| t.status == Status::Runnable);
            let mut opts: Vec<Transition> = Vec::new();
            if cur_runnable {
                opts.push(Transition::Run(st.current));
            }
            for (tid, t) in st.threads.iter().enumerate() {
                if tid != st.current && t.status == Status::Runnable {
                    opts.push(Transition::Run(tid));
                }
            }
            let any_run = !opts.is_empty();
            for (tid, t) in st.threads.iter().enumerate() {
                if !t.buffer.is_empty() {
                    opts.push(Transition::Flush(tid));
                }
            }
            let mut any_spurious = false;
            if st.spurious_left > 0 {
                for (tid, t) in st.threads.iter().enumerate() {
                    if matches!(t.status, Status::BlockedCv(_)) {
                        opts.push(Transition::Spurious(tid));
                        any_spurious = true;
                    }
                }
            }
            if !any_run && !any_spurious {
                // Store-buffer flushes cannot unblock anyone on their own.
                let report = st.deadlock_report();
                st.fail(report);
                sh.cv.notify_all();
                return;
            }
            let forced = cur_runnable && st.preemptions >= st.cfg.preemption_bound;
            let chosen = if forced {
                Transition::Run(st.current)
            } else if opts.len() == 1 {
                opts[0]
            } else {
                pick(st, opts)
            };
            st.transitions += 1;
            if st.aborting {
                sh.cv.notify_all();
                return;
            }
            let preempting = cur_runnable && chosen != Transition::Run(st.current);
            match chosen {
                Transition::Run(t) => {
                    if preempting {
                        st.preemptions += 1;
                    }
                    st.current = t;
                    sh.cv.notify_all();
                    return;
                }
                Transition::Flush(t) => {
                    if preempting {
                        st.preemptions += 1;
                    }
                    st.record(t, "flush", "", 0, 0);
                    st.flush_buffer(t);
                }
                Transition::Spurious(t) => {
                    if preempting {
                        st.preemptions += 1;
                    }
                    st.spurious_left -= 1;
                    for waiters in st.condvars.values_mut() {
                        waiters.retain(|&w| w != t);
                    }
                    st.threads[t].status = Status::Runnable;
                    st.record(t, "spurious-wake", "", 0, 0);
                }
            }
            // Flush / Spurious do not transfer control; decide again.
        }
    }

    /// Consume one decision point: replay the trail prefix, then record new
    /// branch points (unless the state was already fully explored).
    fn pick(st: &mut Exec, opts: Vec<Transition>) -> Transition {
        let d = st.depth;
        st.depth += 1;
        if d < st.trail.len() {
            if st.trail[d].options != opts {
                st.fail(format!(
                    "nondeterministic harness: decision {} offered {:?} on replay but {:?} originally",
                    d, opts, st.trail[d].options
                ));
                return opts[0];
            }
            let chosen = st.trail[d].chosen;
            return st.trail[d].options[chosen];
        }
        if st.pruned {
            return opts[0];
        }
        let fp = st.fingerprint();
        if st.done.contains(&fp) {
            st.pruned = true;
            st.pruned_hits += 1;
            return opts[0];
        }
        let first = opts[0];
        st.trail.push(Decision {
            options: opts,
            chosen: 0,
            fingerprint: fp,
        });
        first
    }

    /// Block until this thread is scheduled (runnable and current).
    fn wait_turn<'a>(
        sh: &'a Shared,
        mut st: StdMutexGuard<'a, Exec>,
        tid: Tid,
    ) -> StdMutexGuard<'a, Exec> {
        loop {
            check_abort(&st);
            if st.current == tid && st.threads[tid].status == Status::Runnable {
                return st;
            }
            st = sh.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// One scheduled operation: perform `f` on the model state, then yield.
    fn op<R>(sh: &Arc<Shared>, tid: Tid, f: impl FnOnce(&mut Exec) -> R) -> R {
        let mut st = lock_state(sh);
        check_abort(&st);
        let r = f(&mut st);
        schedule(sh, &mut st);
        let st = wait_turn(sh, st, tid);
        drop(st);
        r
    }

    // ---- operations invoked by the sync/thread shims -----------------------

    pub(crate) fn model_lock(sh: &Arc<Shared>, tid: Tid, addr: usize, class: &'static str) {
        loop {
            let mut st = lock_state(sh);
            check_abort(&st);
            let id = st.norm(addr);
            let owner = st
                .locks
                .entry(id)
                .or_insert(LockSt {
                    owner: None,
                    waiters: Vec::new(),
                    class,
                })
                .owner;
            if owner.is_none() {
                st.locks.get_mut(&id).expect("lock just inserted").owner = Some(tid);
                st.record(tid, "lock", class, id, 0);
                schedule(sh, &mut st);
                let st = wait_turn(sh, st, tid);
                drop(st);
                return;
            }
            if owner == Some(tid) {
                let msg = format!("thread t{tid} re-acquired lock `{class}` it already holds");
                st.fail(msg);
                check_abort(&st);
            }
            st.locks
                .get_mut(&id)
                .expect("lock just inserted")
                .waiters
                .push(tid);
            st.threads[tid].status = Status::BlockedLock(id);
            st.record(tid, "lock-blocked", class, id, 0);
            schedule(sh, &mut st);
            let st = wait_turn(sh, st, tid);
            drop(st);
        }
    }

    pub(crate) fn model_try_lock(
        sh: &Arc<Shared>,
        tid: Tid,
        addr: usize,
        class: &'static str,
    ) -> bool {
        op(sh, tid, |st| {
            let id = st.norm(addr);
            let l = st.locks.entry(id).or_insert(LockSt {
                owner: None,
                waiters: Vec::new(),
                class,
            });
            if l.owner.is_none() {
                l.owner = Some(tid);
                st.record(tid, "try-lock-ok", class, id, 1);
                true
            } else {
                st.record(tid, "try-lock-miss", class, id, 0);
                false
            }
        })
    }

    pub(crate) fn model_unlock(sh: &Arc<Shared>, tid: Tid, addr: usize, class: &'static str) {
        let mut st = lock_state(sh);
        if st.aborting {
            // Silent release during abort unwinding: must not panic in Drop.
            let id = st.norm(addr);
            if let Some(l) = st.locks.get_mut(&id) {
                if l.owner == Some(tid) {
                    l.owner = None;
                }
            }
            return;
        }
        let id = st.norm(addr);
        let l = st.locks.get_mut(&id).expect("model_unlock of unknown lock");
        debug_assert_eq!(l.owner, Some(tid), "unlock by non-owner");
        l.owner = None;
        let waiters = std::mem::take(&mut l.waiters);
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
        st.record(tid, "unlock", class, id, 0);
        schedule(sh, &mut st);
        let st = wait_turn(sh, st, tid);
        drop(st);
    }

    /// First half of a condvar wait: enqueue as a waiter, release the model
    /// lock, block.  The caller must then drop the real guard and call
    /// [`model_cv_wait_finish`].
    pub(crate) fn model_cv_wait_begin(
        sh: &Arc<Shared>,
        tid: Tid,
        cv_addr: usize,
        lock_addr: usize,
        class: &'static str,
    ) {
        let mut st = lock_state(sh);
        check_abort(&st);
        let cv_id = st.norm(cv_addr);
        let lock_id = st.norm(lock_addr);
        st.condvars.entry(cv_id).or_default().push(tid);
        let l = st
            .locks
            .get_mut(&lock_id)
            .expect("condvar wait without model lock");
        debug_assert_eq!(l.owner, Some(tid), "condvar wait without holding lock");
        l.owner = None;
        let waiters = std::mem::take(&mut l.waiters);
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
        st.threads[tid].status = Status::BlockedCv(cv_id);
        st.record(tid, "cv-wait", class, cv_id, 0);
        schedule(sh, &mut st);
        // Intentionally no wait_turn: the caller must release the real OS
        // mutex before this thread parks, otherwise the model and the real
        // lock disagree about availability.
        drop(st);
    }

    /// Second half of a condvar wait: park until woken and scheduled, then
    /// re-acquire the model lock.
    pub(crate) fn model_cv_wait_finish(
        sh: &Arc<Shared>,
        tid: Tid,
        lock_addr: usize,
        class: &'static str,
    ) {
        let st = lock_state(sh);
        let st = wait_turn(sh, st, tid);
        drop(st);
        model_lock(sh, tid, lock_addr, class);
    }

    pub(crate) fn model_cv_notify(sh: &Arc<Shared>, tid: Tid, cv_addr: usize, all: bool) {
        op(sh, tid, |st| {
            let cv_id = st.norm(cv_addr);
            let waiters = st.condvars.entry(cv_id).or_default();
            let woken: Vec<Tid> = if all {
                std::mem::take(waiters)
            } else if waiters.is_empty() {
                Vec::new()
            } else {
                vec![waiters.remove(0)]
            };
            let n = woken.len() as u64;
            for w in woken {
                st.threads[w].status = Status::Runnable;
            }
            st.record(
                tid,
                if all { "notify-all" } else { "notify-one" },
                "",
                cv_id,
                n,
            );
        })
    }

    /// A shared-variable load honoring the store-buffer model.
    pub(crate) fn model_volatile_load(
        sh: &Arc<Shared>,
        tid: Tid,
        addr: usize,
        init: u64,
        seq_cst: bool,
        class: &'static str,
    ) -> u64 {
        op(sh, tid, |st| {
            let id = st.norm(addr);
            if seq_cst {
                st.flush_buffer(tid);
            }
            let mut v = *st.atomics.entry(id).or_insert(init);
            if !seq_cst {
                // Store-to-load forwarding from this thread's own buffer.
                if let Some(&(_, buffered)) = st.threads[tid].buffer.iter().find(|&&(a, _)| a == id)
                {
                    v = buffered;
                }
            }
            st.record(tid, if seq_cst { "load(sc)" } else { "load" }, class, id, v);
            v
        })
    }

    /// A shared-variable store honoring the store-buffer model.
    pub(crate) fn model_volatile_store(
        sh: &Arc<Shared>,
        tid: Tid,
        addr: usize,
        init: u64,
        val: u64,
        seq_cst: bool,
        class: &'static str,
    ) {
        op(sh, tid, |st| {
            let id = st.norm(addr);
            st.atomics.entry(id).or_insert(init);
            if seq_cst {
                st.flush_buffer(tid);
                st.atomics.insert(id, val);
            } else if let Some(entry) = st.threads[tid].buffer.iter_mut().find(|(a, _)| *a == id) {
                entry.1 = val;
            } else {
                st.threads[tid].buffer.push((id, val));
            }
            st.record(
                tid,
                if seq_cst { "store(sc)" } else { "store" },
                class,
                id,
                val,
            );
        })
    }

    /// A read-modify-write: always flushes the buffer and acts on the global
    /// value (atomic RMWs read the latest value regardless of ordering).
    pub(crate) fn model_rmw(
        sh: &Arc<Shared>,
        tid: Tid,
        addr: usize,
        init: u64,
        f: impl FnOnce(u64) -> Option<u64>,
        class: &'static str,
    ) -> u64 {
        op(sh, tid, |st| {
            let id = st.norm(addr);
            st.flush_buffer(tid);
            let old = *st.atomics.entry(id).or_insert(init);
            if let Some(new) = f(old) {
                st.atomics.insert(id, new);
                st.record(tid, "rmw", class, id, new);
            } else {
                st.record(tid, "rmw-fail", class, id, old);
            }
            old
        })
    }

    pub(crate) fn model_spawn<F: FnOnce() + Send + 'static>(
        sh: &Arc<Shared>,
        tid: Tid,
        f: F,
    ) -> Tid {
        let new_tid = {
            let mut st = lock_state(sh);
            check_abort(&st);
            let new_tid = st.threads.len();
            assert!(new_tid < 8, "model checker supports at most 8 threads");
            st.threads.push(ThreadSt {
                status: Status::Runnable,
                history: FNV_OFFSET ^ new_tid as u64,
                buffer: Vec::new(),
            });
            st.live += 1;
            st.record(tid, "spawn", "", 0, new_tid as u64);
            new_tid
        };
        let sh2 = Arc::clone(sh);
        let handle = std::thread::spawn(move || controlled_thread(sh2, new_tid, f));
        sh.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        let mut st = lock_state(sh);
        check_abort(&st);
        schedule(sh, &mut st);
        let st = wait_turn(sh, st, tid);
        drop(st);
        new_tid
    }

    pub(crate) fn model_join(sh: &Arc<Shared>, tid: Tid, target: Tid) {
        loop {
            let mut st = lock_state(sh);
            check_abort(&st);
            if st.threads[target].status == Status::Finished {
                st.record(tid, "join", "", 0, target as u64);
                schedule(sh, &mut st);
                let st = wait_turn(sh, st, tid);
                drop(st);
                return;
            }
            st.threads[tid].status = Status::BlockedJoin(target);
            st.record(tid, "join-blocked", "", 0, target as u64);
            schedule(sh, &mut st);
            let st = wait_turn(sh, st, tid);
            drop(st);
        }
    }

    fn controlled_thread<F: FnOnce()>(sh: Arc<Shared>, tid: Tid, body: F) {
        {
            let st = lock_state(&sh);
            let st = match catch_unwind(AssertUnwindSafe(|| wait_turn(&sh, st, tid))) {
                Ok(st) => st,
                Err(_) => {
                    // Aborted before the first step.
                    finish_thread(&sh, tid, None);
                    return;
                }
            };
            drop(st);
        }
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sh), tid)));
        let result = catch_unwind(AssertUnwindSafe(body));
        CTX.with(|c| *c.borrow_mut() = None);
        let failure = match result {
            Ok(()) => None,
            Err(payload) => {
                if payload.downcast_ref::<Abort>().is_some() {
                    None
                } else if let Some(s) = payload.downcast_ref::<&'static str>() {
                    Some(format!("thread t{tid} panicked: {s}"))
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    Some(format!("thread t{tid} panicked: {s}"))
                } else {
                    Some(format!("thread t{tid} panicked (non-string payload)"))
                }
            }
        };
        finish_thread(&sh, tid, failure);
    }

    fn finish_thread(sh: &Arc<Shared>, tid: Tid, failure: Option<String>) {
        let mut st = lock_state(sh);
        if st.threads[tid].status != Status::Finished {
            st.threads[tid].status = Status::Finished;
            st.live -= 1;
        }
        // A finishing thread publishes its outstanding buffered stores; the
        // OS would eventually flush them, and keeping them pending would make
        // "thread exited with an unflushed flag" look like a protocol bug.
        st.flush_buffer(tid);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedJoin(tid) {
                st.threads[t].status = Status::Runnable;
            }
        }
        if let Some(msg) = failure {
            st.fail(msg);
            sh.cv.notify_all();
            return;
        }
        if st.aborting {
            sh.cv.notify_all();
            return;
        }
        st.record(tid, "exit", "", 0, 0);
        schedule(sh, &mut st);
    }

    fn run_once<F>(cfg: &Model, f: Arc<F>, trail: Vec<Decision>, done: HashSet<u64>) -> Exec
    where
        F: Fn() + Send + Sync + 'static,
    {
        let sh = Arc::new(Shared {
            state: StdMutex::new(Exec {
                cfg: cfg.clone(),
                current: 0,
                threads: vec![ThreadSt {
                    status: Status::Runnable,
                    history: FNV_OFFSET,
                    buffer: Vec::new(),
                }],
                live: 1,
                atomics: HashMap::new(),
                locks: HashMap::new(),
                condvars: HashMap::new(),
                addr_ids: HashMap::new(),
                next_addr_id: 0,
                trail,
                depth: 0,
                preemptions: 0,
                steps: 0,
                spurious_left: cfg.spurious_budget,
                pruned: false,
                done,
                failure: None,
                trace: Vec::new(),
                aborting: false,
                completed: false,
                transitions: 0,
                pruned_hits: 0,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        });
        let sh_main = Arc::clone(&sh);
        let main_handle = std::thread::spawn(move || {
            let body = move || f();
            controlled_thread(sh_main, 0, body)
        });
        sh.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(main_handle);
        {
            let mut st = lock_state(&sh);
            while !st.completed {
                st = sh.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        // Join every controlled thread (they all observe `aborting` or have
        // finished); no new threads spawn once `completed` is set.
        loop {
            let drained: Vec<_> = {
                let mut h = sh.handles.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *h)
            };
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
        let sh = Arc::try_unwrap(sh)
            .unwrap_or_else(|_| panic!("controlled thread leaked a scheduler handle"));
        sh.state.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn explore<F>(cfg: &Model, f: Arc<F>) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut trail: Vec<Decision> = Vec::new();
        let mut done: HashSet<u64> = HashSet::new();
        let mut stats = Stats::default();
        loop {
            stats.executions += 1;
            if stats.executions > cfg.max_executions as u64 {
                panic!(
                    "model check exceeded max_executions ({}) without converging; \
                     raise the limit or tighten the harness",
                    cfg.max_executions
                );
            }
            let exec = run_once(cfg, Arc::clone(&f), trail, done);
            stats.transitions += exec.transitions;
            stats.pruned += exec.pruned_hits;
            if let Some(msg) = exec.failure {
                panic!(
                    "model check failed on execution {}:\n{}",
                    stats.executions, msg
                );
            }
            trail = exec.trail;
            done = exec.done;
            loop {
                match trail.last_mut() {
                    None => return stats,
                    Some(d) if d.chosen + 1 < d.options.len() => {
                        d.chosen += 1;
                        break;
                    }
                    Some(d) => {
                        done.insert(d.fingerprint);
                        trail.pop();
                    }
                }
            }
        }
    }
}
