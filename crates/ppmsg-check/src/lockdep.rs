//! Runtime lock-order analysis ("lockdep"), modeled on the Linux kernel's
//! validator.
//!
//! Every instrumented [`crate::sync::Mutex`] belongs to a lock *class* named
//! by a `&'static str`.  Each time a thread acquires a lock while already
//! holding others, directed edges `held class → acquired class` enter a
//! global graph.  The first edge that would close a cycle panics immediately
//! with both class names and the recorded inverse path — a would-deadlock is
//! reported the first time the inconsistent *order* is exercised, without
//! needing the actual deadlock interleaving to fire.
//!
//! Additional assertions:
//! * [`assert_parking`] — a thread must not park on a condvar while holding
//!   any instrumented lock other than the one it is releasing (a
//!   held-while-parking bug turns a missed wakeup into a system-wide stall).
//! * [`assert_no_locks_held`] — entry points that publish completions (e.g.
//!   `CompletionMailbox::post`) must not be reached with engine/shard locks
//!   held, keeping the publish path stall-free.
//!
//! All bookkeeping is allocation-free in the steady state: the per-thread
//! held stack retains capacity, class ids are cached per-mutex in an
//! `AtomicU32`, and the adjacency lists only grow the first time a new
//! (held, acquired) pair is seen.  The fast path (acquiring with no other
//! locks held) never touches the global registry.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex as StdMutex;

struct Registry {
    /// Class id − 1 → name.
    names: Vec<&'static str>,
    /// Class id − 1 → ids of classes acquired while this class was held.
    adj: Vec<Vec<u32>>,
}

static REGISTRY: StdMutex<Registry> = StdMutex::new(Registry {
    names: Vec::new(),
    adj: Vec::new(),
});

thread_local! {
    /// (token, class id) pairs for locks currently held by this thread, in
    /// acquisition order.
    static HELD: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread token counter; tokens are only ever compared within a
    /// thread, so no global coordination is needed.
    static NEXT_TOKEN: Cell<u64> = const { Cell::new(1) };
}

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    // A cycle panic poisons the registry; later acquisitions (e.g. in tests
    // that caught the panic) must keep working.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolve (and cache) the id for a class name.  Ids are 1-based so that 0
/// can serve as the per-mutex "not yet assigned" sentinel.
pub fn class_id(name: &'static str, cache: &AtomicU32) -> u32 {
    let cached = cache.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let mut reg = registry();
    let id = match reg.names.iter().position(|&n| n == name) {
        Some(i) => i as u32 + 1,
        None => {
            reg.names.push(name);
            reg.adj.push(Vec::new());
            reg.names.len() as u32
        }
    };
    drop(reg);
    cache.store(id, Ordering::Relaxed);
    id
}

/// Find a path `from ⇝ to` in the order graph, if any.
fn find_path(reg: &Registry, from: u32, to: u32) -> Option<Vec<u32>> {
    let mut stack = vec![(from, vec![from])];
    let mut seen = vec![false; reg.names.len()];
    while let Some((node, path)) = stack.pop() {
        if node == to {
            return Some(path);
        }
        let idx = (node - 1) as usize;
        if seen[idx] {
            continue;
        }
        seen[idx] = true;
        for &next in &reg.adj[idx] {
            let mut p = path.clone();
            p.push(next);
            stack.push((node_checked(next), p));
        }
    }
    None
}

fn node_checked(id: u32) -> u32 {
    debug_assert!(id >= 1);
    id
}

fn record_edges(held: &[(u64, u32)], class: u32, name: &'static str) {
    let mut reg = registry();
    for &(_, from) in held {
        if from == class {
            continue;
        }
        let fi = (from - 1) as usize;
        if reg.adj[fi].contains(&class) {
            continue;
        }
        // Would `from → class` close a cycle? Look for an existing path
        // `class ⇝ from`.
        if let Some(path) = find_path(&reg, class, from) {
            let held_name = reg.names[fi];
            let chain: Vec<&str> = path
                .iter()
                .map(|&id| reg.names[(id - 1) as usize])
                .collect();
            drop(reg);
            panic!(
                "lockdep: lock-order cycle: acquiring class `{name}` while holding \
                 `{held_name}`, but the inverse order `{}` was already recorded",
                chain.join("` -> `"),
            );
        }
        reg.adj[fi].push(class);
    }
}

/// Record a (blocking) acquisition of `name`.  Panics on the first
/// acquisition order that could deadlock.  Returns a token to pass to
/// [`release`].
pub fn acquire(name: &'static str, cache: &AtomicU32) -> u64 {
    let class = class_id(name, cache);
    let token = NEXT_TOKEN.with(|t| {
        let v = t.get();
        t.set(v + 1);
        v
    });
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if held.iter().any(|&(_, c)| c == class) {
            panic!(
                "lockdep: thread acquired lock class `{name}` while already holding a \
                 lock of the same class (self-deadlock with std::sync::Mutex)"
            );
        }
        if !held.is_empty() {
            record_edges(&held, class, name);
        }
        held.push((token, class));
    });
    token
}

/// Record a non-blocking (`try_lock`) acquisition: the lock is tracked as
/// held (so later blocking acquisitions gain edges *from* it) but adds no
/// ordering edges itself, since a trylock cannot deadlock.
pub fn acquire_trylock(name: &'static str, cache: &AtomicU32) -> u64 {
    let class = class_id(name, cache);
    let token = NEXT_TOKEN.with(|t| {
        let v = t.get();
        t.set(v + 1);
        v
    });
    HELD.with(|h| h.borrow_mut().push((token, class)));
    token
}

/// Release a lock recorded by [`acquire`]/[`acquire_trylock`].  Out-of-order
/// release (guard drop order) is fine.
pub fn release(token: u64) {
    if token == 0 {
        return;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(i) = held.iter().position(|&(t, _)| t == token) {
            held.remove(i);
        }
    });
}

/// Number of instrumented locks currently held by this thread.
pub fn held_count() -> usize {
    HELD.with(|h| h.borrow().len())
}

fn held_names() -> String {
    let reg = registry();
    HELD.with(|h| {
        h.borrow()
            .iter()
            .map(|&(_, c)| reg.names[(c - 1) as usize])
            .collect::<Vec<_>>()
            .join("`, `")
    })
}

/// Panic if the calling thread holds any instrumented lock.  Place at entry
/// to publish/wake paths that must never run under engine locks.
pub fn assert_no_locks_held(context: &str) {
    HELD.with(|h| {
        if !h.borrow().is_empty() {
            let names = held_names();
            panic!("lockdep: {context} entered while holding instrumented locks: `{names}`");
        }
    });
}

/// Panic if the calling thread holds any instrumented lock whose class name
/// starts with `prefix`.  Scoped variant of [`assert_no_locks_held`] for
/// paths that must not run under one subsystem's locks (e.g. completion
/// publication under `core.` shard/mailbox locks) but are legitimately
/// reached while holding unrelated leaf locks (an executor's task mutex).
pub fn assert_no_locks_held_in(context: &str, prefix: &str) {
    HELD.with(|h| {
        let held = h.borrow();
        let reg = registry();
        if held
            .iter()
            .any(|&(_, c)| reg.names[(c - 1) as usize].starts_with(prefix))
        {
            drop(reg);
            drop(held);
            let names = held_names();
            panic!("lockdep: {context} entered while holding `{prefix}*` locks: `{names}`");
        }
    });
}

/// Panic if the calling thread holds any instrumented lock other than the
/// condvar's own mutex (identified by `own_token`).
pub fn assert_parking(class: &'static str, own_token: u64) {
    HELD.with(|h| {
        let held = h.borrow();
        if held.iter().any(|&(t, _)| t != own_token) {
            drop(held);
            let names = held_names();
            panic!(
                "lockdep: parking on condvar of lock class `{class}` while holding other \
                 instrumented locks: `{names}`"
            );
        }
    });
}

/// Test hook: clear the global order graph and this thread's held stack so a
/// test that deliberately provoked a cycle does not poison later assertions
/// in the same process.
#[doc(hidden)]
pub fn reset() {
    let mut reg = registry();
    for adj in reg.adj.iter_mut() {
        adj.clear();
    }
    drop(reg);
    HELD.with(|h| h.borrow_mut().clear());
}
