//! In-tree correctness tooling for the push-pull-messaging workspace.
//!
//! Three layers, selected at build time:
//!
//! 1. **Bounded model checking** ([`Model`]): with `RUSTFLAGS="--cfg ppmsg_check"`,
//!    the [`sync`] and [`thread`] shims route every lock, condvar, and atomic
//!    operation through a deterministic scheduler that explores thread
//!    interleavings up to a preemption bound, with state hashing to prune
//!    already-explored subtrees.  Non-`SeqCst` stores are held in a per-thread
//!    store buffer (a TSO-like model) so weakened-ordering bugs — e.g. a
//!    Dekker-style two-flag handshake downgraded to `Relaxed` — manifest as
//!    detectable lost-wakeup deadlocks rather than silently passing.
//! 2. **Lockdep** ([`lockdep`]): in ordinary `debug_assertions` builds, the
//!    [`sync::Mutex`] wrapper records the runtime lock-acquisition graph per
//!    lock *class* and panics on the first cycle, i.e. would-deadlock detection
//!    without needing the deadlock to fire.  Release builds compile the wrapper
//!    down to a plain `std::sync::Mutex`.
//! 3. **`ppmsg-lint`** (the companion binary): a source-level scanner enforcing
//!    repo invariants (SAFETY comments on `unsafe`, no raw `std::sync::Mutex`
//!    in instrumented files, no allocation growth in marked hot-path files, no
//!    `Instant::now()` in engine code) as CI errors.
//!
//! The crate is vendored in-tree like the rest of the dependency stubs; there
//! is no crates.io access in this workspace.

pub mod lockdep;
pub mod model;
pub mod sync;
pub mod thread;

pub use model::{Model, Stats};

/// Convenience wrapper: run `f` under the default [`Model`] configuration.
///
/// Under `--cfg ppmsg_check` this exhaustively explores interleavings; in
/// ordinary builds it simply runs `f` once so harnesses stay compilable.
pub fn check<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Model::new().check(f)
}
