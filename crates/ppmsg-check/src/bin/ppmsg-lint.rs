//! `ppmsg-lint`: source-level repo-invariant checker, run as a blocking CI
//! step.
//!
//! Enforced rules:
//!
//! * **safety_comment** — every unsafe block or unsafe impl must be preceded
//!   (by a comment block directly above, or on the same line) by a
//!   `// SAFETY:` comment justifying it.  Applies to every non-vendored
//!   `.rs` file.
//! * **raw_sync** — files whose locks must go through the instrumented
//!   `ppmsg_check::sync` wrapper (lockdep + model checking) may not name raw
//!   `std::sync` locks or `parking_lot`.
//! * **hot_path_alloc** — files opting in with a `deny(hot_path_alloc)`
//!   marker comment may not use `HashMap`/`BTreeMap` or common allocation
//!   idioms (`format!`, `vec![`, `.to_vec()`) outside their `#[cfg(test)]`
//!   tail.  `Vec::push` into pooled, capacity-retained buffers is the
//!   workspace's approved pattern and stays allowed; the dynamic counting
//!   allocator in `tests/zero_alloc.rs` enforces the runtime side of this
//!   invariant.
//! * **virtual_clock** — `crates/core` is sans-I/O and fully virtual-time
//!   (the chaos harness depends on it): no `Instant::now()` or
//!   `SystemTime::now()`.
//! * **telemetry_hot_path** — every file under `crates/core/src/telemetry/`
//!   runs on the steady-state send/recv path and must opt into the
//!   hot-path-alloc rule with the `deny(hot_path_alloc)` marker.
//! * **telemetry_clock** — only `telemetry/clock.rs` owns sanctioned clock
//!   reads; other telemetry files may not even carry the
//!   `allow(virtual_clock)` escape — they must stamp through the
//!   time-source abstraction (`clock::now_ns` / `clock::mono_ns`).
//!
//! A line can be exempted with a trailing `ppmsg-lint: allow(<rule>)`
//! comment (the two telemetry rules above are file-level and cannot be
//! waived).  Pattern strings below are assembled with `concat!` so this file
//! never matches its own rules.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Marker opting a file into the hot-path allocation rule.
const DENY_HOT_PATH: &str = concat!("ppmsg-lint: ", "deny(", "hot_path_alloc)");

/// Files that must use `ppmsg_check::sync` instead of raw lock types.
const RAW_SYNC_FILES: &[&str] = &[
    "crates/core/src/ops.rs",
    "crates/core/src/sharded.rs",
    "crates/ppmsg-host/src/reactor.rs",
    "crates/ppmsg-host/src/intranode.rs",
    "src/executor.rs",
    "src/timer.rs",
];

const SAFETY_MARK: &str = concat!("SAFETY", ":");

fn unsafe_patterns() -> [String; 3] {
    let kw = concat!("uns", "afe");
    [
        format!("{kw} {{"),
        format!("{kw} impl"),
        format!("{kw} extern"),
    ]
}

fn raw_sync_patterns() -> [String; 3] {
    [
        concat!("std::sync::", "Mutex").to_string(),
        concat!("std::sync::", "Condvar").to_string(),
        concat!("parking", "_lot").to_string(),
    ]
}

fn hot_path_patterns() -> [String; 5] {
    [
        concat!("Hash", "Map").to_string(),
        concat!("BTree", "Map").to_string(),
        concat!("format", "!(").to_string(),
        concat!("vec", "![").to_string(),
        concat!(".to_", "vec()").to_string(),
    ]
}

fn clock_patterns() -> [String; 2] {
    [
        concat!("Instant::", "now").to_string(),
        concat!("SystemTime::", "now").to_string(),
    ]
}

fn allow_marker(rule: &str) -> String {
    format!("ppmsg-lint{} allow({rule})", ':')
}

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

/// Strip line comments and track block-comment state across lines so rule
/// patterns in documentation don't fire.  `in_block` is carried between
/// lines by the caller.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if i + 1 < bytes.len() && bytes[i] == b'/' && bytes[i + 1] == b'*' {
            *in_block = true;
            i += 2;
            continue;
        }
        if i + 1 < bytes.len() && bytes[i] == b'/' && bytes[i + 1] == b'/' {
            break;
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

fn check_source(rel_path: &str, content: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = content.lines().collect();
    let hot_path = content.contains(DENY_HOT_PATH);
    let raw_sync = RAW_SYNC_FILES.iter().any(|f| rel_path.ends_with(f));
    let core_engine = rel_path.contains("crates/core/src/");
    let telemetry_file = rel_path.contains("crates/core/src/telemetry/");

    if telemetry_file && !hot_path {
        out.push(Violation {
            file: rel_path.to_string(),
            line: 1,
            rule: "telemetry_hot_path",
            msg: format!(
                "telemetry files run on the steady-state path: add a `{DENY_HOT_PATH}` marker"
            ),
        });
    }
    let unsafe_pats = unsafe_patterns();
    let sync_pats = raw_sync_patterns();
    let alloc_pats = hot_path_patterns();
    let clock_pats = clock_patterns();

    // First test-gated cfg line — `#[cfg(test)]` or a compound like
    // `#[cfg(all(test, feature = "telemetry"))]` — marks the conventional
    // start of a file's test tail, exempt from the hot-path-alloc rule.
    let test_tail = lines
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("#[cfg(") && t.contains("(test")
        })
        .unwrap_or(lines.len());

    let mut in_block = false;
    for (idx, &line) in lines.iter().enumerate() {
        let code = strip_comments(line, &mut in_block);
        let lineno = idx + 1;

        if unsafe_pats.iter().any(|p| code.contains(p.as_str()))
            && !line.contains(&allow_marker("safety_comment"))
        {
            let mut justified = line.contains(SAFETY_MARK);
            // Scan back through the justifying comment block (which may be
            // several lines) and wrapped statement heads; a finished
            // previous statement ends the search.
            for back in 1..=12 {
                if justified || back > idx {
                    break;
                }
                let prev = lines[idx - back].trim();
                if prev.starts_with("//") {
                    if prev.contains(SAFETY_MARK) {
                        justified = true;
                    }
                } else if prev.is_empty() || prev.ends_with(';') || prev.ends_with('}') {
                    // The previous statement ended: a SAFETY comment above
                    // it does not belong to this unsafe.  Lines like
                    // `let n =` (a wrapped statement head) scan through.
                    break;
                }
            }
            if !justified {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "safety_comment",
                    msg: "unsafe without a preceding `// SAFETY:` comment".to_string(),
                });
            }
        }

        if raw_sync && !line.contains(&allow_marker("raw_sync")) {
            for p in &sync_pats {
                if code.contains(p.as_str()) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "raw_sync",
                        msg: format!(
                            "`{p}` in a file that must use the instrumented ppmsg_check::sync wrapper"
                        ),
                    });
                }
            }
        }

        if hot_path && idx < test_tail && !line.contains(&allow_marker("hot_path_alloc")) {
            for p in &alloc_pats {
                if code.contains(p.as_str()) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "hot_path_alloc",
                        msg: format!("`{p}` in a file marked deny(hot_path_alloc)"),
                    });
                }
            }
        }

        if core_engine && !line.contains(&allow_marker("virtual_clock")) {
            for p in &clock_pats {
                if code.contains(p.as_str()) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "virtual_clock",
                        msg: format!("`{p}` in sans-I/O engine code (must stay virtual-time)"),
                    });
                }
            }
        }

        // Only clock.rs owns sanctioned clock reads; elsewhere in the
        // telemetry module even the escape hatch is banned, so every stamp
        // goes through the time-source abstraction.
        if telemetry_file
            && !rel_path.ends_with("telemetry/clock.rs")
            && line.contains(&allow_marker("virtual_clock"))
        {
            out.push(Violation {
                file: rel_path.to_string(),
                line: lineno,
                rule: "telemetry_clock",
                msg: "only telemetry/clock.rs may read the wall clock; use clock::now_ns / \
                      clock::mono_ns"
                    .to_string(),
            });
        }
    }
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name == ".git" {
                continue;
            }
            collect_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/ppmsg-check → workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(workspace_root);
    let mut files = Vec::new();
    collect_files(&root, &mut files);
    files.sort();
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(content) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        check_source(&rel, &content, &mut violations);
    }
    if violations.is_empty() {
        println!("ppmsg-lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
        }
        eprintln!(
            "ppmsg-lint: {} violation(s) in {scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<String> {
        let mut v = Vec::new();
        check_source(rel, src, &mut v);
        v.into_iter()
            .map(|x| format!("{}:{}", x.rule, x.line))
            .collect()
    }

    fn kw_unsafe() -> &'static str {
        concat!("uns", "afe")
    }

    #[test]
    fn safety_comment_required_and_satisfied() {
        let bad = format!("fn f() {{\n    {} {{ x() }}\n}}\n", kw_unsafe());
        assert_eq!(run("src/a.rs", &bad), vec!["safety_comment:2"]);

        let good = format!(
            "fn f() {{\n    // SAFETY: x is valid for the call.\n    {} {{ x() }}\n}}\n",
            kw_unsafe()
        );
        assert!(run("src/a.rs", &good).is_empty());

        let trailing = format!("let v = {} {{ y() }}; // SAFETY: y is pure\n", kw_unsafe());
        assert!(run("src/a.rs", &trailing).is_empty());
    }

    #[test]
    fn safety_comment_sees_through_attributes() {
        let src = format!(
            "// SAFETY: the impl upholds the contract.\n#[allow(dead_code)]\n{} impl Send for X {{}}\n",
            kw_unsafe()
        );
        assert!(run("src/a.rs", &src).is_empty());
    }

    #[test]
    fn unsafe_in_comments_is_ignored() {
        let src = format!("// talk about {} {{ blocks }} here\n", kw_unsafe());
        assert!(run("src/a.rs", &src).is_empty());
    }

    #[test]
    fn raw_sync_only_in_listed_files() {
        let src = format!(
            "use {}::{};\n",
            concat!("std", "::sync"),
            concat!("Mu", "tex")
        );
        // Reassemble the pattern so the fixture really contains it.
        let src = src.replace(
            &format!("{}::{}", concat!("std", "::sync"), concat!("Mu", "tex")),
            &format!("std::sync::{}", concat!("Mu", "tex")),
        );
        assert_eq!(run("crates/core/src/ops.rs", &src), vec!["raw_sync:1"]);
        assert!(run("crates/core/src/engine/mod.rs", &src).is_empty());
    }

    #[test]
    fn hot_path_alloc_requires_marker_and_skips_tests() {
        let marker = super::DENY_HOT_PATH;
        let map = concat!("Hash", "Map");
        let unmarked = format!("use std::collections::{map};\n");
        assert!(run("crates/core/src/engine/sender.rs", &unmarked).is_empty());

        let marked = format!("// {marker}\nuse std::collections::{map};\n");
        assert_eq!(
            run("crates/core/src/engine/sender.rs", &marked),
            vec!["hot_path_alloc:2"]
        );

        let in_tests = format!(
            "// {marker}\n#[cfg(test)]\nmod tests {{\n    use std::collections::{map};\n}}\n"
        );
        assert!(run("crates/core/src/engine/sender.rs", &in_tests).is_empty());
    }

    #[test]
    fn virtual_clock_rule_scoped_to_core() {
        let now = concat!("Instant::", "now");
        let src = format!("let t = std::time::{now}();\n");
        assert_eq!(
            run("crates/core/src/engine/mod.rs", &src),
            vec!["virtual_clock:1"]
        );
        assert!(run("crates/ppmsg-host/src/reactor.rs", &src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let now = concat!("Instant::", "now");
        let allow = super::allow_marker("virtual_clock");
        let src = format!("let t = std::time::{now}(); // {allow}\n");
        assert!(run("crates/core/src/engine/mod.rs", &src).is_empty());
    }

    #[test]
    fn telemetry_files_must_carry_the_hot_path_marker() {
        // Sabotage: a telemetry file without the marker fires at line 1...
        let bare = "pub fn event() {}\n";
        assert_eq!(
            run("crates/core/src/telemetry/recorder.rs", bare),
            vec!["telemetry_hot_path:1"]
        );
        // ...and the same content outside the telemetry dir is fine.
        assert!(run("crates/core/src/engine/mod.rs", bare).is_empty());

        let marked = format!("// {}\npub fn event() {{}}\n", super::DENY_HOT_PATH);
        assert!(run("crates/core/src/telemetry/recorder.rs", &marked).is_empty());
    }

    #[test]
    fn telemetry_clock_escape_is_clock_rs_only() {
        let now = concat!("Instant::", "now");
        let allow = super::allow_marker("virtual_clock");
        let src = format!(
            "// {}\nlet t = std::time::{now}(); // {allow}\n",
            super::DENY_HOT_PATH
        );
        // Sabotage: the virtual_clock escape hatch inside a non-clock
        // telemetry file is itself a violation...
        assert_eq!(
            run("crates/core/src/telemetry/recorder.rs", &src),
            vec!["telemetry_clock:2"]
        );
        // ...while clock.rs (the abstraction's owner) may use it.
        assert!(run("crates/core/src/telemetry/clock.rs", &src).is_empty());
    }
}
