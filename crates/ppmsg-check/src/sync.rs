//! Instrumented synchronization primitives.
//!
//! Drop-in replacements for `std::sync` types with three behaviours selected
//! at build time:
//!
//! * **`--cfg ppmsg_check` + active model run**: every operation is a yield
//!   point routed through the bounded model checker's scheduler (see
//!   [`crate::model`]).  Atomics follow a TSO-style store-buffer model so
//!   weakened-ordering bugs are observable.
//! * **`debug_assertions` (ordinary dev/test builds)**: [`Mutex`] feeds the
//!   [`crate::lockdep`] lock-order graph — the first acquisition order that
//!   *could* deadlock panics immediately, and condvar waits assert that no
//!   unrelated instrumented lock is held while parking.
//! * **release builds**: a transparent wrapper over `std::sync` (poisoning is
//!   recovered rather than propagated, matching the workspace's
//!   `parking_lot`-style conventions).
//!
//! Locks are instrumented per *class*: the `&'static str` passed to
//! [`Mutex::new`] names the class, and every mutex sharing a name shares a
//! node in the lock-order graph (like Linux lockdep's `struct lock_class`).

use std::fmt;
use std::sync::atomic::AtomicU32;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

use crate::lockdep;

/// A mutual-exclusion primitive with a lock *class* name, used for lock-order
/// analysis and model checking.  API mirrors `std::sync::Mutex` except that
/// [`lock`](Mutex::lock) returns the guard directly (poisoning recovered).
pub struct Mutex<T> {
    class: &'static str,
    class_id: AtomicU32,
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock (and its lockdep/model
/// bookkeeping) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    real: Option<StdMutexGuard<'a, T>>,
    token: u64,
}

impl<T> Mutex<T> {
    /// Create a mutex belonging to lock class `class`.
    ///
    /// Class names are global: two mutexes created with the same name are the
    /// same node in the lock-order graph.  Use stable, grep-able names like
    /// `"core.mailbox.inner"`.
    pub const fn new(class: &'static str, value: T) -> Self {
        Mutex {
            class,
            class_id: AtomicU32::new(0),
            inner: StdMutex::new(value),
        }
    }

    #[cfg(ppmsg_check)]
    fn addr(&self) -> usize {
        &self.inner as *const StdMutex<T> as usize
    }

    /// The lock class this mutex was created with.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Acquire the lock, panicking on a detected lock-order cycle in
    /// `debug_assertions` builds and yielding to the model scheduler under
    /// `--cfg ppmsg_check`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(ppmsg_check)]
        if let Some((sh, tid)) = crate::model::active() {
            crate::model::model_lock(&sh, tid, self.addr(), self.class);
            let real = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            return MutexGuard {
                lock: self,
                real: Some(real),
                token: 0,
            };
        }
        let token = if cfg!(debug_assertions) {
            lockdep::acquire(self.class, &self.class_id)
        } else {
            0
        };
        let real = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            lock: self,
            real: Some(real),
            token,
        }
    }

    /// Non-blocking acquire.  Cannot deadlock, so lockdep records it as held
    /// without adding ordering edges (mirroring Linux lockdep's trylock
    /// handling).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(ppmsg_check)]
        if let Some((sh, tid)) = crate::model::active() {
            if !crate::model::model_try_lock(&sh, tid, self.addr(), self.class) {
                return None;
            }
            let real = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            return Some(MutexGuard {
                lock: self,
                real: Some(real),
                token: 0,
            });
        }
        let real = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => return None,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let token = if cfg!(debug_assertions) {
            lockdep::acquire_trylock(self.class, &self.class_id)
        } else {
            0
        };
        Some(MutexGuard {
            lock: self,
            real: Some(real),
            token,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Mutex");
        d.field("class", &self.class);
        match self.inner.try_lock() {
            Ok(g) => d.field("data", &&*g),
            Err(_) => d.field("data", &format_args!("<locked>")),
        };
        d.finish()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new("ppmsg_check.default", T::default())
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard accessed after release")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard accessed after release")
    }
}

impl<'a, T: fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        // Release the real mutex before the model release so a thread the
        // scheduler hands the model lock to never blocks on the OS mutex.
        self.real.take();
        if self.token != 0 {
            lockdep::release(self.token);
        } else {
            #[cfg(ppmsg_check)]
            if let Some((sh, tid)) = crate::model::active() {
                crate::model::model_unlock(&sh, tid, self.lock.addr(), self.lock.class);
            }
        }
    }
}

/// Result of [`Condvar::wait_timeout`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
///
/// In `debug_assertions` builds, waiting asserts that the parking thread
/// holds no instrumented lock other than the one being released (the
/// held-while-parking rule).  Under an active model run, waits and
/// notifications are scheduler transitions; the model may inject spurious
/// wake-ups when configured with a spurious budget, and `wait_timeout` never
/// reports a timeout (model time does not advance — code whose *progress*
/// depends on timeouts cannot be model-checked, only code that merely
/// tolerates early wake-ups).
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    #[cfg(ppmsg_check)]
    fn addr(&self) -> usize {
        &self.inner as *const StdCondvar as usize
    }

    /// Atomically release the guard's mutex and wait for a notification.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(ppmsg_check)]
        if let Some((sh, tid)) = crate::model::active() {
            let lock = guard.lock;
            crate::model::model_cv_wait_begin(&sh, tid, self.addr(), lock.addr(), lock.class);
            guard.real.take();
            crate::model::model_cv_wait_finish(&sh, tid, lock.addr(), lock.class);
            guard.real = Some(lock.inner.lock().unwrap_or_else(|e| e.into_inner()));
            return guard;
        }
        if guard.token != 0 {
            lockdep::assert_parking(guard.lock.class, guard.token);
        }
        let real = guard.real.take().expect("guard accessed after release");
        let real = self.inner.wait(real).unwrap_or_else(|e| e.into_inner());
        guard.real = Some(real);
        guard
    }

    /// [`wait`](Condvar::wait) with a timeout.  See the type-level docs for
    /// model-run semantics.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        #[cfg(ppmsg_check)]
        if crate::model::active().is_some() {
            let guard = self.wait(guard);
            return (guard, WaitTimeoutResult { timed_out: false });
        }
        if guard.token != 0 {
            lockdep::assert_parking(guard.lock.class, guard.token);
        }
        let real = guard.real.take().expect("guard accessed after release");
        let (real, res) = self
            .inner
            .wait_timeout(real, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.real = Some(real);
        (
            guard,
            WaitTimeoutResult {
                timed_out: res.timed_out(),
            },
        )
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        #[cfg(ppmsg_check)]
        if let Some((sh, tid)) = crate::model::active() {
            crate::model::model_cv_notify(&sh, tid, self.addr(), false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        #[cfg(ppmsg_check)]
        if let Some((sh, tid)) = crate::model::active() {
            crate::model::model_cv_notify(&sh, tid, self.addr(), true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Atomic types: plain `std::sync::atomic` re-exports in normal builds,
/// model-checked shims with a TSO store-buffer semantics under
/// `--cfg ppmsg_check`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(ppmsg_check))]
    pub use std::sync::atomic::{
        AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    };

    #[cfg(ppmsg_check)]
    pub use checked::{AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize};

    #[cfg(ppmsg_check)]
    mod checked {
        use super::Ordering;
        use crate::model;
        use std::fmt;

        fn is_sc(ord: Ordering) -> bool {
            matches!(ord, Ordering::SeqCst)
        }

        macro_rules! model_atomic_uint {
            ($(#[$doc:meta])* $name:ident, $raw:ty, $std:ty, $mask:expr) => {
                $(#[$doc])*
                pub struct $name {
                    cell: $std,
                }

                impl $name {
                    /// Create a new atomic with the given initial value.
                    pub const fn new(v: $raw) -> Self {
                        Self { cell: <$std>::new(v) }
                    }

                    fn addr(&self) -> usize {
                        &self.cell as *const $std as usize
                    }

                    fn init(&self) -> u64 {
                        self.cell.load(Ordering::Relaxed) as u64
                    }

                    /// Load the value.
                    pub fn load(&self, ord: Ordering) -> $raw {
                        if let Some((sh, tid)) = model::active() {
                            model::model_volatile_load(
                                &sh, tid, self.addr(), self.init(), is_sc(ord), stringify!($name),
                            ) as $raw
                        } else {
                            self.cell.load(ord)
                        }
                    }

                    /// Store a value.  Non-`SeqCst` stores sit in the model's
                    /// per-thread store buffer until flushed.
                    pub fn store(&self, v: $raw, ord: Ordering) {
                        if let Some((sh, tid)) = model::active() {
                            model::model_volatile_store(
                                &sh, tid, self.addr(), self.init(), v as u64 & $mask,
                                is_sc(ord), stringify!($name),
                            );
                        } else {
                            self.cell.store(v, ord);
                        }
                    }

                    /// Swap, returning the previous value.
                    pub fn swap(&self, v: $raw, ord: Ordering) -> $raw {
                        if let Some((sh, tid)) = model::active() {
                            model::model_rmw(
                                &sh, tid, self.addr(), self.init(),
                                |_| Some(v as u64 & $mask), stringify!($name),
                            ) as $raw
                        } else {
                            self.cell.swap(v, ord)
                        }
                    }

                    /// Add, returning the previous value (wrapping).
                    pub fn fetch_add(&self, v: $raw, ord: Ordering) -> $raw {
                        if let Some((sh, tid)) = model::active() {
                            model::model_rmw(
                                &sh, tid, self.addr(), self.init(),
                                |old| Some(old.wrapping_add(v as u64) & $mask),
                                stringify!($name),
                            ) as $raw
                        } else {
                            self.cell.fetch_add(v, ord)
                        }
                    }

                    /// Subtract, returning the previous value (wrapping).
                    pub fn fetch_sub(&self, v: $raw, ord: Ordering) -> $raw {
                        if let Some((sh, tid)) = model::active() {
                            model::model_rmw(
                                &sh, tid, self.addr(), self.init(),
                                |old| Some(old.wrapping_sub(v as u64) & $mask),
                                stringify!($name),
                            ) as $raw
                        } else {
                            self.cell.fetch_sub(v, ord)
                        }
                    }

                    /// Bitwise-or, returning the previous value.
                    pub fn fetch_or(&self, v: $raw, ord: Ordering) -> $raw {
                        if let Some((sh, tid)) = model::active() {
                            model::model_rmw(
                                &sh, tid, self.addr(), self.init(),
                                |old| Some((old | v as u64) & $mask), stringify!($name),
                            ) as $raw
                        } else {
                            self.cell.fetch_or(v, ord)
                        }
                    }

                    /// Bitwise-and, returning the previous value.
                    pub fn fetch_and(&self, v: $raw, ord: Ordering) -> $raw {
                        if let Some((sh, tid)) = model::active() {
                            model::model_rmw(
                                &sh, tid, self.addr(), self.init(),
                                |old| Some(old & v as u64 & $mask), stringify!($name),
                            ) as $raw
                        } else {
                            self.cell.fetch_and(v, ord)
                        }
                    }

                    /// Maximum, returning the previous value.
                    pub fn fetch_max(&self, v: $raw, ord: Ordering) -> $raw {
                        if let Some((sh, tid)) = model::active() {
                            model::model_rmw(
                                &sh, tid, self.addr(), self.init(),
                                |old| Some(old.max(v as u64) & $mask), stringify!($name),
                            ) as $raw
                        } else {
                            self.cell.fetch_max(v, ord)
                        }
                    }

                    /// Compare-and-exchange: `Ok(previous)` on success,
                    /// `Err(actual)` on failure.
                    pub fn compare_exchange(
                        &self,
                        current: $raw,
                        new: $raw,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$raw, $raw> {
                        if let Some((sh, tid)) = model::active() {
                            let old = model::model_rmw(
                                &sh, tid, self.addr(), self.init(),
                                |old| {
                                    if old == current as u64 & $mask {
                                        Some(new as u64 & $mask)
                                    } else {
                                        None
                                    }
                                },
                                stringify!($name),
                            ) as $raw;
                            if old == current {
                                Ok(old)
                            } else {
                                Err(old)
                            }
                        } else {
                            self.cell.compare_exchange(current, new, success, failure)
                        }
                    }

                    /// Weak compare-and-exchange (never fails spuriously in
                    /// the model; delegates to the strong form).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $raw,
                        new: $raw,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$raw, $raw> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Mutable access without synchronization.
                    pub fn get_mut(&mut self) -> &mut $raw {
                        self.cell.get_mut()
                    }

                    /// Consume the atomic, returning the value.
                    pub fn into_inner(self) -> $raw {
                        self.cell.into_inner()
                    }
                }

                impl fmt::Debug for $name {
                    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        fmt::Debug::fmt(&self.cell, f)
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        Self::new(0)
                    }
                }
            };
        }

        model_atomic_uint!(
            /// Model-checked stand-in for `std::sync::atomic::AtomicUsize`.
            AtomicUsize, usize, std::sync::atomic::AtomicUsize, u64::MAX
        );
        model_atomic_uint!(
            /// Model-checked stand-in for `std::sync::atomic::AtomicU64`.
            AtomicU64, u64, std::sync::atomic::AtomicU64, u64::MAX
        );
        model_atomic_uint!(
            /// Model-checked stand-in for `std::sync::atomic::AtomicU32`.
            AtomicU32, u32, std::sync::atomic::AtomicU32, 0xffff_ffffu64
        );
        model_atomic_uint!(
            /// Model-checked stand-in for `std::sync::atomic::AtomicU16`.
            AtomicU16, u16, std::sync::atomic::AtomicU16, 0xffffu64
        );
        model_atomic_uint!(
            /// Model-checked stand-in for `std::sync::atomic::AtomicU8`.
            AtomicU8, u8, std::sync::atomic::AtomicU8, 0xffu64
        );

        /// Model-checked stand-in for `std::sync::atomic::AtomicBool`.
        pub struct AtomicBool {
            cell: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Create a new atomic with the given initial value.
            pub const fn new(v: bool) -> Self {
                Self {
                    cell: std::sync::atomic::AtomicBool::new(v),
                }
            }

            fn addr(&self) -> usize {
                &self.cell as *const std::sync::atomic::AtomicBool as usize
            }

            fn init(&self) -> u64 {
                self.cell.load(Ordering::Relaxed) as u64
            }

            /// Load the value.
            pub fn load(&self, ord: Ordering) -> bool {
                if let Some((sh, tid)) = model::active() {
                    model::model_volatile_load(
                        &sh,
                        tid,
                        self.addr(),
                        self.init(),
                        is_sc(ord),
                        "AtomicBool",
                    ) != 0
                } else {
                    self.cell.load(ord)
                }
            }

            /// Store a value.
            pub fn store(&self, v: bool, ord: Ordering) {
                if let Some((sh, tid)) = model::active() {
                    model::model_volatile_store(
                        &sh,
                        tid,
                        self.addr(),
                        self.init(),
                        v as u64,
                        is_sc(ord),
                        "AtomicBool",
                    );
                } else {
                    self.cell.store(v, ord);
                }
            }

            /// Swap, returning the previous value.
            pub fn swap(&self, v: bool, ord: Ordering) -> bool {
                if let Some((sh, tid)) = model::active() {
                    model::model_rmw(
                        &sh,
                        tid,
                        self.addr(),
                        self.init(),
                        |_| Some(v as u64),
                        "AtomicBool",
                    ) != 0
                } else {
                    self.cell.swap(v, ord)
                }
            }

            /// Compare-and-exchange: `Ok(previous)` on success.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                if let Some((sh, tid)) = model::active() {
                    let old = model::model_rmw(
                        &sh,
                        tid,
                        self.addr(),
                        self.init(),
                        |old| {
                            if old == current as u64 {
                                Some(new as u64)
                            } else {
                                None
                            }
                        },
                        "AtomicBool",
                    ) != 0;
                    if old == current {
                        Ok(old)
                    } else {
                        Err(old)
                    }
                } else {
                    self.cell.compare_exchange(current, new, success, failure)
                }
            }

            /// Mutable access without synchronization.
            pub fn get_mut(&mut self) -> &mut bool {
                self.cell.get_mut()
            }
        }

        impl fmt::Debug for AtomicBool {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.cell, f)
            }
        }

        impl Default for AtomicBool {
            fn default() -> Self {
                Self::new(false)
            }
        }
    }
}
