//! Thread spawn/join shims.
//!
//! Inside an active model run (under `--cfg ppmsg_check`), spawned closures
//! become *controlled threads*: real OS threads serialized by the model
//! scheduler, with spawn and join as explorable yield points.  Outside a run
//! this is a thin wrapper over `std::thread`.
//!
//! Harness threads return `()`; ship results out through shared state (the
//! same restriction loom imposes in practice).

/// Handle to a spawned harness thread.
pub struct JoinHandle {
    inner: Inner,
}

enum Inner {
    Os(std::thread::JoinHandle<()>),
    #[cfg(ppmsg_check)]
    Model {
        tid: crate::model::Tid,
    },
}

/// Spawn a harness thread.  A controlled thread under an active model run,
/// otherwise a plain `std::thread::spawn`.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    #[cfg(ppmsg_check)]
    if let Some((sh, tid)) = crate::model::active() {
        let new_tid = crate::model::model_spawn(&sh, tid, f);
        return JoinHandle {
            inner: Inner::Model { tid: new_tid },
        };
    }
    JoinHandle {
        inner: Inner::Os(std::thread::spawn(f)),
    }
}

impl JoinHandle {
    /// Wait for the thread to finish.  Inside a model run this is a blocking
    /// scheduler transition; a panic in the joined thread is reported by the
    /// model itself.  Outside a run, a panic in the joined thread is
    /// propagated.
    pub fn join(self) {
        match self.inner {
            Inner::Os(h) => {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            #[cfg(ppmsg_check)]
            Inner::Model { tid } => {
                let (sh, me) =
                    crate::model::active().expect("model JoinHandle joined outside its model run");
                crate::model::model_join(&sh, me, tid);
            }
        }
    }
}

impl std::fmt::Debug for JoinHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Os(_) => f.write_str("JoinHandle(os)"),
            #[cfg(ppmsg_check)]
            Inner::Model { tid } => write!(f, "JoinHandle(model t{tid})"),
        }
    }
}
