//! The PR-7 many-peer benchmark, in two parts, written to `BENCH_PR7.json`
//! at the repository root:
//!
//! * **Part A — real sockets.** One reactor-hosted server endpoint serves
//!   1024 concurrent client endpoints (real UDP sockets, spread across a
//!   few client-side reactors so the client side is not the bottleneck) in
//!   a request/reply workload, once per reliability mode.  The number
//!   reported is wall-clock nanoseconds per completed request/reply round
//!   trip at full concurrency — the workload the reactor's batched
//!   `recvmmsg`/`sendmmsg` path and O(1) peer/timer structures exist for.
//! * **Part B — seeded loss.** The deterministic chaos cluster replays the
//!   *same* seeded 30%-loss fault plane under go-back-N and under
//!   selective repeat and reports each mode's retransmission counter.
//!   Go-back-N resends the whole window from the lost frame; selective
//!   repeat resends only what the SACKs reveal as missing, so its counter
//!   must come out far smaller — the run asserts `sr < gbn` so a
//!   regression fails the bench rather than just skewing a number.
//!
//! `BENCH_QUICK=1` shrinks rounds and seeds for the CI smoke job.

use bytes::Bytes;
use push_pull_messaging::core::ANY_SOURCE;
use push_pull_messaging::prelude::*;
use std::time::{Duration, Instant};

const CLIENTS: usize = 1024;
const CLIENT_REACTORS: usize = 4;
const REQ_LEN: usize = 64;
const TIMEOUT: Duration = Duration::from_secs(120);

fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn wait_raw(ep: &ReactorEndpoint, op: OpId) -> Completion {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        if let Some(done) = ep.take_completion(op) {
            return done;
        }
        if Instant::now() >= deadline {
            panic!("bench operation {op:?} on {} timed out", ep.id());
        }
        std::thread::sleep(Duration::from_micros(50));
    }
}

// ---------------------------------------------------------------------------
// Part A: 1024 real-socket clients against one reactor endpoint
// ---------------------------------------------------------------------------

struct ManyClients {
    // Reactors must outlive their endpoints' traffic; order matters only
    // for dropping after the run.
    _server_reactor: Reactor,
    _client_reactors: Vec<Reactor>,
    server: ReactorEndpoint,
    clients: Vec<ReactorEndpoint>,
}

fn many_clients_setup(mode: ReliabilityMode) -> ManyClients {
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(8 << 20);
    let config = EndpointConfig::new().reliability(mode);
    let server_reactor = Reactor::new().expect("spawn server reactor");
    let server = server_reactor
        .add_endpoint_with(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0", &config)
        .expect("bind server endpoint");
    let server_addr = server.local_addr().unwrap();
    let client_reactors: Vec<Reactor> = (0..CLIENT_REACTORS)
        .map(|_| Reactor::new().expect("spawn client reactor"))
        .collect();
    let clients: Vec<ReactorEndpoint> = (0..CLIENTS)
        .map(|i| {
            let ep = client_reactors[i % CLIENT_REACTORS]
                .add_endpoint_with(
                    ProcessId::new(1, i as u32),
                    proto.clone(),
                    "127.0.0.1:0",
                    &config,
                )
                .expect("bind client endpoint");
            ep.add_peer(server.id(), server_addr);
            server.add_peer(ep.id(), ep.local_addr().unwrap());
            ep
        })
        .collect();
    ManyClients {
        _server_reactor: server_reactor,
        _client_reactors: client_reactors,
        server,
        clients,
    }
}

/// One full round: every client issues a request, the server receives all
/// of them (wildcard) and replies to each source, every client claims its
/// reply.  All completions are claimed so the retention caps never evict.
fn many_clients_round(bench: &ManyClients, req: &Bytes) {
    let recvs: Vec<RecvOp> = (0..CLIENTS)
        .map(|_| {
            bench
                .server
                .post_recv(ANY_SOURCE, Tag(1), REQ_LEN, TruncationPolicy::Error)
                .expect("server post_recv")
        })
        .collect();
    let reply_recvs: Vec<RecvOp> = bench
        .clients
        .iter()
        .map(|c| {
            c.post_recv(bench.server.id(), Tag(2), REQ_LEN, TruncationPolicy::Error)
                .expect("client post_recv")
        })
        .collect();
    let sends: Vec<SendOp> = bench
        .clients
        .iter()
        .map(|c| {
            c.post_send(bench.server.id(), Tag(1), req.clone())
                .expect("client post_send")
        })
        .collect();
    let mut replies = Vec::with_capacity(CLIENTS);
    for op in recvs {
        let done = wait_raw(&bench.server, OpId::Recv(op));
        assert_eq!(done.status, Status::Ok);
        replies.push(
            bench
                .server
                .post_send(done.peer, Tag(2), req.clone())
                .expect("server reply"),
        );
    }
    for (c, op) in bench.clients.iter().zip(reply_recvs) {
        let done = wait_raw(c, OpId::Recv(op));
        assert_eq!(done.status, Status::Ok);
    }
    for (c, op) in bench.clients.iter().zip(sends) {
        wait_raw(c, OpId::Send(op));
    }
    for op in replies {
        wait_raw(&bench.server, OpId::Send(op));
    }
}

/// Nanoseconds per completed request/reply at 1024-client concurrency.
fn bench_many_clients(mode: ReliabilityMode, rounds: usize) -> f64 {
    let bench = many_clients_setup(mode);
    let req = Bytes::from(vec![0x5Au8; REQ_LEN]);
    // Warmup round: opens every ARQ channel and faults in the peer tables.
    many_clients_round(&bench, &req);
    let start = Instant::now();
    for _ in 0..rounds {
        many_clients_round(&bench, &req);
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let retx = bench.server.stats().retransmits;
    println!(
        "  server stats: {} recvs, {} retransmits",
        bench.server.stats().recvs_completed,
        retx
    );
    elapsed / (rounds * CLIENTS) as f64
}

// ---------------------------------------------------------------------------
// Part B: identical seeded loss, go-back-N vs selective repeat
// ---------------------------------------------------------------------------

/// Sender-side retransmissions accumulated over `seeds` runs of a 64 KiB
/// transfer through the chaos cluster at 30% frame loss.  The fault plane
/// derives every decision from the seed, so both reliability modes face
/// the same loss process.
fn seeded_loss_retransmits(mode: ReliabilityMode, seeds: u64) -> u64 {
    let mut total = 0;
    for seed in 1..=seeds {
        let chaos = ChaosConfig::new(seed).with_drop(0.3).with_partition(None);
        let cluster = ChaosCluster::new(
            ProtocolConfig::paper_internode()
                .with_pushed_buffer(1 << 20)
                .with_reliability(mode),
            chaos,
        );
        let a = Endpoint::new(cluster.add_endpoint(ProcessId::new(0, 0)));
        let b = Endpoint::new(cluster.add_endpoint(ProcessId::new(1, 0)));
        let data = Bytes::from(vec![0xB7u8; 64 * 1024]);
        let recv = b
            .post_recv(a.local_id(), Tag(1), data.len(), TruncationPolicy::Error)
            .unwrap();
        a.post_send(b.local_id(), Tag(1), data.clone()).unwrap();
        let done = b.wait(OpId::Recv(recv), TIMEOUT).expect("chaos transfer");
        assert_eq!(done.data.as_deref(), Some(&data[..]));
        total += a.stats().retransmits;
    }
    total
}

// ---------------------------------------------------------------------------

fn write_bench_json(rows: &[(String, f64)]) {
    let mut json = String::from(
        "{\n  \"pr\": 7,\n  \"unit\": \"ns/req for many_clients rows, frame counts for seeded_loss rows\",\n  \"benches\": {\n",
    );
    for (i, (name, value)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write BENCH_PR7.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let rounds = if quick_mode() { 2 } else { 8 };
    let seeds = if quick_mode() { 3 } else { 8 };
    let mut rows: Vec<(String, f64)> = Vec::new();

    for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
        println!(
            "many_clients: {CLIENTS} clients, {rounds} rounds, {}",
            mode.label()
        );
        let ns = bench_many_clients(mode, rounds);
        let rps = 1e9 / ns;
        println!("  {:.1} ns/req ({rps:.0} req/s sustained)", ns);
        let key = match mode {
            ReliabilityMode::GoBackN => "many_clients_1024_gbn_ns_per_req",
            ReliabilityMode::SelectiveRepeat => "many_clients_1024_sr_ns_per_req",
        };
        rows.push((key.into(), ns));
    }

    println!("seeded_loss: 64 KiB transfers, 30% loss, {seeds} seeds");
    let gbn = seeded_loss_retransmits(ReliabilityMode::GoBackN, seeds);
    let sr = seeded_loss_retransmits(ReliabilityMode::SelectiveRepeat, seeds);
    println!(
        "  retransmits: go-back-N {gbn}, selective-repeat {sr} ({:.1}x)",
        gbn as f64 / sr.max(1) as f64
    );
    assert!(
        sr < gbn,
        "selective repeat must retransmit fewer frames than go-back-N \
         under identical seeded loss (sr={sr}, gbn={gbn})"
    );
    rows.push(("seeded_loss_gbn_retransmits".into(), gbn as f64));
    rows.push(("seeded_loss_sr_retransmits".into(), sr as f64));
    rows.push((
        "seeded_loss_retx_ratio_gbn_over_sr".into(),
        gbn as f64 / sr.max(1) as f64,
    ));

    write_bench_json(&rows);
}
