//! The PR-8 multi-core benchmark, in two parts, written to `BENCH_PR8.json`
//! at the repository root:
//!
//! * **Part A — executor scaling.** Eight disjoint intranode endpoint pairs
//!   each run a 4 KiB async ping-pong as an independent task; the task set
//!   executes on the work-stealing [`Pool`] at 1, 2 and 4 workers.  The
//!   number reported is wall-clock nanoseconds per completed round trip
//!   aggregated over all pairs — on a multi-core machine the pairs' engine
//!   work (disjoint shard state, disjoint completion mailboxes) spreads
//!   across workers and the per-round-trip cost drops toward linearly with
//!   the worker count; on a single hardware thread the three rows simply
//!   coincide.
//! * **Part B — sharded fan-in.** Eight producer threads blast one consumer
//!   endpoint configured with 1 engine shard and again with 4.  With one
//!   shard every post and every routed packet serializes on a single engine
//!   lock; with four, each producer lands on its peer's shard.  Reported as
//!   nanoseconds per delivered message for each configuration.
//!
//! `BENCH_QUICK=1` shrinks the round counts for the CI smoke job.  The
//! `*_scaling_w1_over_w4` row is the aggregate Part-A speedup (≥ 1.0;
//! exactly ~1.0 on a single-core runner) and is reported for humans, not
//! gated — the runner-relative regression gate uses the ns rows.

use bytes::Bytes;
use push_pull_messaging::executor::Pool;
use push_pull_messaging::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAIRS: usize = 8;
const MSG_LEN: usize = 4096;
const FANIN_PRODUCERS: usize = 8;
const FANIN_MSG_LEN: usize = 1024;
const TIMEOUT: Duration = Duration::from_secs(120);

fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

// ---------------------------------------------------------------------------
// Part A: disjoint ping-pong pairs on the work-stealing pool
// ---------------------------------------------------------------------------

type Intra = Arc<Endpoint<HostEndpoint>>;

fn pingpong_pairs() -> Vec<(Intra, Intra)> {
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20),
    );
    (0..PAIRS as u32)
        .map(|p| {
            (
                Arc::new(Endpoint::new(cluster.add_endpoint(2 * p))),
                Arc::new(Endpoint::new(cluster.add_endpoint(2 * p + 1))),
            )
        })
        .collect()
}

/// Runs `rounds` 4 KiB round trips on every pair concurrently over a
/// `workers`-thread pool, returning wall-clock ns per round trip.
fn pingpong_ns_per_rt(pairs: &[(Intra, Intra)], workers: usize, rounds: usize) -> f64 {
    let pool = Pool::new(workers);
    let run = |rounds: usize| {
        for (a, b) in pairs {
            let (a, b) = (a.clone(), b.clone());
            pool.spawn(async move {
                let ping = Bytes::from(vec![0xA5u8; MSG_LEN]);
                let pong = Bytes::from(vec![0x5Au8; MSG_LEN]);
                for _ in 0..rounds {
                    let reply = a
                        .recv(b.local_id(), Tag(2), MSG_LEN, TruncationPolicy::Error)
                        .expect("post pong recv");
                    let request = b
                        .recv(a.local_id(), Tag(1), MSG_LEN, TruncationPolicy::Error)
                        .expect("post ping recv");
                    a.send(b.local_id(), Tag(1), ping.clone())
                        .expect("post ping")
                        .await;
                    request.await;
                    b.send(a.local_id(), Tag(2), pong.clone())
                        .expect("post pong")
                        .await;
                    reply.await;
                }
            });
        }
        pool.wait_idle();
    };
    // Warmup: faults in the per-peer channels, the pool's queues and the
    // lazily-grown engine buffers.  Proportional to the measured rounds so
    // the first configuration measured is not charged the one-time costs.
    run(rounds / 4 + 2);
    let start = Instant::now();
    run(rounds);
    start.elapsed().as_nanos() as f64 / (PAIRS * rounds) as f64
}

// ---------------------------------------------------------------------------
// Part B: producer fan-in, 1 engine shard vs 4
// ---------------------------------------------------------------------------

/// Eight producer threads each push `msgs` 1 KiB messages into one consumer
/// whose engine runs on `shards` shards; returns wall-clock ns per message.
fn fanin_ns_per_msg(shards: usize, msgs: usize) -> f64 {
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(4 << 20),
    );
    let consumer = Arc::new(Endpoint::new(cluster.add_endpoint_sharded(0, shards)));
    let producers: Vec<_> = (1..=FANIN_PRODUCERS as u32)
        .map(|rank| Endpoint::new(cluster.add_endpoint(rank)))
        .collect();
    let payload = Bytes::from(vec![0xC3u8; FANIN_MSG_LEN]);

    let pool = Pool::new(4);
    for producer in &producers {
        let src = producer.local_id();
        let consumer = consumer.clone();
        pool.spawn(async move {
            for seq in 0..msgs as u32 {
                let done = consumer
                    .recv(src, Tag(seq), FANIN_MSG_LEN, TruncationPolicy::Error)
                    .expect("post fan-in recv")
                    .await;
                assert_eq!(done.status, Status::Ok);
            }
        });
    }

    let start = Instant::now();
    let senders: Vec<_> = producers
        .into_iter()
        .map(|producer| {
            let payload = payload.clone();
            let consumer_id = consumer.local_id();
            std::thread::spawn(move || {
                for seq in 0..msgs as u32 {
                    producer
                        .send_blocking(consumer_id, Tag(seq), payload.clone(), TIMEOUT)
                        .expect("fan-in send lost");
                }
            })
        })
        .collect();
    for sender in senders {
        sender.join().unwrap();
    }
    pool.wait_idle();
    start.elapsed().as_nanos() as f64 / (FANIN_PRODUCERS * msgs) as f64
}

// ---------------------------------------------------------------------------

fn write_bench_json(rows: &[(String, f64)]) {
    let mut json = String::from(
        "{\n  \"pr\": 8,\n  \"unit\": \"ns/rt for pingpong rows, ns/msg for fanin rows, ratio for scaling rows\",\n  \"benches\": {\n",
    );
    for (i, (name, value)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write BENCH_PR8.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let rounds = if quick_mode() { 40 } else { 400 };
    let fanin_msgs = if quick_mode() { 100 } else { 1000 };
    let mut rows: Vec<(String, f64)> = Vec::new();

    println!("multi_core pingpong: {PAIRS} pairs x {rounds} x {MSG_LEN} B round trips");
    let pairs = pingpong_pairs();
    let mut w1_ns = 0.0;
    for workers in [1usize, 2, 4] {
        let ns = pingpong_ns_per_rt(&pairs, workers, rounds);
        let rps = 1e9 / ns;
        println!("  {workers} workers: {ns:.1} ns/rt ({rps:.0} rt/s aggregate)");
        rows.push((format!("multi_core_pingpong_w{workers}_ns_per_rt"), ns));
        if workers == 1 {
            w1_ns = ns;
        } else if workers == 4 {
            let scaling = w1_ns / ns;
            println!("  scaling w1/w4: {scaling:.2}x");
            rows.push(("multi_core_scaling_w1_over_w4".into(), scaling));
        }
    }

    println!("multi_core fanin: {FANIN_PRODUCERS} producers x {fanin_msgs} x {FANIN_MSG_LEN} B");
    for shards in [1usize, 4] {
        let ns = fanin_ns_per_msg(shards, fanin_msgs);
        println!("  {shards} shard(s): {ns:.1} ns/msg");
        rows.push((format!("multi_core_fanin_{shards}shard_ns_per_msg"), ns));
    }

    write_bench_json(&rows);
}
