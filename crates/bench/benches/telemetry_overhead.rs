//! The PR-10 recorder-overhead benchmark, written to `BENCH_PR10.json` at
//! the repository root: a single-threaded 4 KiB intranode ping-pong measured
//! under three telemetry configurations —
//!
//! * `telemetry_on_pingpong_ns_per_rt` — the default build, flight recorder
//!   live (every op/frame event recorded, metrics bumped);
//! * `telemetry_idle_pingpong_ns_per_rt` — same build with the recorder
//!   runtime-disabled (`recorder::set_enabled(false)`): the cost of the
//!   enabled-check alone;
//! * `telemetry_compiled_out_pingpong_ns_per_rt` — the identical workload
//!   built with `--no-default-features`, every telemetry call site compiled
//!   to nothing.
//!
//! The gated number, `telemetry_overhead_ratio`, is **on / idle within one
//! process**.  That is deliberate: the live-vs-disabled toggle is the only
//! drift-free comparison available — same binary, same pages, same process —
//! and it isolates exactly the work the recorder adds (ring writes, clock
//! stamps).  Comparing across the two *builds* instead puts ±5–10% of
//! code-layout and ASLR luck straight into the gate (measured on this class
//! of VM: the idle-vs-compiled-out gap wanders from −2% to +8% across
//! process launches while on-vs-idle holds within ±0.5%).  With
//! `TELEMETRY_OVERHEAD_GATE=1` in the environment the run fails if the ratio
//! exceeds 1.10, making the <10% recorder-overhead budget a hard CI gate.
//!
//! One `cargo bench` invocation can only be one feature configuration, so
//! the bench *merges* its rows into an existing `BENCH_PR10.json` rather
//! than overwriting it: the `--no-default-features` invocation contributes
//! the compiled-out row and the informational cross-build ratio
//! `telemetry_vs_compiled_out_calibrated` (each build's ping-pong divided by
//! its own [`calibration_spin_ns`] to cancel machine-speed drift — layout
//! noise remains, so this row is reported, not gated).
//!
//! Numbers are min-of-samples ns per round trip (two 4 KiB messages);
//! `BENCH_QUICK=1` shortens sampling for CI.

use bytes::Bytes;
use push_pull_messaging::prelude::*;
use std::time::{Duration, Instant};

const MSG_LEN: usize = 4096;
const TIMEOUT: Duration = Duration::from_secs(30);

fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Min-of-samples wall-clock measurement (ns per call of `f`).  Unlike the
/// medians `engine_micro` compares against a same-process baseline, the
/// overhead ratio here divides numbers from two *separate processes* (the
/// two feature builds), so scheduler and frequency drift between the runs
/// would land straight in the gate.  The minimum is the standard antidote:
/// interference is strictly additive, so min-of-many approaches the
/// noise-free cost of the workload in each process independently.
fn ns_per_iter<F: FnMut()>(mut f: F) -> f64 {
    let (target_ms, samples) = if quick_mode() { (5, 9) } else { (20, 11) };
    let mut batch: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        if start.elapsed().as_millis() >= target_ms || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    best
}

/// ns per iteration of a fixed pure-CPU workload (a checksum sweep over a
/// 4 KiB buffer), measured identically in both feature builds.  Telemetry
/// touches nothing here, so the row tracks only how fast this machine runs
/// right now; dividing each build's ping-pong number by its own spin cancels
/// frequency/steal drift between the two processes to first order.
fn calibration_spin_ns() -> f64 {
    let mut buf = [0u8; MSG_LEN];
    for (i, byte) in buf.iter_mut().enumerate() {
        *byte = (i * 31 % 251) as u8;
    }
    ns_per_iter(|| {
        let mut acc = 0u64;
        for chunk in std::hint::black_box(&buf).chunks_exact(8) {
            acc = acc
                .rotate_left(7)
                .wrapping_add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        std::hint::black_box(acc);
    })
}

/// ns per 4 KiB round trip (a→b then b→a) on a fresh intranode pair.
fn pingpong_ns_per_rt() -> f64 {
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20),
    );
    let a = Endpoint::new(cluster.add_endpoint(0));
    let b = Endpoint::new(cluster.add_endpoint(1));
    let ping = Bytes::from(vec![0xA5u8; MSG_LEN]);
    let pong = Bytes::from(vec![0x5Au8; MSG_LEN]);
    ns_per_iter(|| {
        let recv = b
            .post_recv(a.local_id(), Tag(1), MSG_LEN, TruncationPolicy::Error)
            .unwrap();
        a.send_blocking(b.local_id(), Tag(1), ping.clone(), TIMEOUT)
            .expect("ping");
        b.wait(OpId::Recv(recv), TIMEOUT).expect("ping recv");
        let recv = a
            .post_recv(b.local_id(), Tag(2), MSG_LEN, TruncationPolicy::Error)
            .unwrap();
        b.send_blocking(a.local_id(), Tag(2), pong.clone(), TIMEOUT)
            .expect("pong");
        a.wait(OpId::Recv(recv), TIMEOUT).expect("pong recv");
    })
}

/// Every row this bench may produce, in output order.  Rows measured by the
/// *other* feature configuration are preserved from the existing JSON.
const ROWS: [&str; 7] = [
    "telemetry_on_pingpong_ns_per_rt",
    "telemetry_idle_pingpong_ns_per_rt",
    "telemetry_compiled_out_pingpong_ns_per_rt",
    "telemetry_on_spin_ns_per_iter",
    "telemetry_compiled_out_spin_ns_per_iter",
    "telemetry_overhead_ratio",
    "telemetry_vs_compiled_out_calibrated",
];

fn json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json")
}

/// Pulls a `"name": value` row out of the existing JSON, if present.  The
/// file is machine-written by this bench, so a string scan suffices (the
/// workspace vendors no JSON parser).
fn read_existing_row(contents: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let tail = &contents[contents.find(&needle)? + needle.len()..];
    let value: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    value.parse().ok()
}

fn write_merged(measured: &[(&str, f64)]) -> Vec<(String, f64)> {
    let existing = std::fs::read_to_string(json_path()).unwrap_or_default();
    let mut rows: Vec<(String, f64)> = Vec::new();
    for name in ROWS {
        let fresh = measured.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        if let Some(value) = fresh.or_else(|| read_existing_row(&existing, name)) {
            rows.push((name.to_string(), value));
        }
    }
    // Derived rows are recomputed whenever their operands are on hand,
    // never carried stale.  The gated ratio is in-process on/idle; the
    // cross-build row normalizes each build's ping-pong by its own
    // calibration spin so it compares protocol work per unit of machine
    // speed, not two machine states.
    rows.retain(|(n, _)| {
        n != "telemetry_overhead_ratio" && n != "telemetry_vs_compiled_out_calibrated"
    });
    let row = |name: &str| rows.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let derived = [
        (
            "telemetry_overhead_ratio",
            match (
                row("telemetry_on_pingpong_ns_per_rt"),
                row("telemetry_idle_pingpong_ns_per_rt"),
            ) {
                (Some(on), Some(idle)) => Some(on / idle),
                _ => None,
            },
        ),
        (
            "telemetry_vs_compiled_out_calibrated",
            match (
                row("telemetry_on_pingpong_ns_per_rt"),
                row("telemetry_compiled_out_pingpong_ns_per_rt"),
                row("telemetry_on_spin_ns_per_iter"),
                row("telemetry_compiled_out_spin_ns_per_iter"),
            ) {
                (Some(on), Some(out), Some(on_spin), Some(out_spin)) => {
                    Some((on / on_spin) / (out / out_spin))
                }
                _ => None,
            },
        ),
    ];
    for (name, value) in derived {
        if let Some(value) = value {
            rows.push((name.to_string(), value));
        }
    }

    let mut json = String::from(
        "{\n  \"pr\": 10,\n  \"unit\": \"ns/rt 4KiB intranode pingpong; ratio for the overhead row\",\n  \"benches\": {\n",
    );
    for (i, (name, value)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {value:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(json_path(), json) {
        eprintln!("failed to write BENCH_PR10.json: {e}");
    } else {
        println!("wrote {}", json_path());
    }
    rows
}

fn main() {
    let mut measured: Vec<(&str, f64)> = Vec::new();

    #[cfg(feature = "telemetry")]
    {
        use push_pull_messaging::core::telemetry::recorder;
        assert!(recorder::enabled(), "recorder must default to on");
        let on = pingpong_ns_per_rt();
        println!("telemetry on (recorder live):     {on:.1} ns/rt");
        measured.push(("telemetry_on_pingpong_ns_per_rt", on));

        recorder::set_enabled(false);
        let idle = pingpong_ns_per_rt();
        recorder::set_enabled(true);
        println!("telemetry on (recorder disabled): {idle:.1} ns/rt");
        measured.push(("telemetry_idle_pingpong_ns_per_rt", idle));

        let spin = calibration_spin_ns();
        println!("calibration spin:                 {spin:.1} ns/iter");
        measured.push(("telemetry_on_spin_ns_per_iter", spin));
    }

    #[cfg(not(feature = "telemetry"))]
    {
        let out = pingpong_ns_per_rt();
        println!("telemetry compiled out:           {out:.1} ns/rt");
        measured.push(("telemetry_compiled_out_pingpong_ns_per_rt", out));

        let spin = calibration_spin_ns();
        println!("calibration spin:                 {spin:.1} ns/iter");
        measured.push(("telemetry_compiled_out_spin_ns_per_iter", spin));
    }

    let rows = write_merged(&measured);
    if let Some((_, cross)) = rows
        .iter()
        .find(|(n, _)| n == "telemetry_vs_compiled_out_calibrated")
    {
        println!(
            "cross-build (calibrated, informational): {:+.1}%",
            (cross - 1.0) * 100.0
        );
    }
    if let Some((_, ratio)) = rows.iter().find(|(n, _)| n == "telemetry_overhead_ratio") {
        println!(
            "recorder overhead: {:.1}% (budget: <10%)",
            (ratio - 1.0) * 100.0
        );
        let gated =
            std::env::var_os("TELEMETRY_OVERHEAD_GATE").is_some_and(|v| v != "0" && !v.is_empty());
        if gated {
            assert!(
                *ratio < 1.10,
                "flight recorder overhead {:.1}% exceeds the 10% budget",
                (ratio - 1.0) * 100.0
            );
        }
    } else {
        println!("(run the telemetry build of this bench to produce the gated overhead ratio)");
    }
}
