//! E5 / Fig. 4 — internode single-trip latency under the optimisation
//! ablation (none / mask only / overlap only / full), BTP(1)=80, BTP(2)=680.

use criterion::{criterion_group, criterion_main, Criterion};
use ppmsg_bench::{print_figure, BENCH_ITERS};
use ppmsg_sim::experiments::{fig4_internode, fig4_sizes};

fn bench(c: &mut Criterion) {
    let points = fig4_internode(&fig4_sizes(), BENCH_ITERS);
    print_figure(
        "Figure 4: internode latency with optimisation ablation",
        &points,
    );

    let mut group = c.benchmark_group("fig4_internode");
    group.sample_size(10);
    group.bench_function("pingpong_1400B_all_variants", |b| {
        b.iter(|| fig4_internode(&[1400], 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
