//! E2/E6 — bandwidth sweeps and the headline numbers of the abstract
//! (7.5 us / 350.9 MB/s intranode, 34.9 us / 12.1 MB/s internode).

use criterion::{criterion_group, criterion_main, Criterion};
use ppmsg_bench::BENCH_ITERS;
use ppmsg_sim::experiments::{bandwidth_sweep, headline_numbers};

fn bench(c: &mut Criterion) {
    let sizes = [1024usize, 2048, 4000, 8192, 16384, 32768];
    println!("\n=== Intranode bandwidth (paper peak: 350.9 MB/s near 4000 B) ===");
    for p in bandwidth_sweep(true, &sizes, BENCH_ITERS) {
        println!("{:>10} B {:>10.1} MB/s", p.size, p.mb_per_s);
    }
    println!("\n=== Internode bandwidth (paper peak: 12.1 MB/s) ===");
    for p in bandwidth_sweep(false, &sizes, BENCH_ITERS) {
        println!("{:>10} B {:>10.1} MB/s", p.size, p.mb_per_s);
    }
    let h = headline_numbers(BENCH_ITERS);
    println!("\n=== Headline numbers (paper → measured) ===");
    println!(
        "intranode latency   7.5 us  -> {:.1} us",
        h.intranode_latency_us
    );
    println!(
        "intranode peak BW 350.9 MB/s -> {:.1} MB/s",
        h.intranode_peak_bw_mb_s
    );
    println!(
        "internode latency  34.9 us  -> {:.1} us",
        h.internode_latency_us
    );
    println!(
        "internode peak BW  12.1 MB/s -> {:.1} MB/s",
        h.internode_peak_bw_mb_s
    );
    println!(
        "translation ovhd  12-13 us  -> {:.1} us",
        h.translation_overhead_us
    );

    let mut group = c.benchmark_group("bandwidth");
    group.sample_size(10);
    group.bench_function("internode_8192B", |b| {
        b.iter(|| bandwidth_sweep(false, &[8192], 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
