//! E10 — the real host backend (modern hardware, not a paper figure): wall
//! clock latency and bandwidth of the intranode shared-memory fabric and the
//! UDP loopback transport.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppmsg_host::{HostCluster, ProcessId, ProtocolConfig, Tag, UdpEndpoint};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let timeout = Duration::from_secs(10);

    // Intranode shared-memory fabric.
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024),
    );
    let a = cluster.add_endpoint(0);
    let b = cluster.add_endpoint(1);
    let mut group = c.benchmark_group("host_intranode");
    for size in [16usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("pingpong_{size}B"), |bench| {
            let data = Bytes::from(vec![7u8; size]);
            bench.iter(|| {
                a.send(b.id(), Tag(1), data.clone());
                let got = b.recv(a.id(), Tag(1), size, timeout).unwrap();
                b.send(a.id(), Tag(2), got);
                a.recv(b.id(), Tag(2), size, timeout).unwrap()
            });
        });
    }
    group.finish();

    // Internode UDP loopback.
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(256 * 1024);
    let ua = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let ub = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
    ua.add_peer(ub.id(), ub.local_addr().unwrap());
    ub.add_peer(ua.id(), ua.local_addr().unwrap());
    let mut group = c.benchmark_group("host_udp_loopback");
    group.sample_size(20);
    for size in [16usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("pingpong_{size}B"), |bench| {
            let data = Bytes::from(vec![7u8; size]);
            bench.iter(|| {
                ua.send(ub.id(), Tag(1), data.clone());
                let got = ub.recv(ua.id(), Tag(1), size, timeout).unwrap();
                ub.send(ua.id(), Tag(2), got);
                ua.recv(ub.id(), Tag(2), size, timeout).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
