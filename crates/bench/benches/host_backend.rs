//! E10 — the real host backend (modern hardware, not a paper figure): wall
//! clock latency and bandwidth of the intranode shared-memory fabric and the
//! UDP loopback transport, driven through the `Endpoint` front-end exactly
//! as an application would.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppmsg_host::{HostCluster, ProcessId, ProtocolConfig, Tag, UdpEndpoint};
use push_pull_messaging::prelude::{Endpoint, OpId, RawTransport};
use std::time::Duration;

fn pingpong<T: RawTransport>(
    a: &Endpoint<T>,
    b: &Endpoint<T>,
    data: &Bytes,
    size: usize,
    timeout: Duration,
) {
    // Post the send, then receive: a large message only completes its send
    // once the receiver's pull has been served, so a blocking send before
    // the matching receive would deadlock.
    let s1 = a.post_send(b.local_id(), Tag(1), data.clone()).unwrap();
    let got = b
        .recv_blocking(a.local_id(), Tag(1), size, timeout)
        .unwrap();
    let s2 = b.post_send(a.local_id(), Tag(2), got).unwrap();
    a.recv_blocking(b.local_id(), Tag(2), size, timeout)
        .unwrap();
    a.wait(OpId::Send(s1), timeout).unwrap();
    b.wait(OpId::Send(s2), timeout).unwrap();
}

fn bench(c: &mut Criterion) {
    let timeout = Duration::from_secs(10);

    // Intranode shared-memory fabric.
    let cluster = HostCluster::new(
        0,
        ProtocolConfig::paper_intranode().with_pushed_buffer(256 * 1024),
    );
    let a = Endpoint::new(cluster.add_endpoint(0));
    let b = Endpoint::new(cluster.add_endpoint(1));
    let mut group = c.benchmark_group("host_intranode");
    for size in [16usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("pingpong_{size}B"), |bench| {
            let data = Bytes::from(vec![7u8; size]);
            bench.iter(|| pingpong(&a, &b, &data, size, timeout));
        });
    }
    group.finish();

    // Internode UDP loopback.
    let proto = ProtocolConfig::paper_internode().with_pushed_buffer(256 * 1024);
    let ua = UdpEndpoint::bind(ProcessId::new(0, 0), proto.clone(), "127.0.0.1:0").unwrap();
    let ub = UdpEndpoint::bind(ProcessId::new(1, 0), proto, "127.0.0.1:0").unwrap();
    ua.add_peer(ub.id(), ub.local_addr().unwrap());
    ub.add_peer(ua.id(), ua.local_addr().unwrap());
    let (ua, ub) = (Endpoint::new(ua), Endpoint::new(ub));
    let mut group = c.benchmark_group("host_udp_loopback");
    group.sample_size(20);
    for size in [16usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("pingpong_{size}B"), |bench| {
            let data = Bytes::from(vec![7u8; size]);
            bench.iter(|| pingpong(&ua, &ub, &data, size, timeout));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
