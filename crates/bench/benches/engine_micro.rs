//! Microbenchmarks of the protocol engine itself (no simulator, no I/O):
//! cost of posting sends/receives, relaying the resulting packets, matching
//! under pending-operation load, and the wire codec.
//!
//! Besides the Criterion groups, this bench measures the hot-path numbers
//! directly with `std::time::Instant` and writes them to `BENCH_PR5.json`
//! at the repository root: the PR-1 slab/bucket structure numbers and the
//! PR-2 operations-layer numbers (re-run so regressions against the
//! checked-in `BENCH_PR4.json` baseline are visible — CI's `bench-smoke`
//! job fails on >25% drift), the PR-3 async front-end ping-pong variants
//! (`block_on` single-task and `Driver` two-task) next to the synchronous
//! engine-level loop they wrap, the PR-4 vectored sends (scatter list vs
//! caller-coalesced single buffer), and the PR-5 additions: the wildcard
//! `peek_unexpected` probe re-measured against a deep unexpected backlog
//! (now an O(1) arrival-list head instead of the PR-2 linear scan) and
//! 8-rank broadcast / all-reduce collectives on the loopback cluster.
//!
//! Numbers are **median-of-samples** ns/op.  Setting `BENCH_QUICK=1`
//! shortens calibration and sampling for CI smoke runs; the medians get a
//! little noisier but stay well inside the smoke gate's 25% margin.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ppmsg_bench::baseline::{NaiveReceiveQueue, NaiveSendQueue};
use ppmsg_core::queues::{
    BufferQueue, PendingSend, PostedReceive, ReceiveQueue, SendQueue, UnexpectedKey,
};
use ppmsg_core::wire::PacketBufPool;
use ppmsg_core::{
    Action, BtpPolicy, BtpSplit, Endpoint, MessageId, OpId, OptFlags, Packet, PacketHeader,
    PacketKind, ProcessId, ProtocolConfig, ProtocolMode, PushPart, RecvBuf, RecvOp, SendOp,
    SendPayload, Tag, TruncationPolicy, ANY_SOURCE, ANY_TAG,
};
use push_pull_messaging::coll::Group;
use push_pull_messaging::prelude::{block_on, Driver, Endpoint as FrontEnd};
use push_pull_messaging::sim::{LoopbackCluster, LoopbackEndpoint};
use std::time::Instant;

/// `BENCH_QUICK=1` trades precision for wall-clock time (the CI smoke job).
fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn relay(sender: &mut Endpoint, receiver: &mut Endpoint) {
    loop {
        let mut progressed = false;
        for _ in 0..2 {
            while let Some(action) = sender.poll_action() {
                progressed = true;
                match action {
                    Action::Transmit { packet, .. } => receiver.handle_packet(sender.id(), packet),
                    Action::TransmitFrame { frame, .. } => {
                        receiver.handle_frame(sender.id(), frame)
                    }
                    _ => {}
                }
            }
            std::mem::swap(sender, receiver);
        }
        if !progressed {
            break;
        }
    }
}

/// Median-of-samples wall-clock measurement (ns per call of `f`).  The
/// median is what the bench-smoke gate compares across runs: it is robust to
/// one-off scheduler spikes without the optimistic bias of best-of.
fn ns_per_iter<F: FnMut()>(mut f: F) -> f64 {
    let (target_ms, samples) = if quick_mode() { (2, 5) } else { (10, 7) };
    let mut batch: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        if start.elapsed().as_millis() >= target_ms || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        timings.push(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    timings.sort_by(|a, b| a.total_cmp(b));
    timings[timings.len() / 2]
}

fn posted(handle: u64, src: ProcessId, tag: u32) -> PostedReceive {
    PostedReceive {
        op: RecvOp::from_raw(handle as u32, 0),
        src,
        tag: Tag(tag),
        capacity: 4096,
        translated: false,
        policy: TruncationPolicy::Error,
    }
}

fn pending_send(msg_id: u64) -> PendingSend {
    PendingSend {
        op: SendOp::from_raw(msg_id as u32, 0),
        dst: ProcessId::new(1, 0),
        tag: Tag(0),
        msg_id: MessageId(msg_id),
        payload: SendPayload::Single(Bytes::new()),
        split: BtpSplit::plan(
            ProtocolMode::PushPull,
            BtpPolicy::INTERNODE_DEFAULT,
            OptFlags::full(),
            0,
        ),
        pull_served: false,
        fully_transmitted: false,
        translated: false,
    }
}

/// One post+match cycle against `pending - 1` resident receives.  The target
/// tag is registered last, which is the worst case for the baseline's linear
/// scan and the common case (newest traffic) for a busy endpoint.
fn bench_recv_match_new(pending: usize) -> f64 {
    let src = ProcessId::new(0, 0);
    let mut q = ReceiveQueue::new();
    for i in 1..pending {
        q.register(posted(i as u64, src, i as u32));
    }
    let target = Tag(0);
    ns_per_iter(|| {
        q.register(posted(0, src, 0));
        black_box(q.match_incoming(src, target).unwrap());
    })
}

fn bench_recv_match_naive(pending: usize) -> f64 {
    let src = ProcessId::new(0, 0);
    let mut q = NaiveReceiveQueue::new();
    for i in 1..pending {
        q.register(posted(i as u64, src, i as u32));
    }
    let target = Tag(0);
    ns_per_iter(|| {
        q.register(posted(0, src, 0));
        black_box(q.match_incoming(src, target).unwrap());
    })
}

/// One register+complete cycle against `pending - 1` resident sends (the
/// baseline pays an `order.retain` scan per completion).
fn bench_send_complete_new(pending: usize) -> f64 {
    let mut q = SendQueue::new();
    for i in 1..pending {
        q.register(pending_send(i as u64));
    }
    let mut next = 1_000_000u64;
    ns_per_iter(|| {
        let id = next;
        next += 1;
        q.register(pending_send(id));
        black_box(q.remove(MessageId(id)).unwrap());
    })
}

fn bench_send_complete_naive(pending: usize) -> f64 {
    let mut q = NaiveSendQueue::new();
    for i in 1..pending {
        q.register(pending_send(i as u64));
    }
    let mut next = 1_000_000u64;
    ns_per_iter(|| {
        let id = next;
        next += 1;
        q.register(pending_send(id));
        black_box(q.remove(MessageId(id)).unwrap());
    })
}

/// Full engine round trips (post_recv + post_send + relay) per iteration,
/// sized so one measurement covers 10k packets end to end.
fn bench_pingpong_ns_per_roundtrip(size: usize, rounds: usize) -> f64 {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20);
    let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
    let mut r = Endpoint::new(ProcessId::new(0, 1), cfg);
    let data = Bytes::from(vec![1u8; size]);
    let start = Instant::now();
    for _ in 0..rounds {
        r.post_recv(s.id(), Tag(1), size).unwrap();
        s.post_send(r.id(), Tag(1), data.clone()).unwrap();
        relay(&mut s, &mut r);
        s.post_recv(r.id(), Tag(2), size).unwrap();
        r.post_send(s.id(), Tag(2), data.clone()).unwrap();
        relay(&mut r, &mut s);
        while s.poll_completion().is_some() {}
        while r.poll_completion().is_some() {}
    }
    start.elapsed().as_nanos() as f64 / rounds as f64 / 2.0
}

fn loopback_pair(cfg: ProtocolConfig) -> (FrontEnd<LoopbackEndpoint>, FrontEnd<LoopbackEndpoint>) {
    let cluster = LoopbackCluster::new(cfg);
    (
        FrontEnd::new(cluster.add_endpoint(ProcessId::new(0, 0))),
        FrontEnd::new(cluster.add_endpoint(ProcessId::new(0, 1))),
    )
}

/// Async variant of the ping-pong loop: one `block_on` task awaiting
/// `Endpoint` front-end futures over the loopback cluster.  Measures the whole
/// front-end — posting through the router lock, op-indexed completion
/// claiming, and future resolution — on top of the same engine work as
/// [`bench_pingpong_ns_per_roundtrip`].
fn bench_async_pingpong_block_on(size: usize, rounds: usize) -> f64 {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20);
    let (a, b) = loopback_pair(cfg);
    let data = Bytes::from(vec![1u8; size]);
    let start = Instant::now();
    block_on(async {
        for _ in 0..rounds {
            let recv = b
                .recv(a.local_id(), Tag(1), size, TruncationPolicy::Error)
                .unwrap();
            a.send(b.local_id(), Tag(1), data.clone()).unwrap().await;
            recv.await;
            let recv = a
                .recv(b.local_id(), Tag(2), size, TruncationPolicy::Error)
                .unwrap();
            b.send(a.local_id(), Tag(2), data.clone()).unwrap().await;
            recv.await;
        }
    });
    start.elapsed().as_nanos() as f64 / rounds as f64 / 2.0
}

/// Async ping-pong as two `Driver` tasks waking each other through the
/// waker table: adds the executor's scheduling and wake path to the
/// measurement — the steady overhead a request/reply server pays per
/// exchange.
fn bench_async_pingpong_driver(size: usize, rounds: usize) -> f64 {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20);
    let (a, b) = loopback_pair(cfg);
    let data = Bytes::from(vec![1u8; size]);
    let echo = data.clone();
    let mut driver = Driver::new();
    let start = Instant::now();
    {
        let (a, b) = (a.clone(), b.clone());
        let b_id = b.local_id();
        driver.spawn(async move {
            for _ in 0..rounds {
                let recv = a.recv(b_id, Tag(2), size, TruncationPolicy::Error).unwrap();
                a.send(b_id, Tag(1), data.clone()).unwrap().await;
                recv.await;
            }
        });
    }
    {
        let a_id = a.local_id();
        driver.spawn(async move {
            for _ in 0..rounds {
                let got = b
                    .recv(a_id, Tag(1), size, TruncationPolicy::Error)
                    .unwrap()
                    .await;
                assert!(got.status.is_ok());
                b.send(a_id, Tag(2), echo.clone()).unwrap().await;
            }
        });
    }
    driver.run();
    start.elapsed().as_nanos() as f64 / rounds as f64 / 2.0
}

/// One multi-fragment pulled transfer per iteration with an engine-buffered
/// receive: the delivery allocates a reassembly handoff every round.
fn bench_pull_recv(size: usize) -> f64 {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20);
    let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
    let mut r = Endpoint::new(ProcessId::new(0, 1), cfg);
    let data = Bytes::from(vec![1u8; size]);
    ns_per_iter(|| {
        let op = r.post_recv(s.id(), Tag(1), size).unwrap();
        s.post_send(r.id(), Tag(1), data.clone()).unwrap();
        relay(&mut s, &mut r);
        while s.poll_completion().is_some() {}
        let mut got = false;
        while let Some(c) = r.poll_completion() {
            if c.op == OpId::Recv(op) {
                black_box(c.data.as_ref().map(|d| d.len()));
                got = true;
            }
        }
        assert!(got, "pull transfer did not complete");
    })
}

/// Same transfer through `post_recv_into` with one recycled `RecvBuf`: the
/// pull path reassembles into caller-owned storage, allocation-free.
fn bench_pull_recv_into(size: usize) -> f64 {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20);
    let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
    let mut r = Endpoint::new(ProcessId::new(0, 1), cfg);
    let data = Bytes::from(vec![1u8; size]);
    let mut recycled = Some(RecvBuf::with_capacity(size));
    ns_per_iter(|| {
        let buf = recycled.take().expect("buffer in flight");
        let op = r
            .post_recv_into(s.id(), Tag(1), buf, TruncationPolicy::Error)
            .unwrap();
        s.post_send(r.id(), Tag(1), data.clone()).unwrap();
        relay(&mut s, &mut r);
        while s.poll_completion().is_some() {}
        while let Some(c) = r.poll_completion() {
            if c.op == OpId::Recv(op) {
                let buf = c.buf.expect("caller buffer handed back");
                black_box(buf.len());
                recycled = Some(buf);
            }
        }
        assert!(recycled.is_some(), "pull transfer did not complete");
    })
}

/// One full transfer of `segments` × `seg_size` bytes posted as a vectored
/// send: the scatter list goes on the wire without coalescing, the receiver
/// reassembles it into a recycled caller buffer.
fn bench_vectored_send(segments: usize, seg_size: usize) -> f64 {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20);
    let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
    let mut r = Endpoint::new(ProcessId::new(0, 1), cfg);
    let total = segments * seg_size;
    let parts: Vec<Bytes> = (0..segments)
        .map(|i| Bytes::from(vec![i as u8; seg_size]))
        .collect();
    let mut recycled = Some(RecvBuf::with_capacity(total));
    ns_per_iter(|| {
        let buf = recycled.take().expect("buffer in flight");
        let op = r
            .post_recv_into(s.id(), Tag(1), buf, TruncationPolicy::Error)
            .unwrap();
        s.post_send_vectored(r.id(), Tag(1), &parts).unwrap();
        relay(&mut s, &mut r);
        while s.poll_completion().is_some() {}
        while let Some(c) = r.poll_completion() {
            if c.op == OpId::Recv(op) {
                recycled = Some(c.buf.expect("caller buffer handed back"));
            }
        }
        assert!(recycled.is_some(), "vectored transfer did not complete");
    })
}

/// The caller-coalesced baseline for [`bench_vectored_send`]: the same
/// segments copied into one contiguous buffer before a plain `post_send` —
/// what an application had to do before vectored sends existed.
fn bench_coalesced_send(segments: usize, seg_size: usize) -> f64 {
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20);
    let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
    let mut r = Endpoint::new(ProcessId::new(0, 1), cfg);
    let total = segments * seg_size;
    let parts: Vec<Bytes> = (0..segments)
        .map(|i| Bytes::from(vec![i as u8; seg_size]))
        .collect();
    let mut recycled = Some(RecvBuf::with_capacity(total));
    ns_per_iter(|| {
        // The coalescing copy is the cost under measurement.
        let mut joined = Vec::with_capacity(total);
        for part in &parts {
            joined.extend_from_slice(part);
        }
        let buf = recycled.take().expect("buffer in flight");
        let op = r
            .post_recv_into(s.id(), Tag(1), buf, TruncationPolicy::Error)
            .unwrap();
        s.post_send(r.id(), Tag(1), Bytes::from(joined)).unwrap();
        relay(&mut s, &mut r);
        while s.poll_completion().is_some() {}
        while let Some(c) = r.poll_completion() {
            if c.op == OpId::Recv(op) {
                recycled = Some(c.buf.expect("caller buffer handed back"));
            }
        }
        assert!(recycled.is_some(), "coalesced transfer did not complete");
    })
}

/// One full collective per round over an 8-rank loopback group on a single
/// `Driver`: what an application pays per broadcast / all-reduce, including
/// tag derivation, tree posting, completion claiming, and executor wake-ups.
/// The 64 KiB broadcast exercises the pipelined chunked path (default
/// 32 KiB chunks); the all-reduce combine hands back one of its inputs, so
/// the measured cost is all transport.
fn bench_collective_8rank(all_reduce: bool, size: usize, rounds: usize) -> f64 {
    let cluster =
        LoopbackCluster::new(ProtocolConfig::paper_intranode().with_pushed_buffer(1 << 20));
    let ids: Vec<ProcessId> = (0..8).map(|r| ProcessId::new(0, r)).collect();
    let group = Group::new(9, ids.clone()).unwrap();
    let mut driver = Driver::new();
    for &id in &ids {
        let member = group.bind(FrontEnd::new(cluster.add_endpoint(id))).unwrap();
        driver.spawn(async move {
            let mine = Bytes::from(vec![member.rank() as u8 + 1; size]);
            for _ in 0..rounds {
                if all_reduce {
                    let got = member
                        .all_reduce(mine.clone(), |a, b| if a[0] >= b[0] { a } else { b })
                        .await
                        .unwrap();
                    assert_eq!(got[0], 8);
                } else {
                    let data = if member.rank() == 0 {
                        mine.clone()
                    } else {
                        Bytes::new()
                    };
                    let got = member.broadcast(0, data, size).await.unwrap();
                    assert_eq!(got.len(), size);
                }
            }
        });
    }
    let start = Instant::now();
    driver.run();
    start.elapsed().as_nanos() as f64 / rounds as f64
}

/// Wildcard `peek_unexpected` against a deep unexpected-message backlog:
/// the PR-2 linear scan (~2.3 µs at 1k, ~9 µs at 4k buffered in
/// `BENCH_PR4.json`) replaced by PR 5's arrival-ordered per-src / per-tag /
/// global intrusive lists — every selector shape is now one O(1) list-head
/// probe.  Exact-selector peeks against the same backlog are reported
/// alongside (they must not regress).
fn bench_deep_backlog_peek(backlog: usize, wildcard: bool) -> f64 {
    let mut q = BufferQueue::new();
    let srcs = [ProcessId::new(0, 0), ProcessId::new(1, 0)];
    for i in 0..backlog {
        q.insert(
            UnexpectedKey {
                src: srcs[i % srcs.len()],
                msg_id: MessageId(i as u64),
            },
            Tag((i % 7) as u32),
        );
    }
    ns_per_iter(|| {
        if wildcard {
            black_box(q.peek_unexpected(ANY_SOURCE, ANY_TAG)).unwrap();
        } else {
            black_box(q.peek_unexpected(srcs[0], Tag(0))).unwrap();
        }
    })
}

/// Exact post+match cycle while a wildcard receive is resident: measures the
/// cost of the four-bucket probe relative to the wildcard-free fast path.
fn bench_recv_match_exact_with_wildcard_resident(pending: usize) -> f64 {
    let src = ProcessId::new(0, 0);
    let mut q = ReceiveQueue::new();
    for i in 1..pending {
        q.register(posted(i as u64, src, i as u32));
    }
    // A resident any-source receive on a tag the loop never matches.
    q.register(posted(1_000_000, ANY_SOURCE, 999));
    ns_per_iter(|| {
        q.register(posted(0, src, 0));
        black_box(q.match_incoming(src, Tag(0)).unwrap());
    })
}

/// Post+match cycle where the wildcard receive itself matches.
fn bench_recv_match_wildcard_pop(pending: usize) -> f64 {
    let src = ProcessId::new(0, 0);
    let mut q = ReceiveQueue::new();
    for i in 1..pending {
        q.register(posted(i as u64, src, i as u32));
    }
    ns_per_iter(|| {
        q.register(posted(0, ANY_SOURCE, 0));
        black_box(q.match_incoming(src, Tag(0)).unwrap());
    })
}

fn sample_packet(payload_len: usize) -> Packet {
    let header = PacketHeader {
        kind: PacketKind::Push(PushPart::First),
        src: ProcessId::new(0, 1),
        dst: ProcessId::new(1, 3),
        msg_id: MessageId(42),
        tag: Tag(7),
        total_len: payload_len as u32,
        eager_len: payload_len as u32,
        offset: 0,
        payload_len: payload_len as u32,
    };
    Packet::new(header, Bytes::from(vec![0xA5u8; payload_len])).unwrap()
}

fn bench_header_encode_pooled() -> f64 {
    let pkt = sample_packet(760);
    let mut pool = PacketBufPool::new();
    ns_per_iter(|| {
        let mut buf = pool.acquire(pkt.wire_size());
        pkt.encode_into(&mut buf);
        black_box(buf.len());
        pool.release(buf);
    })
}

fn bench_header_encode_fresh() -> f64 {
    let pkt = sample_packet(760);
    ns_per_iter(|| {
        black_box(pkt.encode());
    })
}

fn bench_header_decode() -> f64 {
    let encoded = sample_packet(760).encode();
    ns_per_iter(|| {
        black_box(Packet::decode(encoded.clone()).unwrap());
    })
}

fn write_bench_json(rows: &[(String, f64)]) {
    let mut json = String::from(
        "{\n  \"pr\": 5,\n  \"unit\": \"ns/op (median of samples)\",\n  \"benches\": {\n",
    );
    for (i, (name, ns)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write BENCH_PR5.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn hot_path_report(_c: &mut Criterion) {
    let mut rows: Vec<(String, f64)> = Vec::new();
    for pending in [1usize, 8, 64] {
        let new_ns = bench_recv_match_new(pending);
        let naive_ns = bench_recv_match_naive(pending);
        println!(
            "recv match, {pending:>2} pending: new {new_ns:>8.1} ns/op, naive {naive_ns:>8.1} ns/op ({:.1}x)",
            naive_ns / new_ns
        );
        rows.push((format!("recv_match_{pending}_pending_new"), new_ns));
        rows.push((format!("recv_match_{pending}_pending_naive"), naive_ns));
    }
    for pending in [1usize, 8, 64] {
        let new_ns = bench_send_complete_new(pending);
        let naive_ns = bench_send_complete_naive(pending);
        println!(
            "send complete, {pending:>2} pending: new {new_ns:>8.1} ns/op, naive {naive_ns:>8.1} ns/op ({:.1}x)",
            naive_ns / new_ns
        );
        rows.push((format!("send_complete_{pending}_pending_new"), new_ns));
        rows.push((format!("send_complete_{pending}_pending_naive"), naive_ns));
    }

    // 10k packets = 5k round trips of a two-packet exchange.
    let packets = if quick_mode() { 1_000 } else { 5_000 };
    let rt = bench_pingpong_ns_per_roundtrip(64, packets);
    println!("pingpong 64B intranode, 10k packets: {rt:.1} ns/packet");
    rows.push(("pingpong_10k_packets_64B_ns_per_packet".into(), rt));

    // PR-3: the same exchange through the async front-end on the loopback
    // cluster — block_on single-task, then two Driver tasks waking each
    // other through the waker table.
    let async_rt = bench_async_pingpong_block_on(64, packets);
    let driver_rt = bench_async_pingpong_driver(64, packets);
    println!(
        "async pingpong 64B loopback: block_on {async_rt:.1} ns/packet, driver {driver_rt:.1} ns/packet ({:.2}x / {:.2}x vs engine)",
        async_rt / rt,
        driver_rt / rt
    );
    rows.push(("async_pingpong_64B_block_on_ns_per_packet".into(), async_rt));
    rows.push(("async_pingpong_64B_driver_ns_per_packet".into(), driver_rt));

    // PR-2: the multi-fragment pull path, engine-buffered vs caller-buffered.
    for size in [4096usize, 65536] {
        let engine_ns = bench_pull_recv(size);
        let caller_ns = bench_pull_recv_into(size);
        println!(
            "pull transfer {size:>5} B: post_recv {engine_ns:>9.1} ns/op, post_recv_into {caller_ns:>9.1} ns/op ({:.2}x)",
            engine_ns / caller_ns
        );
        rows.push((format!("pull_{size}B_post_recv"), engine_ns));
        rows.push((format!("pull_{size}B_post_recv_into"), caller_ns));
    }

    // PR-2: wildcard matching vs the exact fast path (8 pending receives).
    let exact_ns = bench_recv_match_new(8);
    let resident_ns = bench_recv_match_exact_with_wildcard_resident(8);
    let wild_ns = bench_recv_match_wildcard_pop(8);
    println!(
        "recv match, 8 pending: exact {exact_ns:.1} ns/op, exact+wildcard-resident {resident_ns:.1} ns/op, wildcard pop {wild_ns:.1} ns/op"
    );
    rows.push(("recv_match_8_pending_wildcard_resident".into(), resident_ns));
    rows.push(("recv_match_8_pending_wildcard_pop".into(), wild_ns));

    let enc_pooled = bench_header_encode_pooled();
    let enc_fresh = bench_header_encode_fresh();
    let dec = bench_header_decode();
    println!(
        "codec 760B packet: encode pooled {enc_pooled:.1} ns, encode fresh {enc_fresh:.1} ns, decode {dec:.1} ns"
    );
    rows.push(("packet_encode_760B_pooled".into(), enc_pooled));
    rows.push(("packet_encode_760B_fresh".into(), enc_fresh));
    rows.push(("packet_decode_760B".into(), dec));

    // PR-4: vectored sends vs the caller-coalesced single buffer they
    // replace, at a gather shape typical for header+body framing.
    for (segments, seg_size) in [(4usize, 1024usize), (8, 8192)] {
        let vectored_ns = bench_vectored_send(segments, seg_size);
        let coalesced_ns = bench_coalesced_send(segments, seg_size);
        println!(
            "vectored send {segments}x{seg_size}B: vectored {vectored_ns:>9.1} ns/op, coalesced {coalesced_ns:>9.1} ns/op ({:.2}x)",
            coalesced_ns / vectored_ns
        );
        rows.push((format!("send_{segments}x{seg_size}B_vectored"), vectored_ns));
        rows.push((
            format!("send_{segments}x{seg_size}B_coalesced"),
            coalesced_ns,
        ));
    }

    // PR-5: the wildcard peek against a deep unexpected backlog — the PR-2
    // linear scan replaced by O(1) arrival-list heads — next to the
    // exact-selector probe, which must not regress.
    for backlog in [1024usize, 4096] {
        let wild_ns = bench_deep_backlog_peek(backlog, true);
        let exact_ns = bench_deep_backlog_peek(backlog, false);
        println!(
            "peek_unexpected, {backlog} backlog: wildcard {wild_ns:>9.1} ns/op, exact {exact_ns:>7.1} ns/op ({:.1}x)",
            wild_ns / exact_ns
        );
        rows.push((
            format!("peek_unexpected_{backlog}_backlog_wildcard"),
            wild_ns,
        ));
        rows.push((format!("peek_unexpected_{backlog}_backlog_exact"), exact_ns));
    }

    // PR-5: 8-rank collectives on the loopback cluster, one Driver.
    let coll_rounds = if quick_mode() { 100 } else { 400 };
    for size in [4096usize, 65536] {
        let bcast_ns = bench_collective_8rank(false, size, coll_rounds);
        let allreduce_ns = bench_collective_8rank(true, size, coll_rounds);
        println!(
            "collective 8 ranks, {size:>5} B: broadcast {bcast_ns:>10.1} ns/op, all_reduce {allreduce_ns:>10.1} ns/op"
        );
        rows.push((format!("bcast_8rank_{size}B_ns_per_op"), bcast_ns));
        rows.push((format!("all_reduce_8rank_{size}B_ns_per_op"), allreduce_ns));
    }

    write_bench_json(&rows);
}

fn bench(c: &mut Criterion) {
    if quick_mode() {
        // The CI smoke job only consumes hot_path_report's BENCH_PR5.json;
        // skip the Criterion groups and their warm-up entirely.
        return;
    }
    let mut group = c.benchmark_group("engine_transfer");
    for size in [64usize, 1024, 8192, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("push_pull_{size}B"), |b| {
            let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(1 << 20);
            let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
            let mut r = Endpoint::new(ProcessId::new(1, 0), cfg);
            let data = Bytes::from(vec![1u8; size]);
            b.iter(|| {
                r.post_recv(s.id(), Tag(1), size).unwrap();
                s.post_send(r.id(), Tag(1), data.clone()).unwrap();
                relay(&mut s, &mut r);
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("engine_match");
    group.sample_size(20);
    for pending in [1usize, 8, 64] {
        group.bench_function(format!("recv_match_{pending}_pending"), |b| {
            let src = ProcessId::new(0, 0);
            let mut q = ReceiveQueue::new();
            for i in 1..pending {
                q.register(posted(i as u64, src, i as u32));
            }
            b.iter(|| {
                q.register(posted(0, src, 0));
                black_box(q.match_incoming(src, Tag(0)).unwrap());
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(sample_packet(760).wire_size() as u64));
    group.bench_function("encode_pooled_760B", |b| {
        let pkt = sample_packet(760);
        let mut pool = PacketBufPool::new();
        b.iter(|| {
            let mut buf = pool.acquire(pkt.wire_size());
            pkt.encode_into(&mut buf);
            black_box(buf.len());
            pool.release(buf);
        });
    });
    group.bench_function("decode_760B", |b| {
        let encoded = sample_packet(760).encode();
        b.iter(|| black_box(Packet::decode(encoded.clone()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench, hot_path_report);
criterion_main!(benches);
