//! Microbenchmarks of the protocol engine itself (no simulator, no I/O):
//! cost of posting sends/receives and relaying the resulting packets.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppmsg_core::{Action, Endpoint, ProcessId, ProtocolConfig, Tag};

fn relay(sender: &mut Endpoint, receiver: &mut Endpoint) {
    loop {
        let mut progressed = false;
        for _ in 0..2 {
            while let Some(action) = sender.poll_action() {
                progressed = true;
                match action {
                    Action::Transmit { packet, .. } => receiver.handle_packet(sender.id(), packet),
                    Action::TransmitFrame { frame, .. } => receiver.handle_frame(sender.id(), frame),
                    _ => {}
                }
            }
            std::mem::swap(sender, receiver);
        }
        if !progressed {
            break;
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_transfer");
    for size in [64usize, 1024, 8192, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("push_pull_{size}B"), |b| {
            let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(1 << 20);
            let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
            let mut r = Endpoint::new(ProcessId::new(1, 0), cfg);
            let data = Bytes::from(vec![1u8; size]);
            b.iter(|| {
                r.post_recv(s.id(), Tag(1), size).unwrap();
                s.post_send(r.id(), Tag(1), data.clone()).unwrap();
                relay(&mut s, &mut r);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
