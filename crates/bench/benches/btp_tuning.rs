//! E3/E4 — the §5.2 BTP tuning experiments: sweep BTP(2) with BTP(1)=0, then
//! sweep BTP(1) with BTP(2)=680, for a 1400-byte internode message.

use criterion::{criterion_group, criterion_main, Criterion};
use ppmsg_bench::{print_sweep, BENCH_ITERS};
use ppmsg_sim::experiments::{btp1_sweep, btp2_sweep};

fn bench(c: &mut Criterion) {
    let btp2_values = [0, 100, 200, 400, 600, 680, 800, 1000, 1200, 1400];
    print_sweep(
        "Section 5.2 test 1: vary BTP(2), BTP(1)=0 (overlap only), 1400-byte message",
        "BTP(2)",
        &btp2_sweep(&btp2_values, 1400, BENCH_ITERS),
    );
    let btp1_values = [0, 40, 80, 160, 320, 480, 640];
    print_sweep(
        "Section 5.2 test 2: vary BTP(1), BTP(2)=680 (full optimisation), 1400-byte message",
        "BTP(1)",
        &btp1_sweep(&btp1_values, 1400, BENCH_ITERS),
    );

    let mut group = c.benchmark_group("btp_tuning");
    group.sample_size(10);
    group.bench_function("btp2_sweep_3_points", |b| {
        b.iter(|| btp2_sweep(&[0, 680, 1400], 1400, 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
