//! E7/E8 / Fig. 6 — early and late receiver tests (compute-then-communicate
//! ping-pong, pushed buffer 4 KiB, full optimisation).

use criterion::{criterion_group, criterion_main, Criterion};
use ppmsg_bench::print_figure;
use ppmsg_sim::experiments::{early_late_test, fig6_sizes, EarlyLateVariant};

fn bench(c: &mut Criterion) {
    // The compute loops make each iteration expensive; a handful of
    // iterations per point is plenty in a deterministic simulator.
    let iters = 8;
    let early = early_late_test(EarlyLateVariant::Early, &fig6_sizes(), iters);
    print_figure(
        "Figure 6 (left): early receiver test (x=500k, y=100k NOPs)",
        &early,
    );
    let late = early_late_test(EarlyLateVariant::Late, &fig6_sizes(), iters);
    print_figure(
        "Figure 6 (right): late receiver test (x=100k, y=300k NOPs)",
        &late,
    );

    let mut group = c.benchmark_group("fig6_early_late");
    group.sample_size(10);
    group.bench_function("late_receiver_4096B", |b| {
        b.iter(|| early_late_test(EarlyLateVariant::Late, &[4096], 3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
