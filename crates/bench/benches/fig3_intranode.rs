//! E1 / Fig. 3 — intranode single-trip latency vs message size for
//! Push-Zero, Push-Pull (BTP = 16) and Push-All with a 12 KiB pushed buffer.

use criterion::{criterion_group, criterion_main, Criterion};
use ppmsg_bench::{print_figure, BENCH_ITERS};
use ppmsg_sim::experiments::{fig3_intranode, fig3_sizes};

fn bench(c: &mut Criterion) {
    // Regenerate the full figure once and print it.
    let points = fig3_intranode(&fig3_sizes(), BENCH_ITERS);
    print_figure(
        "Figure 3: intranode single-trip latency (pushed buffer 12 KiB)",
        &points,
    );

    let mut group = c.benchmark_group("fig3_intranode");
    group.sample_size(10);
    group.bench_function("pingpong_4096B_all_modes", |b| {
        b.iter(|| fig3_intranode(&[4096], 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
