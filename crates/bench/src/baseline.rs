//! Pre-refactor queue implementations, kept verbatim as benchmark baselines.
//!
//! PR 1 replaced the engine's O(n) `Vec::position` receive matching and the
//! `order.retain` send-completion scan with slab + bucket structures.  These
//! are the original implementations, preserved so `engine_micro` can measure
//! the improvement against the real former code rather than a guess — and so
//! future PRs can re-verify the comparison.

use ppmsg_core::queues::{PendingSend, PostedReceive};
use ppmsg_core::{MessageId, ProcessId, Tag};
use std::collections::HashMap;

/// The seed's receive queue: a flat `Vec` matched by linear scan.
#[derive(Debug, Default)]
pub struct NaiveReceiveQueue {
    posted: Vec<PostedReceive>,
}

impl NaiveReceiveQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a posted receive.
    pub fn register(&mut self, recv: PostedReceive) {
        self.posted.push(recv);
    }

    /// Finds and removes the oldest posted receive matching `(src, tag)` —
    /// the O(n) scan the slab/bucket rewrite eliminated.
    pub fn match_incoming(&mut self, src: ProcessId, tag: Tag) -> Option<PostedReceive> {
        let idx = self
            .posted
            .iter()
            .position(|r| r.src == src && r.tag == tag)?;
        Some(self.posted.remove(idx))
    }

    /// Number of pending receives.
    pub fn len(&self) -> usize {
        self.posted.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.posted.is_empty()
    }
}

/// The seed's send queue: `HashMap` storage plus an insertion-order `Vec`
/// whose `retain` ran on every completion.
#[derive(Debug, Default)]
pub struct NaiveSendQueue {
    entries: HashMap<u64, PendingSend>,
    order: Vec<u64>,
}

impl NaiveSendQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pending send.
    pub fn register(&mut self, send: PendingSend) {
        let key = send.msg_id.0;
        self.order.push(key);
        self.entries.insert(key, send);
    }

    /// Removes a completed send — the `order.retain` scan the intrusive-list
    /// rewrite eliminated.
    pub fn remove(&mut self, msg_id: MessageId) -> Option<PendingSend> {
        let removed = self.entries.remove(&msg_id.0);
        if removed.is_some() {
            self.order.retain(|&k| k != msg_id.0);
        }
        removed
    }

    /// Number of pending sends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppmsg_core::{
        BtpPolicy, BtpSplit, OptFlags, ProtocolMode, RecvOp, SendOp, TruncationPolicy,
    };

    #[test]
    fn naive_queues_behave_like_queues() {
        let a = ProcessId::new(0, 0);
        let mut rq = NaiveReceiveQueue::new();
        rq.register(PostedReceive {
            op: RecvOp::from_raw(1, 0),
            src: a,
            tag: Tag(4),
            capacity: 64,
            translated: false,
            policy: TruncationPolicy::Error,
        });
        assert_eq!(rq.len(), 1);
        assert!(rq.match_incoming(a, Tag(3)).is_none());
        assert_eq!(
            rq.match_incoming(a, Tag(4)).unwrap().op,
            RecvOp::from_raw(1, 0)
        );
        assert!(rq.is_empty());

        let mut sq = NaiveSendQueue::new();
        sq.register(PendingSend {
            op: SendOp::from_raw(9, 0),
            dst: a,
            tag: Tag(0),
            msg_id: MessageId(9),
            payload: ppmsg_core::SendPayload::Single(bytes::Bytes::new()),
            split: BtpSplit::plan(
                ProtocolMode::PushPull,
                BtpPolicy::INTERNODE_DEFAULT,
                OptFlags::full(),
                0,
            ),
            pull_served: false,
            fully_transmitted: false,
            translated: false,
        });
        assert!(!sq.is_empty());
        assert_eq!(sq.remove(MessageId(9)).unwrap().op, SendOp::from_raw(9, 0));
        assert!(sq.remove(MessageId(9)).is_none());
    }
}
