//! # ppmsg-bench — benchmark harness regenerating the paper's tables and figures
//!
//! Each Criterion bench target corresponds to one figure or table of the
//! paper (see DESIGN.md §4 for the experiment index).  Besides timing the
//! simulation itself, every bench prints the regenerated figure data — the
//! same rows/series the paper plots — so `cargo bench` doubles as the
//! reproduction harness.  EXPERIMENTS.md records the paper-reported values
//! next to the measured ones.

#![warn(missing_docs)]

pub mod baseline;

use ppmsg_sim::FigurePoint;

/// Number of ping-pong iterations per figure point used by the benches.
/// Smaller than the paper's 1000 so the whole suite finishes in minutes; the
/// trimmed-mean latencies are deterministic in the simulator, so extra
/// iterations only confirm the same numbers.
pub const BENCH_ITERS: usize = 40;

/// Prints a figure as an aligned table (one row per message size, one column
/// per series).
pub fn print_figure(title: &str, points: &[FigurePoint]) {
    println!("\n=== {title} ===");
    if points.is_empty() {
        println!("(no data)");
        return;
    }
    let labels: Vec<&str> = points[0].series.iter().map(|(l, _)| l.as_str()).collect();
    print!("{:>10}", "size(B)");
    for l in &labels {
        print!("{l:>22}");
    }
    println!();
    for p in points {
        print!("{:>10}", p.size);
        for (_, v) in &p.series {
            print!("{v:>20.1}us");
        }
        println!();
    }
}

/// Prints a two-column sweep (e.g. BTP value vs latency).
pub fn print_sweep(title: &str, x_label: &str, rows: &[(usize, f64)]) {
    println!("\n=== {title} ===");
    println!("{x_label:>10}{:>22}", "latency(us)");
    for (x, v) in rows {
        println!("{x:>10}{v:>20.1}us");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_helpers_do_not_panic() {
        print_figure("empty", &[]);
        print_figure(
            "one",
            &[FigurePoint {
                size: 8,
                series: vec![("a".into(), 1.0)],
            }],
        );
        print_sweep("sweep", "btp", &[(0, 1.0), (80, 2.0)]);
    }
}
