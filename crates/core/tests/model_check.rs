//! Bounded model checking of the [`CompletionMailbox`] publish-vs-park
//! handshake.  Build with `RUSTFLAGS="--cfg ppmsg_check"`; the harnesses
//! explore every interleaving (up to the preemption bound) of producers
//! posting completions against consumers registering wakers and parking,
//! under the checker's TSO store-buffer memory model.
//!
//! The sabotage variants re-run the same protocols with a knob flipped in
//! `ops::sabotage` — a `SeqCst -> Relaxed` downgrade of the two-flag
//! handshake, and a dropped consumer re-check — and assert the checker
//! reports the resulting lost wake-up as a deadlock.  If one of these stops
//! failing, the checker has lost its teeth.
#![cfg(ppmsg_check)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ppmsg_check::sync::{Condvar, Mutex};
use ppmsg_check::{thread, Model};
use ppmsg_core::ops::sabotage;
use ppmsg_core::{Completion, CompletionMailbox, OpId, ProcessId, SendOp, Status, Tag};

/// Sabotage knobs are process-global: every test (clean ones included)
/// serializes on this lock so a flipped knob cannot leak into a neighbour
/// running on another test thread.
static KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct KnobGuard<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

fn hold_knobs() -> KnobGuard<'static> {
    let guard = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    sabotage::reset();
    KnobGuard { _guard: guard }
}

impl Drop for KnobGuard<'_> {
    fn drop(&mut self) {
        sabotage::reset();
    }
}

fn completion(slot: u32) -> Completion {
    Completion {
        op: OpId::Send(SendOp::from_raw(slot, 0)),
        peer: ProcessId::new(0, 1),
        tag: Tag(7),
        len: 0,
        status: Status::Ok,
        data: None,
        buf: None,
    }
}

/// A model-instrumented parker usable as a [`std::task::Waker`]: wakes go
/// through the shim mutex/condvar, so the checker sees (and schedules
/// around) the park/wake handshake exactly like a real executor's.
struct Park {
    woke: Mutex<bool>,
    cv: Condvar,
}

impl Park {
    fn new() -> Park {
        Park {
            woke: Mutex::new("test.park", false),
            cv: Condvar::new(),
        }
    }

    fn wait_and_reset(&self) {
        let mut g = self.woke.lock();
        while !*g {
            g = self.cv.wait(g);
        }
        *g = false;
    }
}

impl std::task::Wake for Park {
    fn wake(self: Arc<Self>) {
        let mut g = self.woke.lock();
        *g = true;
        self.cv.notify_one();
    }
}

/// One producer posting `slots` completions, one consumer claiming them via
/// `take_or_register` + park.  The protocol must complete under every
/// interleaving — a lost wake-up surfaces as a model deadlock.
fn mailbox_round_trip(producers: usize, per_producer: u32) -> impl Fn() + Send + Sync + 'static {
    move || {
        let mb = Arc::new(CompletionMailbox::new(producers));
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    let mut batch = Vec::new();
                    for i in 0..per_producer {
                        batch.push(completion(p as u32 * 100 + i));
                        mb.post(p, &mut batch);
                    }
                })
            })
            .collect();
        let park = Arc::new(Park::new());
        let waker = std::task::Waker::from(Arc::clone(&park));
        let total = producers as u32 * per_producer;
        let mut claimed = 0;
        for p in 0..producers as u32 {
            for i in 0..per_producer {
                let op = OpId::Send(SendOp::from_raw(p * 100 + i, 0));
                loop {
                    let mut got = false;
                    mb.with(&mut |q| {
                        if q.take_or_register(op, &waker).is_some() {
                            got = true;
                        }
                    });
                    if got {
                        claimed += 1;
                        break;
                    }
                    park.wait_and_reset();
                }
            }
        }
        assert_eq!(claimed, total);
        for h in handles {
            h.join();
        }
    }
}

fn expect_deadlock<F: Fn() + Send + Sync + 'static>(model: Model, f: F) {
    let result = catch_unwind(AssertUnwindSafe(|| model.check(f)));
    let payload = match result {
        Ok(stats) => panic!(
            "model checker missed the lost wake-up ({} executions explored clean)",
            stats.executions
        ),
        Err(p) => p,
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock"),
        "expected a deadlock report, got:\n{msg}"
    );
}

#[test]
fn mailbox_handshake_exhaustive() {
    let _knobs = hold_knobs();
    let stats = Model::new().check(mailbox_round_trip(1, 1));
    assert!(
        stats.executions > 1,
        "producer/consumer race admits more than one schedule"
    );
}

#[test]
fn mailbox_reregistration_exhaustive() {
    // Two completions through the same waker: claims, re-registrations and
    // wakes interleave with the second post.
    let _knobs = hold_knobs();
    let stats = Model::new().check(mailbox_round_trip(1, 2));
    assert!(stats.executions > 1);
}

#[test]
fn mailbox_two_producers_exhaustive() {
    // Two producer inboxes racing each other and the consumer sweep.
    let _knobs = hold_knobs();
    let stats = Model::new().check(mailbox_round_trip(2, 1));
    assert!(stats.executions > 1);
}

#[test]
fn mailbox_survives_spurious_wakeups() {
    // The consumer's park loop must tolerate wake-ups with no completion
    // behind them; the checker injects one at every opportunity.
    let _knobs = hold_knobs();
    let stats = Model {
        spurious_budget: 1,
        ..Model::new()
    }
    .check(mailbox_round_trip(1, 1));
    assert!(stats.executions > 1);
}

#[test]
fn sabotage_weak_flags_caught() {
    // `SeqCst -> Relaxed` on the pending/waiters handshake: under the TSO
    // store buffer the producer's `pending` advertisement and the
    // consumer's `waiters` registration can both stay invisible, each side
    // skips the other, and the consumer parks forever.
    let _knobs = hold_knobs();
    sabotage::WEAK_FLAGS.store(true, std::sync::atomic::Ordering::SeqCst);
    expect_deadlock(Model::new(), mailbox_round_trip(1, 1));
}

#[test]
fn sabotage_skip_recheck_caught() {
    // Dropping the consumer's post-unlock `pending` re-check loses the
    // race where the producer loaded `waiters` before the registration:
    // nobody delivers, the consumer parks forever.
    let _knobs = hold_knobs();
    sabotage::SKIP_RECHECK.store(true, std::sync::atomic::Ordering::SeqCst);
    expect_deadlock(Model::new(), mailbox_round_trip(1, 1));
}
