//! Lockdep teeth test against the *production* lock classes: deliberately
//! invert the shard-lock order on a real [`ShardedEngine`] and assert the
//! cycle detector names both shard classes in its report.
//!
//! Kept in its own test binary — the provoked cycle dirties the global
//! lock-order graph for the rest of the process.  Lockdep is compiled out
//! in release builds, so the test is debug-only.
#![cfg(debug_assertions)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use ppmsg_core::{ProcessId, ProtocolConfig, ShardedEngine};

#[test]
fn inverted_shard_order_is_caught() {
    let engine = ShardedEngine::new(ProcessId::new(0, 0), ProtocolConfig::default(), 4);
    // Record the sanctioned order once: shard 1 inside shard 0.
    engine.__lockdep_lock_pair(0, 1);
    // The inversion must panic naming both production classes.
    let payload = catch_unwind(AssertUnwindSafe(|| {
        engine.__lockdep_lock_pair(1, 0);
    }))
    .expect_err("lockdep missed an inverted shard-lock order");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    for needle in ["lock-order cycle", "core.shard[0]", "core.shard[1]"] {
        assert!(
            msg.contains(needle),
            "cycle report missing `{needle}`:\n{msg}"
        );
    }
    // Reset so the dirtied graph cannot bleed into anything else running
    // in this binary later.
    ppmsg_check::lockdep::reset();
}
