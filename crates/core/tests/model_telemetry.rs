//! Bounded model checking of the metrics plane's lock-free handshake:
//! concurrent [`LogHistogram::record`] / [`Counter::tick`] calls against
//! in-flight [`LogHistogram::snapshot`] reads.  Build with
//! `RUSTFLAGS="--cfg ppmsg_check"`; the histogram's atomics come from the
//! `ppmsg_check` shim layer, so every interleaving (and TSO store-buffer
//! visibility) of the relaxed adds and loads is explored exhaustively.
//!
//! Verified invariants, on a small exhaustive schedule (the statistical
//! big-N version of the same claims runs in `tests/proptests.rs`):
//!
//! * **no lost sample** — however recorders race, after join the snapshot
//!   holds every sample exactly once;
//! * **snapshot prefix property** — a snapshot racing the recorders never
//!   over-counts, and successive snapshots from one thread never shrink;
//! * **unique tickets** — concurrent `Counter::tick` calls never hand two
//!   threads the same sampling ticket.
#![cfg(all(ppmsg_check, feature = "telemetry"))]

use std::sync::Arc;

use ppmsg_check::{thread, Model};
use ppmsg_core::telemetry::{bucket_of, Counter, LogHistogram};

#[test]
fn concurrent_records_are_never_lost() {
    let stats = Model::new().check(|| {
        let hist = Arc::new(LogHistogram::new());
        let workers: Vec<_> = [1u64, 16]
            .into_iter()
            .map(|value| {
                let hist = Arc::clone(&hist);
                thread::spawn(move || hist.record(value))
            })
            .collect();

        // Racing snapshots: each is some prefix of the recording history,
        // and the pair taken in order must be monotone bucketwise.
        let early = hist.snapshot();
        let late = hist.snapshot();
        assert!(early.count() <= 2, "snapshot cannot over-count");
        for (e, l) in early.buckets.iter().zip(late.buckets.iter()) {
            assert!(e <= l, "successive snapshots never shrink a bucket");
        }

        for worker in workers {
            worker.join();
        }
        let fin = hist.snapshot();
        assert_eq!(fin.count(), 2, "every sample lands after join");
        assert_eq!(fin.buckets[bucket_of(1)], 1);
        assert_eq!(fin.buckets[bucket_of(16)], 1);
    });
    assert!(stats.executions > 1, "schedule must actually branch");
}

#[test]
fn concurrent_ticks_hand_out_unique_tickets() {
    let stats = Model::new().check(|| {
        let counter = Arc::new(Counter::new());
        // Plain std atomics for the result mailbox: invisible to the model,
        // so only the shim-backed `tick` RMWs contribute transitions.
        let tickets = Arc::new([
            std::sync::atomic::AtomicU64::new(u64::MAX),
            std::sync::atomic::AtomicU64::new(u64::MAX),
        ]);
        let workers: Vec<_> = (0..2)
            .map(|slot| {
                let counter = Arc::clone(&counter);
                let tickets = Arc::clone(&tickets);
                thread::spawn(move || {
                    let ticket = counter.tick();
                    tickets[slot].store(ticket, std::sync::atomic::Ordering::Relaxed);
                })
            })
            .collect();
        for worker in workers {
            worker.join();
        }
        let a = tickets[0].load(std::sync::atomic::Ordering::Relaxed);
        let b = tickets[1].load(std::sync::atomic::Ordering::Relaxed);
        let mut seen = [a, b];
        seen.sort_unstable();
        assert_eq!(
            seen,
            [0, 1],
            "tick is a fetch-add: tickets 0 and 1, once each"
        );
        assert_eq!(counter.get(), 2);
    });
    assert!(stats.executions > 1, "schedule must actually branch");
}
