//! Fundamental identifier types shared across the protocol engine and its
//! backends.
//!
//! Every identifier is a small `Copy` newtype so that hot-path maps and
//! queues never allocate and so the simulator can use them as dense keys.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one SMP node (one physical machine) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies one communicating process (one protocol endpoint).
///
/// A process lives on exactly one node; the pair `(node, local_rank)` is
/// globally unique.  Whether two processes are *intranode* peers (same node,
/// cross-space zero-buffer path) or *internode* peers (NIC + wire path) is
/// decided by comparing their [`NodeId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId {
    /// The node hosting this process.
    pub node: NodeId,
    /// The rank of the process within its node.
    pub local_rank: u32,
}

impl ProcessId {
    /// Creates a process identifier from a node index and a local rank.
    #[inline]
    pub fn new(node: u32, local_rank: u32) -> Self {
        Self {
            node: NodeId(node),
            local_rank,
        }
    }

    /// Returns `true` when `self` and `other` live on the same SMP node and
    /// therefore communicate through the cross-space (shared-memory) path.
    #[inline]
    pub fn same_node(&self, other: &ProcessId) -> bool {
        self.node == other.node
    }

    /// A dense `u64` encoding useful as a hash-map key or for tracing.
    #[inline]
    pub fn as_u64(&self) -> u64 {
        ((self.node.0 as u64) << 32) | self.local_rank as u64
    }

    /// `true` when this value is the [`ANY_SOURCE`] wildcard selector.
    #[inline]
    pub fn is_any_source(&self) -> bool {
        *self == ANY_SOURCE
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}.{}", self.node.0, self.local_rank)
    }
}

/// A user-level message tag used for matching sends to receives, as in MPI.
///
/// The tag space is split in two: values without [`COLLECTIVE_TAG_BIT`] are
/// free for point-to-point traffic, values with it set are **reserved** for
/// the collectives subsystem (and for the [`ANY_TAG`] sentinel).  Reserved
/// tags are never matched by an [`ANY_TAG`] wildcard receive, so collective
/// traffic cannot be stolen by an application's catch-all receive posted on
/// the same endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag(pub u32);

impl Tag {
    /// `true` when this value is the [`ANY_TAG`] wildcard selector.
    #[inline]
    pub fn is_any(&self) -> bool {
        *self == ANY_TAG
    }

    /// `true` when this tag lies in the reserved (collective) half of the
    /// tag space — see [`COLLECTIVE_TAG_BIT`].  The [`ANY_TAG`] sentinel is
    /// reserved too.
    #[inline]
    pub fn is_reserved(&self) -> bool {
        self.0 & COLLECTIVE_TAG_BIT != 0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// Identifies one message within the scope of its *sending* process.
///
/// The pair `(sender ProcessId, MessageId)` is globally unique and is what
/// the pull request refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl MessageId {
    /// Returns the next message id (wrapping).
    #[inline]
    pub fn next(self) -> MessageId {
        MessageId(self.0.wrapping_add(1))
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg{}", self.0)
    }
}

/// Wildcard source selector for posted receives: matches a message from any
/// peer, as MPI's `MPI_ANY_SOURCE` does.
///
/// This is a reserved [`ProcessId`] value (`node u32::MAX, rank u32::MAX`);
/// real processes must not use it.
pub const ANY_SOURCE: ProcessId = ProcessId {
    node: NodeId(u32::MAX),
    local_rank: u32::MAX,
};

/// Wildcard tag selector for posted receives: matches a message with any
/// **non-reserved** tag, as MPI's `MPI_ANY_TAG` does within a communicator.
/// Messages sent with a reserved (collective-space) tag are invisible to it;
/// they can only be matched by naming their concrete tag.
///
/// This is a reserved [`Tag`] value (`u32::MAX`); senders must not use it.
pub const ANY_TAG: Tag = Tag(u32::MAX);

/// The high bit of the 32-bit tag space marks a tag as **reserved** for the
/// collectives subsystem: per-group collective operations derive their tags
/// inside this half, and wildcard ([`ANY_TAG`]) receives never match it, so
/// user point-to-point traffic and collective traffic cannot collide on one
/// endpoint.  The transport front-end rejects reserved tags on its posting
/// API ([`crate::Error::ReservedTag`]); only the collectives layer (or code
/// driving [`crate::RawTransport`] directly, which is trusted to know what
/// it is doing) uses them.
pub const COLLECTIVE_TAG_BIT: u32 = 0x8000_0000;

/// Identifies a protocol timer (used by the go-back-N retransmission logic).
///
/// Timers are namespaced per peer channel; the backend must call
/// [`Endpoint::handle_timer`](crate::Endpoint::handle_timer) with the same id
/// when the requested delay elapses, unless the timer was cancelled first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId {
    /// The peer whose channel owns the timer.
    pub peer: ProcessId,
    /// Monotonically increasing generation, so a stale (cancelled) timer
    /// firing late is recognised and ignored.
    pub generation: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn process_id_same_node() {
        let a = ProcessId::new(3, 0);
        let b = ProcessId::new(3, 2);
        let c = ProcessId::new(4, 0);
        assert!(a.same_node(&b));
        assert!(!a.same_node(&c));
    }

    #[test]
    fn process_id_dense_encoding_unique() {
        let mut seen = HashSet::new();
        for node in 0..8u32 {
            for rank in 0..8u32 {
                assert!(seen.insert(ProcessId::new(node, rank).as_u64()));
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn message_id_next_wraps() {
        assert_eq!(MessageId(0).next(), MessageId(1));
        assert_eq!(MessageId(u64::MAX).next(), MessageId(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId::new(1, 2).to_string(), "p1.2");
        assert_eq!(NodeId(5).to_string(), "node5");
        assert_eq!(Tag(9).to_string(), "tag9");
        assert_eq!(MessageId(17).to_string(), "msg17");
    }

    #[test]
    fn ordering_is_lexicographic_on_node_then_rank() {
        let a = ProcessId::new(0, 5);
        let b = ProcessId::new(1, 0);
        assert!(a < b);
    }

    #[test]
    fn wildcard_sentinels_are_recognised() {
        assert!(ANY_SOURCE.is_any_source());
        assert!(!ProcessId::new(0, 0).is_any_source());
        assert!(ANY_TAG.is_any());
        assert!(!Tag(0).is_any());
        assert_eq!(ANY_SOURCE.as_u64(), u64::MAX);
    }

    #[test]
    fn reserved_tag_space_is_the_high_bit() {
        assert!(!Tag(0).is_reserved());
        assert!(!Tag(COLLECTIVE_TAG_BIT - 1).is_reserved());
        assert!(Tag(COLLECTIVE_TAG_BIT).is_reserved());
        assert!(ANY_TAG.is_reserved(), "the wildcard sentinel is reserved");
    }
}
