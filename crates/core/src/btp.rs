//! Bytes-To-Push (BTP) policy.
//!
//! The BTP parameter is the heart of Push-Pull Messaging: it decides how many
//! bytes the sender pushes eagerly before the receiver's pull request
//! arrives.  The paper tunes two values for the internode case —
//! `BTP(1) = 80` bytes (on the critical path) and `BTP(2) = 680` bytes
//! (overlapped with the acknowledgement) — and a single 16-byte BTP for the
//! intranode case.  `BTP = 0` degenerates to the three-phase rendezvous
//! protocol (Push-Zero) and `BTP = ∞` to a purely eager protocol (Push-All).

use crate::config::{OptFlags, ProtocolMode};
use serde::{Deserialize, Serialize};

/// How many bytes to push eagerly, and how to split them between the first
/// and second pushed messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtpPolicy {
    /// Bytes pushed immediately when the send is posted (`BTP(1)`).
    pub btp1: usize,
    /// Bytes pushed overlapped with the acknowledgement (`BTP(2)`).  Only
    /// used when [`OptFlags::push_ack_overlap`] is enabled; otherwise the
    /// engine pushes `btp1 + btp2` bytes as a single first push, which
    /// matches the paper's non-overlapped "raw" Push-Pull variant with
    /// `BTP = btp1 + btp2`.
    pub btp2: usize,
}

impl BtpPolicy {
    /// The intranode default used throughout Section 5.1 of the paper.
    pub const INTRANODE_DEFAULT: BtpPolicy = BtpPolicy { btp1: 16, btp2: 0 };

    /// The internode default obtained by the two tuning experiments in
    /// Section 5.2 of the paper: `BTP(1) = 80`, `BTP(2) = 680`.
    pub const INTERNODE_DEFAULT: BtpPolicy = BtpPolicy {
        btp1: 80,
        btp2: 680,
    };

    /// Creates a policy with a single (non-split) BTP value.
    #[inline]
    pub fn single(btp: usize) -> Self {
        Self { btp1: btp, btp2: 0 }
    }

    /// Creates a split policy with explicit `BTP(1)` and `BTP(2)` values.
    #[inline]
    pub fn split(btp1: usize, btp2: usize) -> Self {
        Self { btp1, btp2 }
    }

    /// The total number of bytes pushed eagerly.
    #[inline]
    pub fn total(&self) -> usize {
        self.btp1 + self.btp2
    }

    /// Size of the pushed buffer required per in-flight unexpected message
    /// when push-and-acknowledge overlapping is in use.
    ///
    /// The paper notes the overlapping technique "can also minimise the size
    /// of the pushed buffer, where only the larger value of BTP(1) and
    /// BTP(2) is used as the size of the buffer" — because the two pushed
    /// fragments are consumed one after the other.
    #[inline]
    pub fn min_pushed_buffer(&self) -> usize {
        self.btp1.max(self.btp2)
    }
}

impl Default for BtpPolicy {
    fn default() -> Self {
        BtpPolicy::INTERNODE_DEFAULT
    }
}

/// The concrete split of one message into pushed and pulled parts.
///
/// Computed by [`BtpSplit::plan`] from the protocol mode, the BTP policy,
/// the optimisation flags, and the message length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtpSplit {
    /// Bytes carried by the first pushed message (starts at offset 0).
    pub first_push: usize,
    /// Bytes carried by the second pushed message (starts at `first_push`).
    pub second_push: usize,
    /// Bytes left to be pulled by the receiver (starts at
    /// `first_push + second_push`).
    pub pulled: usize,
}

impl BtpSplit {
    /// Plans the split of a `len`-byte message.
    ///
    /// * `PushAll` pushes everything in the first push.
    /// * `PushZero` pushes nothing; the first push is a zero-length probe
    ///   that merely announces the message so the receiver can pull it.
    /// * `PushPull` pushes `BTP(1)` (+ `BTP(2)` when overlapping) bytes and
    ///   pulls the rest.  When overlapping is disabled the two BTP values are
    ///   merged into a single first push, matching the raw protocol.
    pub fn plan(mode: ProtocolMode, policy: BtpPolicy, opts: OptFlags, len: usize) -> BtpSplit {
        match mode {
            ProtocolMode::PushAll => BtpSplit {
                first_push: len,
                second_push: 0,
                pulled: 0,
            },
            ProtocolMode::PushZero => BtpSplit {
                first_push: 0,
                second_push: 0,
                pulled: len,
            },
            ProtocolMode::PushPull => {
                if opts.push_ack_overlap {
                    let first = policy.btp1.min(len);
                    let second = policy.btp2.min(len - first);
                    BtpSplit {
                        first_push: first,
                        second_push: second,
                        pulled: len - first - second,
                    }
                } else {
                    let first = policy.total().min(len);
                    BtpSplit {
                        first_push: first,
                        second_push: 0,
                        pulled: len - first,
                    }
                }
            }
        }
    }

    /// Total message length described by this split.
    #[inline]
    pub fn total(&self) -> usize {
        self.first_push + self.second_push + self.pulled
    }

    /// `true` when the receiver must issue a pull request to complete the
    /// message (i.e. some bytes were withheld by the sender).
    #[inline]
    pub fn needs_pull(&self) -> bool {
        self.pulled > 0
    }

    /// `true` when the message is completed by pushes alone.
    #[inline]
    pub fn eager_only(&self) -> bool {
        self.pulled == 0
    }

    /// Offset of the second pushed fragment within the message.
    #[inline]
    pub fn second_push_offset(&self) -> usize {
        self.first_push
    }

    /// Offset of the pulled fragment within the message.
    #[inline]
    pub fn pulled_offset(&self) -> usize {
        self.first_push + self.second_push
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(overlap: bool) -> OptFlags {
        OptFlags {
            push_ack_overlap: overlap,
            ..OptFlags::none()
        }
    }

    #[test]
    fn push_all_pushes_everything() {
        let s = BtpSplit::plan(
            ProtocolMode::PushAll,
            BtpPolicy::split(80, 680),
            opts(true),
            5000,
        );
        assert_eq!(s.first_push, 5000);
        assert_eq!(s.second_push, 0);
        assert_eq!(s.pulled, 0);
        assert!(s.eager_only());
    }

    #[test]
    fn push_zero_pushes_nothing() {
        let s = BtpSplit::plan(
            ProtocolMode::PushZero,
            BtpPolicy::split(80, 680),
            opts(true),
            5000,
        );
        assert_eq!(s.first_push, 0);
        assert_eq!(s.second_push, 0);
        assert_eq!(s.pulled, 5000);
        assert!(s.needs_pull());
    }

    #[test]
    fn push_pull_overlapped_split() {
        let s = BtpSplit::plan(
            ProtocolMode::PushPull,
            BtpPolicy::split(80, 680),
            opts(true),
            5000,
        );
        assert_eq!(s.first_push, 80);
        assert_eq!(s.second_push, 680);
        assert_eq!(s.pulled, 5000 - 760);
        assert_eq!(s.second_push_offset(), 80);
        assert_eq!(s.pulled_offset(), 760);
    }

    #[test]
    fn push_pull_without_overlap_merges_btp() {
        let s = BtpSplit::plan(
            ProtocolMode::PushPull,
            BtpPolicy::split(80, 680),
            opts(false),
            5000,
        );
        assert_eq!(s.first_push, 760);
        assert_eq!(s.second_push, 0);
        assert_eq!(s.pulled, 5000 - 760);
    }

    #[test]
    fn short_messages_fit_entirely_in_pushes() {
        // Shorter than BTP(1): everything goes in the first push.
        let s = BtpSplit::plan(
            ProtocolMode::PushPull,
            BtpPolicy::split(80, 680),
            opts(true),
            50,
        );
        assert_eq!(s.first_push, 50);
        assert_eq!(s.second_push, 0);
        assert_eq!(s.pulled, 0);

        // Between BTP(1) and BTP(1)+BTP(2): first push full, second partial.
        let s = BtpSplit::plan(
            ProtocolMode::PushPull,
            BtpPolicy::split(80, 680),
            opts(true),
            500,
        );
        assert_eq!(s.first_push, 80);
        assert_eq!(s.second_push, 420);
        assert_eq!(s.pulled, 0);
        assert!(s.eager_only());
    }

    #[test]
    fn split_conserves_length() {
        for len in [0usize, 1, 15, 16, 17, 80, 760, 761, 1500, 4096, 8192, 65536] {
            for mode in [
                ProtocolMode::PushZero,
                ProtocolMode::PushPull,
                ProtocolMode::PushAll,
            ] {
                for overlap in [false, true] {
                    let s = BtpSplit::plan(mode, BtpPolicy::split(80, 680), opts(overlap), len);
                    assert_eq!(s.total(), len, "mode={mode:?} overlap={overlap} len={len}");
                }
            }
        }
    }

    #[test]
    fn min_pushed_buffer_is_max_of_split() {
        assert_eq!(BtpPolicy::split(80, 680).min_pushed_buffer(), 680);
        assert_eq!(BtpPolicy::split(700, 680).min_pushed_buffer(), 700);
        assert_eq!(BtpPolicy::single(16).min_pushed_buffer(), 16);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(BtpPolicy::INTRANODE_DEFAULT.total(), 16);
        assert_eq!(BtpPolicy::INTERNODE_DEFAULT.btp1, 80);
        assert_eq!(BtpPolicy::INTERNODE_DEFAULT.btp2, 680);
    }

    #[test]
    fn zero_length_message() {
        let s = BtpSplit::plan(ProtocolMode::PushPull, BtpPolicy::default(), opts(true), 0);
        assert_eq!(s.total(), 0);
        assert!(s.eager_only());
    }
}
