//! Go-back-N reliable delivery for the internode path.
//!
//! The paper's prototype runs directly on raw Fast Ethernet frames and
//! implements "the go-back-n reliable protocol" (citing Tanenbaum) to recover
//! from drops — most importantly the drops that happen when Push-All
//! overwhelms the finite pushed buffer at a late receiver (Fig. 6, right).
//!
//! [`GoBackN`] is a per-peer, sans-I/O ARQ channel: protocol packets go in,
//! [`GbnEvent`]s come out (frames to transmit, packets to deliver, timers to
//! arm).  The engine owns one channel per internode peer; intranode peers
//! bypass the ARQ entirely because shared memory does not lose data.

use crate::error::{Error, Result};
use crate::wire::Packet;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a go-back-N channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GbnConfig {
    /// Maximum number of unacknowledged data frames in flight.
    pub window: usize,
    /// Retransmission timeout in microseconds.  The paper's prototype uses a
    /// coarse kernel timer; 50 ms reproduces the ≈150 ms Push-All recovery
    /// time reported for 3072-byte messages in the late-receiver test.
    pub rto_us: u64,
    /// Give up after this many consecutive timeouts of the same frame.
    pub max_retries: u32,
}

impl Default for GbnConfig {
    fn default() -> Self {
        GbnConfig {
            window: 64,
            rto_us: 50_000,
            max_retries: 40,
        }
    }
}

/// Statistics maintained by a go-back-N channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GbnStats {
    /// Data frames handed to the wire (including retransmissions).
    pub frames_sent: u64,
    /// Data frames retransmitted after a timeout.
    pub retransmissions: u64,
    /// Retransmission timeouts that fired.
    pub timeouts: u64,
    /// In-order data frames delivered to the protocol.
    pub delivered: u64,
    /// Out-of-order or duplicate frames discarded by the receiver.
    pub discarded: u64,
    /// Acknowledgement frames sent.
    pub acks_sent: u64,
}

/// A wire frame: a protocol packet wrapped with a sequence number, or a
/// cumulative acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A sequenced data frame carrying one protocol packet.
    Data {
        /// Sequence number of this frame on its channel.
        seq: u64,
        /// The protocol packet carried by the frame.
        packet: Packet,
    },
    /// A cumulative acknowledgement: every data frame with `seq < next_expected`
    /// has been received in order.
    Ack {
        /// The next sequence number the receiver expects.
        next_expected: u64,
    },
}

impl Frame {
    /// Size of the frame on the wire (sequencing header plus packet bytes).
    pub fn wire_size(&self) -> usize {
        match self {
            Frame::Data { packet, .. } => 1 + 8 + packet.wire_size(),
            Frame::Ack { .. } => 1 + 8,
        }
    }

    /// Serialises the frame into `buf` (appended after any existing
    /// contents) without intermediate allocations.  Use with a
    /// [`PacketBufPool`](crate::wire::PacketBufPool) buffer to keep the
    /// transmit path allocation-free.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.wire_size());
        match self {
            Frame::Data { seq, packet } => {
                buf.put_u8(0);
                buf.put_u64(*seq);
                packet.encode_into(buf);
            }
            Frame::Ack { next_expected } => {
                buf.put_u8(1);
                buf.put_u64(*next_expected);
            }
        }
    }

    /// Serialises the frame into a freshly allocated buffer.  Prefer
    /// [`Frame::encode_into`] on hot paths.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Parses a frame.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 9 {
            // Field-carrying error: the decode path runs per frame and must
            // not allocate just to reject garbage.
            return Err(Error::TruncatedFrame {
                have: data.remaining(),
            });
        }
        let kind = data.get_u8();
        let value = data.get_u64();
        match kind {
            0 => Ok(Frame::Data {
                seq: value,
                packet: Packet::decode(data)?,
            }),
            1 => Ok(Frame::Ack {
                next_expected: value,
            }),
            other => Err(Error::UnknownFrameKind { byte: other }),
        }
    }
}

/// Output of the go-back-N state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbnEvent {
    /// Transmit this frame on the wire.
    Transmit(Frame),
    /// Deliver this packet, received in order, to the protocol layer.
    Deliver(Packet),
    /// Arm (or re-arm) the retransmission timer.  A later
    /// [`GbnEvent::CancelTimer`] or a newer `SetTimer` for the same channel
    /// supersedes it; stale generations must be ignored by the caller.
    SetTimer {
        /// Generation used to recognise stale timers.
        generation: u64,
        /// Delay after which [`GoBackN::on_timeout`] should be called.
        delay_us: u64,
    },
    /// Cancel the retransmission timer of the given generation.
    CancelTimer {
        /// Generation of the timer being cancelled.
        generation: u64,
    },
    /// The channel has exceeded its retry budget; the peer is presumed dead.
    ChannelFailed,
}

/// A bidirectional go-back-N channel to one peer.
#[derive(Debug)]
pub struct GoBackN {
    cfg: GbnConfig,
    // --- sender side ---
    next_seq: u64,
    base: u64,
    in_flight: VecDeque<(u64, Packet)>,
    pending: VecDeque<Packet>,
    timer_generation: u64,
    timer_armed: bool,
    retries: u32,
    failed: bool,
    /// Test hook: when set, `on_timeout` retransmits but never re-arms the
    /// timer, wedging the channel if the retransmission is lost too.  Exists
    /// so the chaos harness can prove it catches a real retransmission bug.
    skip_rearm: bool,
    // --- receiver side ---
    next_expected: u64,
    stats: GbnStats,
    /// Heap allocations performed by the channel's queues after construction
    /// (growth beyond the window-sized initial capacity).  Folded into
    /// [`EndpointStats::steady_allocs`](crate::EndpointStats::steady_allocs).
    alloc_events: u64,
}

impl GoBackN {
    /// Creates a channel with the given configuration.  Both queues are
    /// pre-sized to the window from the configuration, so a channel that
    /// never backlogs past its window performs no queue allocation after
    /// this call.
    pub fn new(cfg: GbnConfig) -> Self {
        GoBackN {
            cfg,
            next_seq: 0,
            base: 0,
            in_flight: VecDeque::with_capacity(cfg.window),
            pending: VecDeque::with_capacity(cfg.window),
            timer_generation: 0,
            timer_armed: false,
            retries: 0,
            failed: false,
            skip_rearm: false,
            next_expected: 0,
            stats: GbnStats::default(),
            alloc_events: 0,
        }
    }

    /// Queues a protocol packet for reliable transmission.  Frames are
    /// emitted immediately while the window has room; the rest are sent as
    /// acknowledgements open the window.
    pub fn send(&mut self, packet: Packet, out: &mut Vec<GbnEvent>) {
        if self.pending.len() == self.pending.capacity() {
            self.alloc_events += 1;
        }
        self.pending.push_back(packet);
        self.pump(out);
    }

    /// Handles a frame arriving from the peer.
    pub fn on_frame(&mut self, frame: Frame, out: &mut Vec<GbnEvent>) {
        match frame {
            Frame::Data { seq, packet } => {
                if seq == self.next_expected {
                    self.next_expected += 1;
                    self.stats.delivered += 1;
                    out.push(GbnEvent::Deliver(packet));
                } else {
                    // Out of order: go-back-N receivers discard and re-ack.
                    self.stats.discarded += 1;
                }
                self.stats.acks_sent += 1;
                out.push(GbnEvent::Transmit(Frame::Ack {
                    next_expected: self.next_expected,
                }));
            }
            Frame::Ack { next_expected } => {
                if next_expected > self.base {
                    while self
                        .in_flight
                        .front()
                        .map(|(seq, _)| *seq < next_expected)
                        .unwrap_or(false)
                    {
                        self.in_flight.pop_front();
                    }
                    self.base = next_expected;
                    self.retries = 0;
                    self.manage_timer(out);
                }
                self.pump(out);
            }
        }
    }

    /// Handles a retransmission timer firing.  `generation` must be the one
    /// from the matching [`GbnEvent::SetTimer`]; stale generations are
    /// ignored.
    pub fn on_timeout(&mut self, generation: u64, out: &mut Vec<GbnEvent>) {
        if !self.timer_armed || generation != self.timer_generation || self.failed {
            return;
        }
        if self.in_flight.is_empty() {
            self.timer_armed = false;
            return;
        }
        self.stats.timeouts += 1;
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.failed = true;
            out.push(GbnEvent::ChannelFailed);
            return;
        }
        // Go-back-N: retransmit every unacknowledged frame.
        for (seq, packet) in self.in_flight.iter() {
            self.stats.frames_sent += 1;
            self.stats.retransmissions += 1;
            out.push(GbnEvent::Transmit(Frame::Data {
                seq: *seq,
                packet: packet.clone(),
            }));
        }
        self.timer_generation += 1;
        if self.skip_rearm {
            // Injected bug (see `sabotage_skip_rearm`): losing any frame of
            // the retransmitted window now wedges the channel for good.
            self.timer_armed = false;
            return;
        }
        self.timer_armed = true;
        out.push(GbnEvent::SetTimer {
            generation: self.timer_generation,
            delay_us: self.cfg.rto_us,
        });
    }

    /// Disables the retransmission-timer re-arm after a timeout — an
    /// intentionally injected reliability bug used by the chaos harness's
    /// "teeth" regression test.  Never enable outside tests.
    #[doc(hidden)]
    pub fn sabotage_skip_rearm(&mut self) {
        self.skip_rearm = true;
    }

    fn pump(&mut self, out: &mut Vec<GbnEvent>) {
        if self.failed {
            return;
        }
        let mut sent_any = false;
        while self.in_flight.len() < self.cfg.window {
            let Some(packet) = self.pending.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            if self.in_flight.len() == self.in_flight.capacity() {
                self.alloc_events += 1;
            }
            self.in_flight.push_back((seq, packet.clone()));
            self.stats.frames_sent += 1;
            out.push(GbnEvent::Transmit(Frame::Data { seq, packet }));
            sent_any = true;
        }
        if sent_any {
            self.manage_timer(out);
        }
    }

    fn manage_timer(&mut self, out: &mut Vec<GbnEvent>) {
        if self.in_flight.is_empty() {
            if self.timer_armed {
                self.timer_armed = false;
                out.push(GbnEvent::CancelTimer {
                    generation: self.timer_generation,
                });
            }
        } else {
            self.timer_generation += 1;
            self.timer_armed = true;
            out.push(GbnEvent::SetTimer {
                generation: self.timer_generation,
                delay_us: self.cfg.rto_us,
            });
        }
    }

    /// Number of data frames currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of packets queued but not yet transmitted (window full).
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// `true` when every queued packet has been transmitted and acknowledged.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.pending.is_empty()
    }

    /// `true` once the channel has given up after too many retries.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// A snapshot of the channel statistics.
    pub fn stats(&self) -> GbnStats {
        self.stats
    }

    /// Number of heap allocations the channel's queues performed after
    /// construction (steady state within the window must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// The configuration the channel was created with.
    pub fn config(&self) -> GbnConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MessageId, ProcessId, Tag};
    use crate::wire::{PacketHeader, PacketKind, PushPart};

    fn pkt(n: u64, len: usize) -> Packet {
        let header = PacketHeader {
            kind: PacketKind::Push(PushPart::First),
            src: ProcessId::new(0, 0),
            dst: ProcessId::new(1, 0),
            msg_id: MessageId(n),
            tag: Tag(0),
            total_len: len as u32,
            eager_len: len as u32,
            offset: 0,
            payload_len: len as u32,
        };
        Packet::new(header, Bytes::from(vec![n as u8; len])).unwrap()
    }

    fn transmit_frames(events: &[GbnEvent]) -> Vec<Frame> {
        events
            .iter()
            .filter_map(|e| match e {
                GbnEvent::Transmit(f) => Some(f.clone()),
                _ => None,
            })
            .collect()
    }

    fn delivered(events: &[GbnEvent]) -> Vec<Packet> {
        events
            .iter()
            .filter_map(|e| match e {
                GbnEvent::Deliver(p) => Some(p.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame::Data {
            seq: 99,
            packet: pkt(1, 128),
        };
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        let a = Frame::Ack { next_expected: 7 };
        assert_eq!(Frame::decode(a.encode()).unwrap(), a);
        assert!(Frame::decode(Bytes::from(vec![0u8; 3])).is_err());
    }

    #[test]
    fn lossless_transfer_delivers_in_order() {
        let cfg = GbnConfig::default();
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);

        let mut events = Vec::new();
        for i in 0..10 {
            sender.send(pkt(i, 64), &mut events);
        }
        let frames = transmit_frames(&events);
        assert_eq!(frames.len(), 10);

        let mut recv_events = Vec::new();
        for f in frames {
            receiver.on_frame(f, &mut recv_events);
        }
        let packets = delivered(&recv_events);
        assert_eq!(packets.len(), 10);
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.header.msg_id, MessageId(i as u64));
        }

        // Feed the acks back.
        let mut ack_events = Vec::new();
        for f in transmit_frames(&recv_events) {
            sender.on_frame(f, &mut ack_events);
        }
        assert!(sender.idle());
    }

    #[test]
    fn window_limits_in_flight() {
        let cfg = GbnConfig {
            window: 4,
            ..Default::default()
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..10 {
            sender.send(pkt(i, 8), &mut events);
        }
        assert_eq!(transmit_frames(&events).len(), 4);
        assert_eq!(sender.in_flight(), 4);
        assert_eq!(sender.backlog(), 6);

        // Ack the first two; two more flow.
        let mut more = Vec::new();
        sender.on_frame(Frame::Ack { next_expected: 2 }, &mut more);
        assert_eq!(transmit_frames(&more).len(), 2);
        assert_eq!(sender.in_flight(), 4);
        assert_eq!(sender.backlog(), 4);
    }

    #[test]
    fn timeout_retransmits_all_in_flight() {
        let cfg = GbnConfig {
            window: 8,
            rto_us: 1000,
            max_retries: 3,
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..3 {
            sender.send(pkt(i, 8), &mut events);
        }
        // Find the latest timer generation.
        let generation = events
            .iter()
            .filter_map(|e| match e {
                GbnEvent::SetTimer { generation, .. } => Some(*generation),
                _ => None,
            })
            .next_back()
            .unwrap();

        let mut timeout_events = Vec::new();
        sender.on_timeout(generation, &mut timeout_events);
        let frames = transmit_frames(&timeout_events);
        assert_eq!(frames.len(), 3);
        assert_eq!(sender.stats().retransmissions, 3);
        assert_eq!(sender.stats().timeouts, 1);
    }

    #[test]
    fn stale_timer_is_ignored() {
        let cfg = GbnConfig::default();
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        sender.send(pkt(0, 8), &mut events);
        let mut out = Vec::new();
        sender.on_timeout(0, &mut out); // generation 0 was never issued (first is 1)
        assert!(out.is_empty() || !matches!(out[0], GbnEvent::Transmit(_)));
        assert_eq!(sender.stats().timeouts, 0);
    }

    #[test]
    fn receiver_discards_out_of_order_and_reacks() {
        let cfg = GbnConfig::default();
        let mut receiver = GoBackN::new(cfg);
        let mut out = Vec::new();
        // Frame 1 arrives before frame 0 (e.g. frame 0 was lost).
        receiver.on_frame(
            Frame::Data {
                seq: 1,
                packet: pkt(1, 8),
            },
            &mut out,
        );
        assert!(delivered(&out).is_empty());
        let frames = transmit_frames(&out);
        assert_eq!(frames, vec![Frame::Ack { next_expected: 0 }]);
        assert_eq!(receiver.stats().discarded, 1);

        // Now frame 0 arrives; it is delivered, but frame 1 must be resent.
        let mut out = Vec::new();
        receiver.on_frame(
            Frame::Data {
                seq: 0,
                packet: pkt(0, 8),
            },
            &mut out,
        );
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(transmit_frames(&out), vec![Frame::Ack { next_expected: 1 }]);
    }

    #[test]
    fn duplicate_delivery_never_happens() {
        let cfg = GbnConfig::default();
        let mut receiver = GoBackN::new(cfg);
        let mut out = Vec::new();
        let frame = Frame::Data {
            seq: 0,
            packet: pkt(0, 8),
        };
        receiver.on_frame(frame.clone(), &mut out);
        receiver.on_frame(frame, &mut out);
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(receiver.stats().discarded, 1);
    }

    #[test]
    fn loss_recovery_end_to_end() {
        // Drop every third data frame on the first attempt and check that
        // everything still arrives exactly once and in order.
        let cfg = GbnConfig {
            window: 4,
            rto_us: 100,
            max_retries: 20,
        };
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);
        let total = 12u64;

        let mut to_send: Vec<Packet> = (0..total).map(|i| pkt(i, 16)).collect();
        let mut delivered_ids: Vec<u64> = Vec::new();
        let mut drop_counter = 0u64;
        let mut pending_timer: Option<u64> = None;

        let mut wire: VecDeque<Frame> = VecDeque::new();
        let mut events = Vec::new();
        for p in to_send.drain(..) {
            sender.send(p, &mut events);
        }
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 10_000, "did not converge");
            // Process sender events.
            let drained: Vec<GbnEvent> = std::mem::take(&mut events);
            for e in drained {
                match e {
                    GbnEvent::Transmit(f) => {
                        if matches!(f, Frame::Data { .. }) {
                            drop_counter += 1;
                            if drop_counter.is_multiple_of(3) {
                                continue; // lost
                            }
                        }
                        wire.push_back(f);
                    }
                    GbnEvent::SetTimer { generation, .. } => pending_timer = Some(generation),
                    GbnEvent::CancelTimer { .. } => pending_timer = None,
                    _ => {}
                }
            }
            // Deliver wire frames to the receiver, responses back to sender.
            let mut recv_events = Vec::new();
            while let Some(f) = wire.pop_front() {
                receiver.on_frame(f, &mut recv_events);
            }
            for e in recv_events {
                match e {
                    GbnEvent::Deliver(p) => delivered_ids.push(p.header.msg_id.0),
                    GbnEvent::Transmit(f) => sender.on_frame(f, &mut events),
                    _ => {}
                }
            }
            if sender.idle() {
                break;
            }
            if events.is_empty() {
                // Nothing in flight made progress; fire the timer.
                if let Some(generation) = pending_timer.take() {
                    sender.on_timeout(generation, &mut events);
                }
            }
        }
        assert_eq!(delivered_ids, (0..total).collect::<Vec<_>>());
        assert!(sender.stats().retransmissions > 0);
    }

    #[test]
    fn window_sized_queues_never_allocate_within_window() {
        let cfg = GbnConfig {
            window: 8,
            ..Default::default()
        };
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);
        let mut events = Vec::new();
        let mut acks = Vec::new();
        for i in 0..1000u64 {
            sender.send(pkt(i, 16), &mut events);
            for e in events.drain(..) {
                if let GbnEvent::Transmit(f) = e {
                    receiver.on_frame(f, &mut acks);
                }
            }
            for e in acks.drain(..) {
                if let GbnEvent::Transmit(f) = e {
                    sender.on_frame(f, &mut events);
                }
            }
            events.clear();
        }
        assert!(sender.idle());
        assert_eq!(
            sender.alloc_events(),
            0,
            "in-window traffic must not grow the pre-sized queues"
        );
        assert_eq!(receiver.alloc_events(), 0);
    }

    #[test]
    fn backlog_past_window_is_counted_as_allocation() {
        let cfg = GbnConfig {
            window: 2,
            ..Default::default()
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..8 {
            sender.send(pkt(i, 8), &mut events);
        }
        assert!(sender.backlog() > sender.config().window);
        assert!(
            sender.alloc_events() > 0,
            "growth events must be observable"
        );
    }

    #[test]
    fn channel_fails_after_max_retries() {
        let cfg = GbnConfig {
            window: 2,
            rto_us: 10,
            max_retries: 2,
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        sender.send(pkt(0, 8), &mut events);
        let mut failed = false;
        for _ in 0..10 {
            let generation = events
                .iter()
                .filter_map(|e| match e {
                    GbnEvent::SetTimer { generation, .. } => Some(*generation),
                    _ => None,
                })
                .next_back();
            events.clear();
            if let Some(generation) = generation {
                sender.on_timeout(generation, &mut events);
            }
            if events.iter().any(|e| matches!(e, GbnEvent::ChannelFailed)) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert!(sender.failed());
    }
}
