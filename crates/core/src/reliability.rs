//! Reliable delivery for the internode path: go-back-N and selective repeat.
//!
//! The paper's prototype runs directly on raw Fast Ethernet frames and
//! implements "the go-back-n reliable protocol" (citing Tanenbaum) to recover
//! from drops — most importantly the drops that happen when Push-All
//! overwhelms the finite pushed buffer at a late receiver (Fig. 6, right).
//!
//! [`GoBackN`] is a per-peer, sans-I/O ARQ channel: protocol packets go in,
//! [`GbnEvent`]s come out (frames to transmit, packets to deliver, timers to
//! arm).  The engine owns one channel per internode peer; intranode peers
//! bypass the ARQ entirely because shared memory does not lose data.
//!
//! [`SelectiveRepeat`] is the production-fan-in alternative
//! ([`ReliabilityMode::SelectiveRepeat`]): the receiver buffers out-of-order
//! frames and acknowledges them with a SACK bitmap ([`Frame::Sack`]), so a
//! single loss costs one retransmission instead of the whole window.  Both
//! channels speak the same [`GbnEvent`] interface and are dispatched through
//! [`ArqChannel`], so the engine, backends, and chaos harness treat them
//! uniformly.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use crate::error::{Error, Result};
use crate::telemetry::{self, EventKind};
use crate::wire::{Packet, MAX_HEADER_LEN};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which ARQ scheme an endpoint's internode channels run.
///
/// Selectable per endpoint via
/// [`EndpointConfig::reliability`](crate::EndpointConfig::reliability) or the
/// [`ProtocolConfig::reliability`](crate::ProtocolConfig) field; both modes
/// share the window / RTO / retry knobs of [`GbnConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReliabilityMode {
    /// The paper's scheme: cumulative acks, receiver discards out-of-order
    /// frames, a timeout retransmits the whole in-flight window.  Cheapest
    /// per-frame bookkeeping; pathological under loss on high-BDP links.
    #[default]
    GoBackN,
    /// SACK-bitmap acks with an out-of-order receive buffer: a timeout (or a
    /// triple duplicate SACK) retransmits only the frames actually missing.
    SelectiveRepeat,
}

impl ReliabilityMode {
    /// Human-readable label used in logs and wedge diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            ReliabilityMode::GoBackN => "go-back-N",
            ReliabilityMode::SelectiveRepeat => "selective-repeat",
        }
    }
}

/// Configuration of a go-back-N channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GbnConfig {
    /// Maximum number of unacknowledged data frames in flight.
    pub window: usize,
    /// Retransmission timeout in microseconds.  The paper's prototype uses a
    /// coarse kernel timer; 50 ms reproduces the ≈150 ms Push-All recovery
    /// time reported for 3072-byte messages in the late-receiver test.
    pub rto_us: u64,
    /// Give up after this many consecutive timeouts of the same frame.
    pub max_retries: u32,
}

impl Default for GbnConfig {
    fn default() -> Self {
        GbnConfig {
            window: 64,
            rto_us: 50_000,
            max_retries: 40,
        }
    }
}

/// Statistics maintained by a go-back-N channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GbnStats {
    /// Data frames handed to the wire (including retransmissions).
    pub frames_sent: u64,
    /// Data frames retransmitted after a timeout.
    pub retransmissions: u64,
    /// Retransmission timeouts that fired.
    pub timeouts: u64,
    /// In-order data frames delivered to the protocol.
    pub delivered: u64,
    /// Out-of-order or duplicate frames discarded by the receiver.
    pub discarded: u64,
    /// Acknowledgement frames sent.
    pub acks_sent: u64,
    /// Acknowledgement frames received ([`Frame::Ack`] or [`Frame::Sack`]).
    pub acks_received: u64,
    /// Data frames received whose payload had already been accepted (a
    /// retransmission that crossed an in-flight ack, or a network duplicate).
    /// A subset of `discarded` for go-back-N; counted separately for
    /// selective repeat, where out-of-order is buffered rather than dropped.
    pub duplicates: u64,
    /// Retransmissions triggered by an RTO expiry (a subset of
    /// `retransmissions`).
    pub rto_retransmits: u64,
    /// Retransmissions triggered by duplicate-SACK fast recovery (a subset
    /// of `retransmissions`; always 0 for go-back-N, which has no SACK
    /// hole detection).
    pub fast_retransmits: u64,
}

/// Maximum number of 64-bit words in a [`Frame::Sack`] bitmap.
///
/// Four words describe the 256 sequence numbers after the cumulative point —
/// enough to cover any sane window without heap allocation.  Frames beyond
/// the bitmap horizon are simply not selectively acknowledged; the cumulative
/// field still guarantees correctness, the bitmap is an efficiency hint.
pub const MAX_SACK_WORDS: usize = 4;

/// A wire frame: a protocol packet wrapped with a sequence number, or a
/// cumulative acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A sequenced data frame carrying one protocol packet.
    Data {
        /// Sequence number of this frame on its channel.
        seq: u64,
        /// The protocol packet carried by the frame.
        packet: Packet,
    },
    /// A cumulative acknowledgement: every data frame with `seq < next_expected`
    /// has been received in order.
    Ack {
        /// The next sequence number the receiver expects.
        next_expected: u64,
    },
    /// A selective acknowledgement: cumulative point plus a bitmap of frames
    /// received beyond it.  Bit `i` of the bitmap (bit `i % 64` of word
    /// `i / 64`) set means frame `next_expected + 1 + i` has been received and
    /// buffered.  `next_expected` itself is by definition missing (otherwise
    /// the cumulative point would have advanced past it).  Trailing all-zero
    /// words are trimmed on the wire.
    Sack {
        /// The next sequence number the receiver expects in order.
        next_expected: u64,
        /// Received-frame bitmap covering `next_expected + 1 ..=
        /// next_expected + 64 * MAX_SACK_WORDS`.
        bitmap: [u64; MAX_SACK_WORDS],
    },
}

/// Number of trailing-zero-trimmed words a SACK bitmap encodes to.
fn sack_words(bitmap: &[u64; MAX_SACK_WORDS]) -> usize {
    bitmap
        .iter()
        .rposition(|w| *w != 0)
        .map(|i| i + 1)
        .unwrap_or(0)
}

impl Frame {
    /// Size of the frame on the wire (sequencing header plus packet bytes).
    pub fn wire_size(&self) -> usize {
        match self {
            Frame::Data { packet, .. } => 1 + 8 + packet.wire_size(),
            Frame::Ack { .. } => 1 + 8,
            Frame::Sack { bitmap, .. } => 1 + 8 + 1 + 8 * sack_words(bitmap),
        }
    }

    /// Serialises the frame into `buf` (appended after any existing
    /// contents) without intermediate allocations.  Use with a
    /// [`PacketBufPool`](crate::wire::PacketBufPool) buffer to keep the
    /// transmit path allocation-free.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.wire_size());
        match self {
            Frame::Data { seq, packet } => {
                buf.put_u8(0);
                buf.put_u64(*seq);
                packet.encode_into(buf);
            }
            Frame::Ack { next_expected } => {
                buf.put_u8(1);
                buf.put_u64(*next_expected);
            }
            Frame::Sack {
                next_expected,
                bitmap,
            } => {
                buf.put_u8(2);
                buf.put_u64(*next_expected);
                let words = sack_words(bitmap);
                buf.put_u8(words as u8);
                for w in &bitmap[..words] {
                    buf.put_u64(*w);
                }
            }
        }
    }

    /// Serialises the frame into a freshly allocated buffer.  Prefer
    /// [`Frame::encode_into`] on hot paths.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Parses a frame.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        let have = data.remaining();
        if have < 9 {
            // Field-carrying error: the decode path runs per frame and must
            // not allocate just to reject garbage.
            return Err(Error::TruncatedFrame { have });
        }
        let kind = data.get_u8();
        let value = data.get_u64();
        match kind {
            0 => Ok(Frame::Data {
                seq: value,
                packet: Packet::decode(data)?,
            }),
            1 => Ok(Frame::Ack {
                next_expected: value,
            }),
            2 => {
                if data.remaining() < 1 {
                    return Err(Error::TruncatedFrame { have });
                }
                let words = data.get_u8();
                if usize::from(words) > MAX_SACK_WORDS {
                    return Err(Error::SackTooWide { words });
                }
                if data.remaining() < 8 * usize::from(words) {
                    return Err(Error::TruncatedFrame { have });
                }
                let mut bitmap = [0u64; MAX_SACK_WORDS];
                for w in bitmap.iter_mut().take(usize::from(words)) {
                    *w = data.get_u64();
                }
                Ok(Frame::Sack {
                    next_expected: value,
                    bitmap,
                })
            }
            other => Err(Error::UnknownFrameKind { byte: other }),
        }
    }
}

/// Output of the go-back-N state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbnEvent {
    /// Transmit this frame on the wire.
    Transmit(Frame),
    /// Deliver this packet, received in order, to the protocol layer.
    Deliver(Packet),
    /// Arm (or re-arm) the retransmission timer.  A later
    /// [`GbnEvent::CancelTimer`] or a newer `SetTimer` for the same channel
    /// supersedes it; stale generations must be ignored by the caller.
    SetTimer {
        /// Generation used to recognise stale timers.
        generation: u64,
        /// Delay after which [`GoBackN::on_timeout`] should be called.
        delay_us: u64,
    },
    /// Cancel the retransmission timer of the given generation.
    CancelTimer {
        /// Generation of the timer being cancelled.
        generation: u64,
    },
    /// The channel has exceeded its retry budget; the peer is presumed dead.
    ChannelFailed,
}

/// A bidirectional go-back-N channel to one peer.
#[derive(Debug)]
pub struct GoBackN {
    cfg: GbnConfig,
    // --- sender side ---
    next_seq: u64,
    base: u64,
    in_flight: VecDeque<(u64, Packet)>,
    pending: VecDeque<Packet>,
    timer_generation: u64,
    timer_armed: bool,
    retries: u32,
    failed: bool,
    /// Test hook: when set, `on_timeout` retransmits but never re-arms the
    /// timer, wedging the channel if the retransmission is lost too.  Exists
    /// so the chaos harness can prove it catches a real retransmission bug.
    skip_rearm: bool,
    // --- receiver side ---
    next_expected: u64,
    stats: GbnStats,
    /// Heap allocations performed by the channel's queues after construction
    /// (growth beyond the window-sized initial capacity).  Folded into
    /// [`EndpointStats::steady_allocs`](crate::EndpointStats::steady_allocs).
    alloc_events: u64,
}

impl GoBackN {
    /// Creates a channel with the given configuration.  Both queues are
    /// pre-sized to the window from the configuration, so a channel that
    /// never backlogs past its window performs no queue allocation after
    /// this call.
    pub fn new(cfg: GbnConfig) -> Self {
        GoBackN {
            cfg,
            next_seq: 0,
            base: 0,
            in_flight: VecDeque::with_capacity(cfg.window),
            pending: VecDeque::with_capacity(cfg.window),
            timer_generation: 0,
            timer_armed: false,
            retries: 0,
            failed: false,
            skip_rearm: false,
            next_expected: 0,
            stats: GbnStats::default(),
            alloc_events: 0,
        }
    }

    /// Queues a protocol packet for reliable transmission.  Frames are
    /// emitted immediately while the window has room; the rest are sent as
    /// acknowledgements open the window.
    pub fn send(&mut self, packet: Packet, out: &mut Vec<GbnEvent>) {
        if self.pending.len() == self.pending.capacity() {
            self.alloc_events += 1;
        }
        self.pending.push_back(packet);
        self.pump(out);
    }

    /// Handles a frame arriving from the peer.
    pub fn on_frame(&mut self, frame: Frame, out: &mut Vec<GbnEvent>) {
        match frame {
            Frame::Data { seq, packet } => {
                if seq == self.next_expected {
                    self.next_expected += 1;
                    self.stats.delivered += 1;
                    out.push(GbnEvent::Deliver(packet));
                } else {
                    // Out of order: go-back-N receivers discard and re-ack.
                    self.stats.discarded += 1;
                    if seq < self.next_expected {
                        // Already accepted once: a retransmission that crossed
                        // an in-flight ack, or a network duplicate.
                        self.stats.duplicates += 1;
                    }
                }
                self.stats.acks_sent += 1;
                out.push(GbnEvent::Transmit(Frame::Ack {
                    next_expected: self.next_expected,
                }));
            }
            // A SACK from a selective-repeat peer degrades gracefully to its
            // cumulative field; the bitmap is meaningless to go-back-N.
            Frame::Ack { next_expected } | Frame::Sack { next_expected, .. } => {
                self.stats.acks_received += 1;
                if next_expected > self.base {
                    while self
                        .in_flight
                        .front()
                        .map(|(seq, _)| *seq < next_expected)
                        .unwrap_or(false)
                    {
                        self.in_flight.pop_front();
                    }
                    self.base = next_expected;
                    self.retries = 0;
                    self.manage_timer(out);
                }
                self.pump(out);
            }
        }
    }

    /// Handles a retransmission timer firing.  `generation` must be the one
    /// from the matching [`GbnEvent::SetTimer`]; stale generations are
    /// ignored.
    pub fn on_timeout(&mut self, generation: u64, out: &mut Vec<GbnEvent>) {
        if !self.timer_armed || generation != self.timer_generation || self.failed {
            if !self.failed {
                telemetry::event(EventKind::TimerStale, generation as u32, 0, 0);
            }
            return;
        }
        if self.in_flight.is_empty() {
            self.timer_armed = false;
            return;
        }
        self.stats.timeouts += 1;
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.failed = true;
            out.push(GbnEvent::ChannelFailed);
            return;
        }
        // Go-back-N: retransmit every unacknowledged frame.
        for (seq, packet) in self.in_flight.iter() {
            self.stats.frames_sent += 1;
            self.stats.retransmissions += 1;
            self.stats.rto_retransmits += 1;
            telemetry::event(EventKind::FrameRetransmit, *seq as u32, 0, 0);
            out.push(GbnEvent::Transmit(Frame::Data {
                seq: *seq,
                packet: packet.clone(),
            }));
        }
        self.timer_generation += 1;
        if self.skip_rearm {
            // Injected bug (see `sabotage_skip_rearm`): losing any frame of
            // the retransmitted window now wedges the channel for good.
            self.timer_armed = false;
            return;
        }
        self.timer_armed = true;
        out.push(GbnEvent::SetTimer {
            generation: self.timer_generation,
            delay_us: self.cfg.rto_us,
        });
    }

    /// Disables the retransmission-timer re-arm after a timeout — an
    /// intentionally injected reliability bug used by the chaos harness's
    /// "teeth" regression test.  Never enable outside tests.
    #[doc(hidden)]
    pub fn sabotage_skip_rearm(&mut self) {
        self.skip_rearm = true;
    }

    fn pump(&mut self, out: &mut Vec<GbnEvent>) {
        if self.failed {
            return;
        }
        let mut sent_any = false;
        while self.in_flight.len() < self.cfg.window {
            let Some(packet) = self.pending.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            if self.in_flight.len() == self.in_flight.capacity() {
                self.alloc_events += 1;
            }
            self.in_flight.push_back((seq, packet.clone()));
            self.stats.frames_sent += 1;
            out.push(GbnEvent::Transmit(Frame::Data { seq, packet }));
            sent_any = true;
        }
        if sent_any {
            self.manage_timer(out);
        }
    }

    fn manage_timer(&mut self, out: &mut Vec<GbnEvent>) {
        if self.in_flight.is_empty() {
            if self.timer_armed {
                self.timer_armed = false;
                out.push(GbnEvent::CancelTimer {
                    generation: self.timer_generation,
                });
            }
        } else {
            self.timer_generation += 1;
            self.timer_armed = true;
            out.push(GbnEvent::SetTimer {
                generation: self.timer_generation,
                delay_us: self.cfg.rto_us,
            });
        }
    }

    /// Number of data frames currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of packets queued but not yet transmitted (window full).
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// `true` when every queued packet has been transmitted and acknowledged.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.pending.is_empty()
    }

    /// `true` once the channel has given up after too many retries.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// A snapshot of the channel statistics.
    pub fn stats(&self) -> GbnStats {
        self.stats
    }

    /// Number of heap allocations the channel's queues performed after
    /// construction (steady state within the window must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// The configuration the channel was created with.
    pub fn config(&self) -> GbnConfig {
        self.cfg
    }
}

/// How many duplicate SACKs (SACKs that acknowledge newer frames while a
/// hole stays open) trigger a fast retransmission of the hole, without
/// waiting for the retransmission timeout.  Mirrors TCP's dup-ack threshold.
const DUP_SACK_THRESHOLD: u8 = 3;

/// A sender-side in-flight frame of a selective-repeat channel.
#[derive(Debug)]
struct SrSlot {
    seq: u64,
    packet: Packet,
    /// Selectively acknowledged: held only until the cumulative point passes
    /// it, never retransmitted.
    acked: bool,
    /// Duplicate-SACK count: SACKs that arrived acknowledging a later frame
    /// while this one stayed unacknowledged.
    misses: u8,
    /// Fast-retransmitted once already; further duplicate SACKs are stale
    /// evidence (generated before the retransmission landed) and must not
    /// trigger another copy.  Cleared when an RTO retransmits the frame.
    fast_retx: bool,
}

/// A bidirectional selective-repeat channel to one peer.
///
/// Shares [`GbnConfig`] (window / RTO / retry budget) and the [`GbnEvent`]
/// output interface with [`GoBackN`], but differs in recovery behaviour:
///
/// - The receiver buffers out-of-order frames in a window-sized ring and
///   acknowledges with [`Frame::Sack`] (cumulative point + received bitmap).
/// - A retransmission timeout resends only the **oldest unacknowledged**
///   frame, not the window; holes revealed by the bitmap are fast-
///   retransmitted after three duplicate SACKs.
/// - Like [`GoBackN`] it keeps a single generation-checked channel timer
///   (the sans-I/O engine has no clock, so per-frame deadlines collapse onto
///   the oldest-unacked frame, TCP-RTO style).
///
/// The retry budget counts consecutive timeouts *without progress*: any
/// cumulative advance or newly sacked frame resets it.
#[derive(Debug)]
pub struct SelectiveRepeat {
    cfg: GbnConfig,
    // --- sender side ---
    next_seq: u64,
    base: u64,
    /// Contiguous `base..next_seq` frames; entries are only popped from the
    /// front when the cumulative point passes them, so index `seq - front.seq`
    /// addresses any slot directly.
    in_flight: VecDeque<SrSlot>,
    pending: VecDeque<Packet>,
    timer_generation: u64,
    timer_armed: bool,
    retries: u32,
    failed: bool,
    /// Test hook mirroring [`GoBackN`]'s: `on_timeout` retransmits but never
    /// re-arms, wedging the channel if that retransmission is lost too.
    skip_rearm: bool,
    /// Pacing hook: when set, at most this many **new** frames are emitted
    /// per interaction; the remainder trickles out on subsequent acks and
    /// timer ticks.  Reactor backends use it to bound per-peer bursts when
    /// fanning out to thousands of peers.
    pace_burst: Option<usize>,
    // --- receiver side ---
    next_expected: u64,
    /// Out-of-order receive buffer: `ring[i]` holds the packet for sequence
    /// `next_expected + i`, `ring[0]` is always `None` (an in-order frame is
    /// delivered immediately).  Bounded by the window.
    ring: VecDeque<Option<Packet>>,
    /// Estimated bytes held in `ring` (payload + header bound per packet),
    /// reported to the engine's pushed-buffer admission check so buffered
    /// frames can never oversubscribe the pushed buffer when they drain.
    buffered_bytes: usize,
    stats: GbnStats,
    alloc_events: u64,
}

impl SelectiveRepeat {
    /// Creates a channel with the given configuration.  Queues and the
    /// receive ring are pre-sized to the window, so in-window traffic
    /// performs no queue allocation after this call.
    pub fn new(cfg: GbnConfig) -> Self {
        SelectiveRepeat {
            cfg,
            next_seq: 0,
            base: 0,
            in_flight: VecDeque::with_capacity(cfg.window),
            pending: VecDeque::with_capacity(cfg.window),
            timer_generation: 0,
            timer_armed: false,
            retries: 0,
            failed: false,
            skip_rearm: false,
            pace_burst: None,
            next_expected: 0,
            ring: VecDeque::with_capacity(cfg.window),
            buffered_bytes: 0,
            stats: GbnStats::default(),
            alloc_events: 0,
        }
    }

    /// Queues a protocol packet for reliable transmission.
    pub fn send(&mut self, packet: Packet, out: &mut Vec<GbnEvent>) {
        if self.pending.len() == self.pending.capacity() {
            self.alloc_events += 1;
        }
        self.pending.push_back(packet);
        self.pump(out);
    }

    /// Handles a frame arriving from the peer.
    pub fn on_frame(&mut self, frame: Frame, out: &mut Vec<GbnEvent>) {
        match frame {
            Frame::Data { seq, packet } => self.on_data(seq, packet, out),
            Frame::Sack {
                next_expected,
                bitmap,
            } => self.on_sack(next_expected, &bitmap, out),
            // A cumulative ack from a go-back-N peer: no bitmap information.
            Frame::Ack { next_expected } => self.on_sack(next_expected, &[0; MAX_SACK_WORDS], out),
        }
    }

    fn on_data(&mut self, seq: u64, packet: Packet, out: &mut Vec<GbnEvent>) {
        if seq < self.next_expected {
            // Already delivered: a retransmission whose SACK was lost.
            self.stats.discarded += 1;
            self.stats.duplicates += 1;
        } else {
            let idx = (seq - self.next_expected) as usize;
            if idx == 0 {
                self.stats.delivered += 1;
                self.next_expected += 1;
                out.push(GbnEvent::Deliver(packet));
                // Drop the ring slot of the frame just delivered (always
                // `None` — an in-order frame is never buffered) and drain the
                // run of buffered frames that is now in order.
                self.ring.pop_front();
                while matches!(self.ring.front(), Some(Some(_))) {
                    let p = self.ring.pop_front().flatten().expect("checked Some");
                    self.buffered_bytes = self
                        .buffered_bytes
                        .saturating_sub(p.payload.len() + MAX_HEADER_LEN);
                    self.stats.delivered += 1;
                    self.next_expected += 1;
                    out.push(GbnEvent::Deliver(p));
                }
            } else if idx < self.cfg.window {
                while self.ring.len() <= idx {
                    if self.ring.len() == self.ring.capacity() {
                        self.alloc_events += 1;
                    }
                    self.ring.push_back(None);
                }
                if self.ring[idx].is_some() {
                    self.stats.discarded += 1;
                    self.stats.duplicates += 1;
                } else {
                    self.buffered_bytes += packet.payload.len() + MAX_HEADER_LEN;
                    self.ring[idx] = Some(packet);
                }
            } else {
                // Beyond our window (peer configured with a larger one than
                // ours): not representable in the ring or the bitmap, so drop
                // and let the sender's timeout path recover.
                self.stats.discarded += 1;
            }
        }
        self.stats.acks_sent += 1;
        out.push(GbnEvent::Transmit(self.make_sack()));
    }

    fn make_sack(&self) -> Frame {
        let mut bitmap = [0u64; MAX_SACK_WORDS];
        // `ring[i]` (i >= 1) holds sequence `next_expected + i`, which the
        // wire format indexes as bit `i - 1`.
        for (i, slot) in self.ring.iter().enumerate().skip(1) {
            if slot.is_some() {
                let bit = i - 1;
                if bit < 64 * MAX_SACK_WORDS {
                    bitmap[bit / 64] |= 1u64 << (bit % 64);
                }
            }
        }
        Frame::Sack {
            next_expected: self.next_expected,
            bitmap,
        }
    }

    fn on_sack(
        &mut self,
        next_expected: u64,
        bitmap: &[u64; MAX_SACK_WORDS],
        out: &mut Vec<GbnEvent>,
    ) {
        self.stats.acks_received += 1;
        let mut progress = false;
        if next_expected > self.base {
            while self
                .in_flight
                .front()
                .map(|s| s.seq < next_expected)
                .unwrap_or(false)
            {
                self.in_flight.pop_front();
            }
            self.base = next_expected;
            progress = true;
        }
        // Mark selectively acknowledged frames and find the newest one this
        // SACK vouches for; every older unacked frame is a candidate hole.
        let mut max_sacked: Option<u64> = None;
        if let Some(front_seq) = self.in_flight.front().map(|s| s.seq) {
            for (word, &bitmap_word) in bitmap.iter().enumerate() {
                let mut bits = bitmap_word;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    let seq = next_expected + 1 + 64 * word as u64 + bit;
                    if seq < front_seq {
                        continue;
                    }
                    let idx = (seq - front_seq) as usize;
                    if let Some(slot) = self.in_flight.get_mut(idx) {
                        if !slot.acked {
                            slot.acked = true;
                            progress = true;
                        }
                        max_sacked = Some(max_sacked.map_or(seq, |m| m.max(seq)));
                    }
                }
            }
        }
        if progress {
            self.retries = 0;
        }
        // Fast retransmit: a hole older than a sacked frame accumulates one
        // miss per SACK; at the threshold it is resent once and the count
        // restarts (mirrors TCP dup-ack recovery).
        if let Some(max_sacked) = max_sacked {
            let mut first_hole: Option<u64> = None;
            let mut resend: Vec<u64> = Vec::new();
            for slot in self.in_flight.iter_mut() {
                if slot.seq >= max_sacked {
                    break;
                }
                if slot.acked || slot.fast_retx {
                    continue;
                }
                first_hole.get_or_insert(slot.seq);
                slot.misses += 1;
                if slot.misses >= DUP_SACK_THRESHOLD {
                    slot.misses = 0;
                    slot.fast_retx = true;
                    resend.push(slot.seq);
                }
            }
            if let Some(hole) = first_hole {
                let sacked_beyond: u32 = bitmap.iter().map(|w| w.count_ones()).sum();
                telemetry::event(EventKind::SackHole, hole as u32, sacked_beyond, 0);
            }
            if !resend.is_empty() {
                let front_seq = self.in_flight.front().map(|s| s.seq).unwrap_or(0);
                for seq in resend {
                    let slot = &self.in_flight[(seq - front_seq) as usize];
                    self.stats.frames_sent += 1;
                    self.stats.retransmissions += 1;
                    self.stats.fast_retransmits += 1;
                    telemetry::event(EventKind::FrameRetransmit, slot.seq as u32, 1, 0);
                    out.push(GbnEvent::Transmit(Frame::Data {
                        seq: slot.seq,
                        packet: slot.packet.clone(),
                    }));
                }
            }
        }
        if progress {
            self.manage_timer(out);
        }
        self.pump(out);
    }

    /// Handles the retransmission timer firing.  Stale generations are
    /// ignored.  Unlike go-back-N, only the **oldest unacknowledged** frame
    /// is resent; everything the receiver already holds stays put.
    pub fn on_timeout(&mut self, generation: u64, out: &mut Vec<GbnEvent>) {
        if !self.timer_armed || generation != self.timer_generation || self.failed {
            if !self.failed {
                telemetry::event(EventKind::TimerStale, generation as u32, 0, 0);
            }
            return;
        }
        if self.in_flight.is_empty() {
            self.timer_armed = false;
            return;
        }
        self.stats.timeouts += 1;
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.failed = true;
            out.push(GbnEvent::ChannelFailed);
            return;
        }
        // The front slot is always unacked: the bitmap cannot cover the
        // cumulative point itself, so an acked front would already have been
        // popped by a cumulative advance.
        let slot = self.in_flight.front_mut().expect("non-empty checked above");
        slot.fast_retx = false;
        slot.misses = 0;
        self.stats.frames_sent += 1;
        self.stats.retransmissions += 1;
        self.stats.rto_retransmits += 1;
        telemetry::event(EventKind::FrameRetransmit, slot.seq as u32, 0, 0);
        out.push(GbnEvent::Transmit(Frame::Data {
            seq: slot.seq,
            packet: slot.packet.clone(),
        }));
        self.timer_generation += 1;
        if self.skip_rearm {
            // Injected bug (see `sabotage_skip_rearm`): losing this one
            // retransmission now wedges the channel for good.
            self.timer_armed = false;
            return;
        }
        self.timer_armed = true;
        out.push(GbnEvent::SetTimer {
            generation: self.timer_generation,
            delay_us: self.cfg.rto_us,
        });
        // A pacing budget may have deferred fresh frames; the timer tick is
        // also their trickle opportunity.
        self.pump(out);
    }

    fn pump(&mut self, out: &mut Vec<GbnEvent>) {
        if self.failed {
            return;
        }
        let mut budget = self.pace_burst.unwrap_or(usize::MAX);
        let mut sent_any = false;
        while self.in_flight.len() < self.cfg.window && budget > 0 {
            let Some(packet) = self.pending.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            if self.in_flight.len() == self.in_flight.capacity() {
                self.alloc_events += 1;
            }
            self.in_flight.push_back(SrSlot {
                seq,
                packet: packet.clone(),
                acked: false,
                misses: 0,
                fast_retx: false,
            });
            self.stats.frames_sent += 1;
            out.push(GbnEvent::Transmit(Frame::Data { seq, packet }));
            sent_any = true;
            budget -= 1;
        }
        if sent_any {
            self.manage_timer(out);
        }
    }

    fn manage_timer(&mut self, out: &mut Vec<GbnEvent>) {
        if self.in_flight.is_empty() {
            if self.timer_armed {
                self.timer_armed = false;
                out.push(GbnEvent::CancelTimer {
                    generation: self.timer_generation,
                });
            }
        } else {
            self.timer_generation += 1;
            self.timer_armed = true;
            out.push(GbnEvent::SetTimer {
                generation: self.timer_generation,
                delay_us: self.cfg.rto_us,
            });
        }
    }

    /// Pacing hook: bound the number of fresh frames emitted per interaction
    /// (`None` disables pacing).  Deferred frames flow on later acks and
    /// timer ticks, so progress is never lost — only smoothed.
    pub fn set_pace_burst(&mut self, burst: Option<usize>) {
        self.pace_burst = burst;
    }

    /// Disables the retransmission-timer re-arm after a timeout — the same
    /// injected bug as [`GoBackN::sabotage_skip_rearm`], used by the chaos
    /// harness to prove the wedge detector has teeth in SR mode too.
    #[doc(hidden)]
    pub fn sabotage_skip_rearm(&mut self) {
        self.skip_rearm = true;
    }

    /// Number of data frames currently awaiting a cumulative acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of packets queued but not yet transmitted.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// `true` when every queued packet has been transmitted and acknowledged.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.pending.is_empty()
    }

    /// `true` once the channel has given up after too many no-progress
    /// timeouts.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Estimated bytes buffered in the out-of-order receive ring.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }

    /// A snapshot of the channel statistics.
    pub fn stats(&self) -> GbnStats {
        self.stats
    }

    /// Number of heap allocations the channel's queues performed after
    /// construction.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// The configuration the channel was created with.
    pub fn config(&self) -> GbnConfig {
        self.cfg
    }
}

/// A per-peer ARQ channel in either reliability mode.
///
/// The engine stores one of these per internode peer and dispatches through
/// it uniformly; which variant gets constructed is decided by
/// [`ReliabilityMode`] in the endpoint's protocol configuration.
#[derive(Debug)]
pub enum ArqChannel {
    /// The paper's go-back-N channel.
    GoBackN(GoBackN),
    /// The selective-repeat channel.
    SelectiveRepeat(SelectiveRepeat),
}

impl ArqChannel {
    /// Creates a channel of the configured mode.
    pub fn new(mode: ReliabilityMode, cfg: GbnConfig) -> Self {
        match mode {
            ReliabilityMode::GoBackN => ArqChannel::GoBackN(GoBackN::new(cfg)),
            ReliabilityMode::SelectiveRepeat => {
                ArqChannel::SelectiveRepeat(SelectiveRepeat::new(cfg))
            }
        }
    }

    /// Which reliability mode this channel runs.
    pub fn mode(&self) -> ReliabilityMode {
        match self {
            ArqChannel::GoBackN(_) => ReliabilityMode::GoBackN,
            ArqChannel::SelectiveRepeat(_) => ReliabilityMode::SelectiveRepeat,
        }
    }

    /// Queues a protocol packet for reliable transmission.
    pub fn send(&mut self, packet: Packet, out: &mut Vec<GbnEvent>) {
        match self {
            ArqChannel::GoBackN(c) => c.send(packet, out),
            ArqChannel::SelectiveRepeat(c) => c.send(packet, out),
        }
    }

    /// Handles a frame arriving from the peer.
    pub fn on_frame(&mut self, frame: Frame, out: &mut Vec<GbnEvent>) {
        match self {
            ArqChannel::GoBackN(c) => c.on_frame(frame, out),
            ArqChannel::SelectiveRepeat(c) => c.on_frame(frame, out),
        }
    }

    /// Handles the retransmission timer firing (stale generations ignored).
    pub fn on_timeout(&mut self, generation: u64, out: &mut Vec<GbnEvent>) {
        match self {
            ArqChannel::GoBackN(c) => c.on_timeout(generation, out),
            ArqChannel::SelectiveRepeat(c) => c.on_timeout(generation, out),
        }
    }

    /// Number of data frames currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        match self {
            ArqChannel::GoBackN(c) => c.in_flight(),
            ArqChannel::SelectiveRepeat(c) => c.in_flight(),
        }
    }

    /// Number of packets queued but not yet transmitted.
    pub fn backlog(&self) -> usize {
        match self {
            ArqChannel::GoBackN(c) => c.backlog(),
            ArqChannel::SelectiveRepeat(c) => c.backlog(),
        }
    }

    /// `true` when every queued packet has been transmitted and acknowledged.
    pub fn idle(&self) -> bool {
        match self {
            ArqChannel::GoBackN(c) => c.idle(),
            ArqChannel::SelectiveRepeat(c) => c.idle(),
        }
    }

    /// `true` once the channel has given up after too many retries.
    pub fn failed(&self) -> bool {
        match self {
            ArqChannel::GoBackN(c) => c.failed(),
            ArqChannel::SelectiveRepeat(c) => c.failed(),
        }
    }

    /// Estimated bytes buffered in the out-of-order receive ring (always 0
    /// for go-back-N, which discards out-of-order frames).  The engine adds
    /// this to its pushed-buffer admission check so buffered frames can never
    /// oversubscribe the pushed buffer when the hole fills and they drain.
    pub fn buffered_bytes(&self) -> usize {
        match self {
            ArqChannel::GoBackN(_) => 0,
            ArqChannel::SelectiveRepeat(c) => c.buffered_bytes(),
        }
    }

    /// A snapshot of the channel statistics.
    pub fn stats(&self) -> GbnStats {
        match self {
            ArqChannel::GoBackN(c) => c.stats(),
            ArqChannel::SelectiveRepeat(c) => c.stats(),
        }
    }

    /// Number of heap allocations the channel's queues performed after
    /// construction.
    pub fn alloc_events(&self) -> u64 {
        match self {
            ArqChannel::GoBackN(c) => c.alloc_events(),
            ArqChannel::SelectiveRepeat(c) => c.alloc_events(),
        }
    }

    /// Disables the retransmission-timer re-arm after a timeout (chaos
    /// "teeth" hook; see [`GoBackN::sabotage_skip_rearm`]).
    #[doc(hidden)]
    pub fn sabotage_skip_rearm(&mut self) {
        match self {
            ArqChannel::GoBackN(c) => c.sabotage_skip_rearm(),
            ArqChannel::SelectiveRepeat(c) => c.sabotage_skip_rearm(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MessageId, ProcessId, Tag};
    use crate::wire::{PacketHeader, PacketKind, PushPart};

    fn pkt(n: u64, len: usize) -> Packet {
        let header = PacketHeader {
            kind: PacketKind::Push(PushPart::First),
            src: ProcessId::new(0, 0),
            dst: ProcessId::new(1, 0),
            msg_id: MessageId(n),
            tag: Tag(0),
            total_len: len as u32,
            eager_len: len as u32,
            offset: 0,
            payload_len: len as u32,
        };
        Packet::new(header, Bytes::from(vec![n as u8; len])).unwrap()
    }

    fn transmit_frames(events: &[GbnEvent]) -> Vec<Frame> {
        events
            .iter()
            .filter_map(|e| match e {
                GbnEvent::Transmit(f) => Some(f.clone()),
                _ => None,
            })
            .collect()
    }

    fn delivered(events: &[GbnEvent]) -> Vec<Packet> {
        events
            .iter()
            .filter_map(|e| match e {
                GbnEvent::Deliver(p) => Some(p.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame::Data {
            seq: 99,
            packet: pkt(1, 128),
        };
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        let a = Frame::Ack { next_expected: 7 };
        assert_eq!(Frame::decode(a.encode()).unwrap(), a);
        assert!(Frame::decode(Bytes::from(vec![0u8; 3])).is_err());
    }

    #[test]
    fn lossless_transfer_delivers_in_order() {
        let cfg = GbnConfig::default();
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);

        let mut events = Vec::new();
        for i in 0..10 {
            sender.send(pkt(i, 64), &mut events);
        }
        let frames = transmit_frames(&events);
        assert_eq!(frames.len(), 10);

        let mut recv_events = Vec::new();
        for f in frames {
            receiver.on_frame(f, &mut recv_events);
        }
        let packets = delivered(&recv_events);
        assert_eq!(packets.len(), 10);
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.header.msg_id, MessageId(i as u64));
        }

        // Feed the acks back.
        let mut ack_events = Vec::new();
        for f in transmit_frames(&recv_events) {
            sender.on_frame(f, &mut ack_events);
        }
        assert!(sender.idle());
    }

    #[test]
    fn window_limits_in_flight() {
        let cfg = GbnConfig {
            window: 4,
            ..Default::default()
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..10 {
            sender.send(pkt(i, 8), &mut events);
        }
        assert_eq!(transmit_frames(&events).len(), 4);
        assert_eq!(sender.in_flight(), 4);
        assert_eq!(sender.backlog(), 6);

        // Ack the first two; two more flow.
        let mut more = Vec::new();
        sender.on_frame(Frame::Ack { next_expected: 2 }, &mut more);
        assert_eq!(transmit_frames(&more).len(), 2);
        assert_eq!(sender.in_flight(), 4);
        assert_eq!(sender.backlog(), 4);
    }

    #[test]
    fn timeout_retransmits_all_in_flight() {
        let cfg = GbnConfig {
            window: 8,
            rto_us: 1000,
            max_retries: 3,
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..3 {
            sender.send(pkt(i, 8), &mut events);
        }
        // Find the latest timer generation.
        let generation = events
            .iter()
            .filter_map(|e| match e {
                GbnEvent::SetTimer { generation, .. } => Some(*generation),
                _ => None,
            })
            .next_back()
            .unwrap();

        let mut timeout_events = Vec::new();
        sender.on_timeout(generation, &mut timeout_events);
        let frames = transmit_frames(&timeout_events);
        assert_eq!(frames.len(), 3);
        assert_eq!(sender.stats().retransmissions, 3);
        assert_eq!(sender.stats().timeouts, 1);
    }

    #[test]
    fn stale_timer_is_ignored() {
        let cfg = GbnConfig::default();
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        sender.send(pkt(0, 8), &mut events);
        let mut out = Vec::new();
        sender.on_timeout(0, &mut out); // generation 0 was never issued (first is 1)
        assert!(out.is_empty() || !matches!(out[0], GbnEvent::Transmit(_)));
        assert_eq!(sender.stats().timeouts, 0);
    }

    #[test]
    fn receiver_discards_out_of_order_and_reacks() {
        let cfg = GbnConfig::default();
        let mut receiver = GoBackN::new(cfg);
        let mut out = Vec::new();
        // Frame 1 arrives before frame 0 (e.g. frame 0 was lost).
        receiver.on_frame(
            Frame::Data {
                seq: 1,
                packet: pkt(1, 8),
            },
            &mut out,
        );
        assert!(delivered(&out).is_empty());
        let frames = transmit_frames(&out);
        assert_eq!(frames, vec![Frame::Ack { next_expected: 0 }]);
        assert_eq!(receiver.stats().discarded, 1);

        // Now frame 0 arrives; it is delivered, but frame 1 must be resent.
        let mut out = Vec::new();
        receiver.on_frame(
            Frame::Data {
                seq: 0,
                packet: pkt(0, 8),
            },
            &mut out,
        );
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(transmit_frames(&out), vec![Frame::Ack { next_expected: 1 }]);
    }

    #[test]
    fn duplicate_delivery_never_happens() {
        let cfg = GbnConfig::default();
        let mut receiver = GoBackN::new(cfg);
        let mut out = Vec::new();
        let frame = Frame::Data {
            seq: 0,
            packet: pkt(0, 8),
        };
        receiver.on_frame(frame.clone(), &mut out);
        receiver.on_frame(frame, &mut out);
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(receiver.stats().discarded, 1);
    }

    #[test]
    fn loss_recovery_end_to_end() {
        // Drop every third data frame on the first attempt and check that
        // everything still arrives exactly once and in order.
        let cfg = GbnConfig {
            window: 4,
            rto_us: 100,
            max_retries: 20,
        };
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);
        let total = 12u64;

        let mut to_send: Vec<Packet> = (0..total).map(|i| pkt(i, 16)).collect();
        let mut delivered_ids: Vec<u64> = Vec::new();
        let mut drop_counter = 0u64;
        let mut pending_timer: Option<u64> = None;

        let mut wire: VecDeque<Frame> = VecDeque::new();
        let mut events = Vec::new();
        for p in to_send.drain(..) {
            sender.send(p, &mut events);
        }
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 10_000, "did not converge");
            // Process sender events.
            let drained: Vec<GbnEvent> = std::mem::take(&mut events);
            for e in drained {
                match e {
                    GbnEvent::Transmit(f) => {
                        if matches!(f, Frame::Data { .. }) {
                            drop_counter += 1;
                            if drop_counter.is_multiple_of(3) {
                                continue; // lost
                            }
                        }
                        wire.push_back(f);
                    }
                    GbnEvent::SetTimer { generation, .. } => pending_timer = Some(generation),
                    GbnEvent::CancelTimer { .. } => pending_timer = None,
                    _ => {}
                }
            }
            // Deliver wire frames to the receiver, responses back to sender.
            let mut recv_events = Vec::new();
            while let Some(f) = wire.pop_front() {
                receiver.on_frame(f, &mut recv_events);
            }
            for e in recv_events {
                match e {
                    GbnEvent::Deliver(p) => delivered_ids.push(p.header.msg_id.0),
                    GbnEvent::Transmit(f) => sender.on_frame(f, &mut events),
                    _ => {}
                }
            }
            if sender.idle() {
                break;
            }
            if events.is_empty() {
                // Nothing in flight made progress; fire the timer.
                if let Some(generation) = pending_timer.take() {
                    sender.on_timeout(generation, &mut events);
                }
            }
        }
        assert_eq!(delivered_ids, (0..total).collect::<Vec<_>>());
        assert!(sender.stats().retransmissions > 0);
    }

    #[test]
    fn window_sized_queues_never_allocate_within_window() {
        let cfg = GbnConfig {
            window: 8,
            ..Default::default()
        };
        let mut sender = GoBackN::new(cfg);
        let mut receiver = GoBackN::new(cfg);
        let mut events = Vec::new();
        let mut acks = Vec::new();
        for i in 0..1000u64 {
            sender.send(pkt(i, 16), &mut events);
            for e in events.drain(..) {
                if let GbnEvent::Transmit(f) = e {
                    receiver.on_frame(f, &mut acks);
                }
            }
            for e in acks.drain(..) {
                if let GbnEvent::Transmit(f) = e {
                    sender.on_frame(f, &mut events);
                }
            }
            events.clear();
        }
        assert!(sender.idle());
        assert_eq!(
            sender.alloc_events(),
            0,
            "in-window traffic must not grow the pre-sized queues"
        );
        assert_eq!(receiver.alloc_events(), 0);
    }

    #[test]
    fn backlog_past_window_is_counted_as_allocation() {
        let cfg = GbnConfig {
            window: 2,
            ..Default::default()
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        for i in 0..8 {
            sender.send(pkt(i, 8), &mut events);
        }
        assert!(sender.backlog() > sender.config().window);
        assert!(
            sender.alloc_events() > 0,
            "growth events must be observable"
        );
    }

    #[test]
    fn channel_fails_after_max_retries() {
        let cfg = GbnConfig {
            window: 2,
            rto_us: 10,
            max_retries: 2,
        };
        let mut sender = GoBackN::new(cfg);
        let mut events = Vec::new();
        sender.send(pkt(0, 8), &mut events);
        let mut failed = false;
        for _ in 0..10 {
            let generation = events
                .iter()
                .filter_map(|e| match e {
                    GbnEvent::SetTimer { generation, .. } => Some(*generation),
                    _ => None,
                })
                .next_back();
            events.clear();
            if let Some(generation) = generation {
                sender.on_timeout(generation, &mut events);
            }
            if events.iter().any(|e| matches!(e, GbnEvent::ChannelFailed)) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert!(sender.failed());
    }

    // --- selective repeat ---

    fn last_timer_generation(events: &[GbnEvent]) -> Option<u64> {
        events
            .iter()
            .filter_map(|e| match e {
                GbnEvent::SetTimer { generation, .. } => Some(*generation),
                _ => None,
            })
            .next_back()
    }

    #[test]
    fn sack_frame_roundtrip() {
        let f = Frame::Sack {
            next_expected: 42,
            bitmap: [0b1011, 0, 1 << 63, 0],
        };
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        // All-zero bitmap encodes to the 10-byte short form.
        let empty = Frame::Sack {
            next_expected: 7,
            bitmap: [0; MAX_SACK_WORDS],
        };
        assert_eq!(empty.wire_size(), 10);
        assert_eq!(Frame::decode(empty.encode()).unwrap(), empty);
        // Word count beyond the maximum is rejected with the field value.
        let mut bogus = BytesMut::new();
        bogus.put_u8(2);
        bogus.put_u64(0);
        bogus.put_u8(9);
        match Frame::decode(bogus.freeze()) {
            Err(Error::SackTooWide { words: 9 }) => {}
            other => panic!("expected SackTooWide, got {other:?}"),
        }
        // Truncated bitmap is rejected with the byte count we actually had.
        let full = f.encode();
        let cut = full.slice(0..full.len() - 3);
        match Frame::decode(cut.clone()) {
            Err(Error::TruncatedFrame { have }) => assert_eq!(have, cut.len()),
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }
    }

    #[test]
    fn sr_lossless_transfer_delivers_in_order() {
        let cfg = GbnConfig::default();
        let mut sender = SelectiveRepeat::new(cfg);
        let mut receiver = SelectiveRepeat::new(cfg);

        let mut events = Vec::new();
        for i in 0..10 {
            sender.send(pkt(i, 64), &mut events);
        }
        let mut recv_events = Vec::new();
        for f in transmit_frames(&events) {
            receiver.on_frame(f, &mut recv_events);
        }
        let packets = delivered(&recv_events);
        assert_eq!(packets.len(), 10);
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.header.msg_id, MessageId(i as u64));
        }
        let mut ack_events = Vec::new();
        for f in transmit_frames(&recv_events) {
            sender.on_frame(f, &mut ack_events);
        }
        assert!(sender.idle());
        assert_eq!(sender.stats().retransmissions, 0);
    }

    #[test]
    fn sr_receiver_buffers_out_of_order_and_delivers_on_hole_fill() {
        let cfg = GbnConfig::default();
        let mut receiver = SelectiveRepeat::new(cfg);
        let mut out = Vec::new();
        // Frames 1 and 2 arrive before frame 0.
        receiver.on_frame(
            Frame::Data {
                seq: 1,
                packet: pkt(1, 8),
            },
            &mut out,
        );
        receiver.on_frame(
            Frame::Data {
                seq: 2,
                packet: pkt(2, 8),
            },
            &mut out,
        );
        assert!(delivered(&out).is_empty());
        assert!(receiver.buffered_bytes() > 0);
        // The SACK advertises the buffered frames: bits 0 and 1 past seq 0.
        let frames = transmit_frames(&out);
        assert_eq!(
            frames.last(),
            Some(&Frame::Sack {
                next_expected: 0,
                bitmap: [0b11, 0, 0, 0],
            })
        );

        // The hole fills: everything drains in order.
        let mut out = Vec::new();
        receiver.on_frame(
            Frame::Data {
                seq: 0,
                packet: pkt(0, 8),
            },
            &mut out,
        );
        let ids: Vec<u64> = delivered(&out).iter().map(|p| p.header.msg_id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(receiver.buffered_bytes(), 0);
        assert_eq!(
            transmit_frames(&out),
            vec![Frame::Sack {
                next_expected: 3,
                bitmap: [0; MAX_SACK_WORDS],
            }]
        );
        assert_eq!(receiver.stats().discarded, 0);
    }

    #[test]
    fn sr_timeout_retransmits_only_oldest_unacked() {
        let cfg = GbnConfig {
            window: 8,
            rto_us: 1000,
            max_retries: 10,
        };
        let mut sender = SelectiveRepeat::new(cfg);
        let mut events = Vec::new();
        for i in 0..5 {
            sender.send(pkt(i, 8), &mut events);
        }
        let generation = last_timer_generation(&events).unwrap();
        let mut timeout_events = Vec::new();
        sender.on_timeout(generation, &mut timeout_events);
        let frames = transmit_frames(&timeout_events);
        assert_eq!(frames.len(), 1, "SR must not resend the whole window");
        assert!(matches!(frames[0], Frame::Data { seq: 0, .. }));
        assert_eq!(sender.stats().retransmissions, 1);
    }

    #[test]
    fn sr_dup_sacks_fast_retransmit_the_hole() {
        let cfg = GbnConfig::default();
        let mut sender = SelectiveRepeat::new(cfg);
        let mut events = Vec::new();
        for i in 0..5 {
            sender.send(pkt(i, 8), &mut events);
        }
        // Frame 0 was lost; SACKs keep vouching for 1..=4.
        let sack = Frame::Sack {
            next_expected: 0,
            bitmap: [0b1111, 0, 0, 0],
        };
        let mut out = Vec::new();
        for _ in 0..(DUP_SACK_THRESHOLD - 1) {
            sender.on_frame(sack.clone(), &mut out);
        }
        assert!(
            transmit_frames(&out).is_empty(),
            "below the dup-SACK threshold nothing is resent"
        );
        sender.on_frame(sack, &mut out);
        let frames = transmit_frames(&out);
        assert_eq!(frames.len(), 1);
        assert!(matches!(frames[0], Frame::Data { seq: 0, .. }));
        assert_eq!(sender.stats().retransmissions, 1);
        // The cumulative ack for everything releases the channel.
        let mut done = Vec::new();
        sender.on_frame(Frame::Ack { next_expected: 5 }, &mut done);
        assert!(sender.idle());
    }

    #[test]
    fn sr_loss_recovery_end_to_end_resends_only_lost_frames() {
        // Same harness as `loss_recovery_end_to_end`, but with selective
        // repeat the retransmission count must stay close to the loss count
        // instead of multiplying by the window.
        let cfg = GbnConfig {
            window: 8,
            rto_us: 100,
            max_retries: 50,
        };
        let mut sender = SelectiveRepeat::new(cfg);
        let mut receiver = SelectiveRepeat::new(cfg);
        let total = 24u64;

        let mut delivered_ids: Vec<u64> = Vec::new();
        let mut drop_counter = 0u64;
        let mut pending_timer: Option<u64> = None;
        let mut wire: VecDeque<Frame> = VecDeque::new();
        let mut events = Vec::new();
        for i in 0..total {
            sender.send(pkt(i, 16), &mut events);
        }
        let mut losses = 0u64;
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 10_000, "did not converge");
            let drained: Vec<GbnEvent> = std::mem::take(&mut events);
            for e in drained {
                match e {
                    GbnEvent::Transmit(f) => {
                        if matches!(f, Frame::Data { .. }) {
                            drop_counter += 1;
                            if drop_counter.is_multiple_of(5) {
                                losses += 1;
                                continue; // lost
                            }
                        }
                        wire.push_back(f);
                    }
                    GbnEvent::SetTimer { generation, .. } => pending_timer = Some(generation),
                    GbnEvent::CancelTimer { .. } => pending_timer = None,
                    _ => {}
                }
            }
            let mut recv_events = Vec::new();
            while let Some(f) = wire.pop_front() {
                receiver.on_frame(f, &mut recv_events);
            }
            for e in recv_events {
                match e {
                    GbnEvent::Deliver(p) => delivered_ids.push(p.header.msg_id.0),
                    GbnEvent::Transmit(f) => sender.on_frame(f, &mut events),
                    _ => {}
                }
            }
            if sender.idle() {
                break;
            }
            if events.is_empty() {
                if let Some(generation) = pending_timer.take() {
                    sender.on_timeout(generation, &mut events);
                }
            }
        }
        assert_eq!(delivered_ids, (0..total).collect::<Vec<_>>());
        let retx = sender.stats().retransmissions;
        assert!(retx > 0);
        // Every retransmission corresponds to an actual loss (original or
        // retransmitted copy lost again) — never a whole-window resend.
        assert!(
            retx <= losses,
            "SR resent {retx} frames for {losses} losses"
        );
        assert_eq!(receiver.stats().duplicates, 0);
    }

    #[test]
    fn sr_channel_fails_after_no_progress_timeouts() {
        let cfg = GbnConfig {
            window: 2,
            rto_us: 10,
            max_retries: 2,
        };
        let mut sender = SelectiveRepeat::new(cfg);
        let mut events = Vec::new();
        sender.send(pkt(0, 8), &mut events);
        let mut failed = false;
        for _ in 0..10 {
            let generation = last_timer_generation(&events);
            events.clear();
            if let Some(generation) = generation {
                sender.on_timeout(generation, &mut events);
            }
            if events.iter().any(|e| matches!(e, GbnEvent::ChannelFailed)) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert!(sender.failed());
    }

    #[test]
    fn sr_pacing_bounds_burst_and_still_drains() {
        let cfg = GbnConfig {
            window: 16,
            rto_us: 100,
            max_retries: 50,
        };
        let mut sender = SelectiveRepeat::new(cfg);
        sender.set_pace_burst(Some(2));
        let mut receiver = SelectiveRepeat::new(cfg);
        let mut events = Vec::new();
        for i in 0..10 {
            let before = transmit_frames(&events).len();
            sender.send(pkt(i, 8), &mut events);
            let after = transmit_frames(&events).len();
            assert!(after - before <= 2, "burst budget exceeded");
        }
        // Drive to quiescence through a lossless wire.
        let mut steps = 0;
        let mut pending_timer = None;
        loop {
            steps += 1;
            assert!(steps < 1000, "pacing starved the channel");
            let drained: Vec<GbnEvent> = std::mem::take(&mut events);
            let mut recv_events = Vec::new();
            for e in drained {
                match e {
                    GbnEvent::Transmit(f) => receiver.on_frame(f, &mut recv_events),
                    GbnEvent::SetTimer { generation, .. } => pending_timer = Some(generation),
                    GbnEvent::CancelTimer { .. } => pending_timer = None,
                    _ => {}
                }
            }
            for e in recv_events {
                if let GbnEvent::Transmit(f) = e {
                    sender.on_frame(f, &mut events);
                }
            }
            if sender.idle() {
                break;
            }
            if events.is_empty() {
                if let Some(generation) = pending_timer.take() {
                    sender.on_timeout(generation, &mut events);
                }
            }
        }
        assert_eq!(receiver.stats().delivered, 10);
    }

    #[test]
    fn sr_duplicate_data_is_counted_not_redelivered() {
        let cfg = GbnConfig::default();
        let mut receiver = SelectiveRepeat::new(cfg);
        let mut out = Vec::new();
        let frame = Frame::Data {
            seq: 0,
            packet: pkt(0, 8),
        };
        receiver.on_frame(frame.clone(), &mut out);
        receiver.on_frame(frame, &mut out);
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(receiver.stats().duplicates, 1);
        // A buffered out-of-order frame arriving twice is also a duplicate.
        let oo = Frame::Data {
            seq: 5,
            packet: pkt(5, 8),
        };
        receiver.on_frame(oo.clone(), &mut out);
        receiver.on_frame(oo, &mut out);
        assert_eq!(receiver.stats().duplicates, 2);
    }

    #[test]
    fn arq_channel_dispatches_both_modes() {
        for mode in [ReliabilityMode::GoBackN, ReliabilityMode::SelectiveRepeat] {
            let mut a = ArqChannel::new(mode, GbnConfig::default());
            let mut b = ArqChannel::new(mode, GbnConfig::default());
            assert_eq!(a.mode(), mode);
            let mut events = Vec::new();
            a.send(pkt(0, 32), &mut events);
            let mut recv_events = Vec::new();
            for f in transmit_frames(&events) {
                b.on_frame(f, &mut recv_events);
            }
            assert_eq!(delivered(&recv_events).len(), 1);
            let mut ack_events = Vec::new();
            for f in transmit_frames(&recv_events) {
                a.on_frame(f, &mut ack_events);
            }
            assert!(a.idle());
            assert_eq!(a.stats().acks_received, 1);
            assert_eq!(b.stats().delivered, 1);
        }
    }

    #[test]
    fn cross_mode_peers_still_converge_on_cumulative_acks() {
        // A GBN sender talking to an SR receiver (and vice versa) must still
        // make progress: SACKs degrade to their cumulative field.
        let mut gbn = ArqChannel::new(ReliabilityMode::GoBackN, GbnConfig::default());
        let mut sr = ArqChannel::new(ReliabilityMode::SelectiveRepeat, GbnConfig::default());
        let mut events = Vec::new();
        for i in 0..4 {
            gbn.send(pkt(i, 16), &mut events);
        }
        let mut recv_events = Vec::new();
        for f in transmit_frames(&events) {
            sr.on_frame(f, &mut recv_events);
        }
        assert_eq!(delivered(&recv_events).len(), 4);
        let mut ack_events = Vec::new();
        for f in transmit_frames(&recv_events) {
            gbn.on_frame(f, &mut ack_events);
        }
        assert!(gbn.idle());
    }
}
