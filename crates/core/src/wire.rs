//! Wire format of protocol packets.
//!
//! A [`Packet`] is the unit the protocol engine hands to its transport.  The
//! internode backend additionally wraps packets in go-back-N
//! [`frames`](crate::reliability::Frame); the intranode backend moves them
//! through kernel queues directly.
//!
//! The header is a fixed-size, explicitly laid-out structure so that its
//! on-wire size (needed by the simulator's timing model and counted against
//! the Ethernet MTU) is a compile-time constant.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use crate::error::{Error, Result};
use crate::types::{MessageId, ProcessId, Tag};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Identifies which of the two pushed fragments a push packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PushPart {
    /// The first-pushed message of `BTP(1)` bytes (or the whole eager part
    /// when push-and-acknowledge overlapping is disabled).
    First,
    /// The second-pushed message of `BTP(2)` bytes, transmitted overlapped
    /// with the acknowledgement.
    Second,
}

/// The protocol-level packet types of Push-Pull Messaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Eagerly pushed data (arrow 1a in Fig. 1).  A zero-length first push is
    /// how Push-Zero announces a message.
    Push(PushPart),
    /// The acknowledgement that doubles as a pull request (arrows 3a/3b in
    /// Fig. 1).  `offset` is the first byte the receiver still needs and
    /// `request_len` the number of bytes requested.
    PullRequest,
    /// Data sent by the sender's reception handler in response to a pull
    /// request (arrow 1b.2 in Fig. 1); copied straight into the destination
    /// buffer by the receiver (arrow 2a).
    PullData,
    /// A 4-byte application-level acknowledgement used by the bandwidth
    /// benchmark and the barrier in the early/late receiver tests.  It is a
    /// normal message at the protocol level but having a distinct kind makes
    /// traces easier to read.
    Control,
}

impl PacketKind {
    fn to_byte(self) -> u8 {
        match self {
            PacketKind::Push(PushPart::First) => 0,
            PacketKind::Push(PushPart::Second) => 1,
            PacketKind::PullRequest => 2,
            PacketKind::PullData => 3,
            PacketKind::Control => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        Ok(match b {
            0 => PacketKind::Push(PushPart::First),
            1 => PacketKind::Push(PushPart::Second),
            2 => PacketKind::PullRequest,
            3 => PacketKind::PullData,
            4 => PacketKind::Control,
            // Non-allocating error: the decode path runs per packet and must
            // not construct a String just to reject garbage.
            other => return Err(Error::UnknownPacketKind { byte: other }),
        })
    }
}

/// Size in bytes of an encoded [`PacketHeader`].
pub const MAX_HEADER_LEN: usize = 1  // kind
    + 4 + 4                          // src node + rank
    + 4 + 4                          // dst node + rank
    + 8                              // msg_id
    + 4                              // tag
    + 4                              // total_len
    + 4                              // eager_len
    + 4                              // offset
    + 4; // payload_len / request_len

/// Fixed-size header carried by every protocol packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Packet type.
    pub kind: PacketKind,
    /// The sending process.
    pub src: ProcessId,
    /// The destination process.
    pub dst: ProcessId,
    /// Message this packet belongs to (unique per sending process).
    pub msg_id: MessageId,
    /// User tag of the message (used by the receiver for matching).
    pub tag: Tag,
    /// Total length of the user message in bytes.
    pub total_len: u32,
    /// Total number of bytes the sender pushes eagerly (`BTP(1) + BTP(2)`,
    /// clamped to the message length).  The receiver uses this to decide
    /// whether a pull request is needed and which bytes to ask for.
    pub eager_len: u32,
    /// Byte offset within the message of this packet's payload (for
    /// `PullRequest` packets: the first byte still required).
    pub offset: u32,
    /// Length of the payload carried by this packet (for `PullRequest`
    /// packets: the number of bytes requested; the payload itself is empty).
    pub payload_len: u32,
}

impl PacketHeader {
    /// Encodes the header into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.kind.to_byte());
        buf.put_u32(self.src.node.0);
        buf.put_u32(self.src.local_rank);
        buf.put_u32(self.dst.node.0);
        buf.put_u32(self.dst.local_rank);
        buf.put_u64(self.msg_id.0);
        buf.put_u32(self.tag.0);
        buf.put_u32(self.total_len);
        buf.put_u32(self.eager_len);
        buf.put_u32(self.offset);
        buf.put_u32(self.payload_len);
    }

    /// Decodes a header from `buf`, advancing it by [`MAX_HEADER_LEN`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < MAX_HEADER_LEN {
            // Field-carrying error: the decode path runs per packet and must
            // not allocate just to reject garbage.
            return Err(Error::TruncatedHeader {
                need: MAX_HEADER_LEN,
                have: buf.remaining(),
            });
        }
        let kind = PacketKind::from_byte(buf.get_u8())?;
        let src = ProcessId::new(buf.get_u32(), buf.get_u32());
        let dst = ProcessId::new(buf.get_u32(), buf.get_u32());
        let msg_id = MessageId(buf.get_u64());
        let tag = Tag(buf.get_u32());
        let total_len = buf.get_u32();
        let eager_len = buf.get_u32();
        let offset = buf.get_u32();
        let payload_len = buf.get_u32();
        Ok(PacketHeader {
            kind,
            src,
            dst,
            msg_id,
            tag,
            total_len,
            eager_len,
            offset,
            payload_len,
        })
    }
}

/// One protocol packet: a header plus (possibly empty) payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The fixed-size header.
    pub header: PacketHeader,
    /// Payload bytes.  `Bytes` slices share the underlying user buffer, so
    /// building a push or pull packet never copies message data.
    pub payload: Bytes,
}

impl Packet {
    /// Creates a packet, checking that the payload length matches the header.
    pub fn new(header: PacketHeader, payload: Bytes) -> Result<Self> {
        let expected = match header.kind {
            PacketKind::PullRequest => 0,
            _ => header.payload_len as usize,
        };
        if payload.len() != expected {
            return Err(Error::PayloadLenMismatch {
                declared: expected,
                actual: payload.len(),
            });
        }
        Ok(Packet { header, payload })
    }

    /// Number of bytes this packet occupies on the wire (header + payload).
    #[inline]
    pub fn wire_size(&self) -> usize {
        MAX_HEADER_LEN + self.payload.len()
    }

    /// `true` when this packet carries user data (push or pull data).
    #[inline]
    pub fn carries_data(&self) -> bool {
        matches!(
            self.header.kind,
            PacketKind::Push(_) | PacketKind::PullData | PacketKind::Control
        ) && !self.payload.is_empty()
    }

    /// Serialises the packet into `buf` (appended after any existing
    /// contents).  Use with a [`PacketBufPool`]-managed buffer to keep the
    /// transmit path allocation-free once the buffer capacity has warmed up.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.wire_size());
        self.header.encode(buf);
        buf.extend_from_slice(&self.payload);
    }

    /// Serialises the packet into a freshly allocated contiguous byte
    /// buffer.  Prefer [`Packet::encode_into`] on hot paths.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Parses a packet from a contiguous byte buffer.  The payload is a
    /// [`Bytes::split_to`] sub-slice of `data`: it shares the input
    /// allocation and copies nothing.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        let header = PacketHeader::decode(&mut data)?;
        let expected = match header.kind {
            PacketKind::PullRequest => 0,
            _ => header.payload_len as usize,
        };
        if data.len() < expected {
            return Err(Error::TruncatedPayload {
                need: expected,
                have: data.len(),
            });
        }
        let payload = data.split_to(expected);
        Packet::new(header, payload)
    }
}

/// A free list of reusable encode buffers.
///
/// Backends encode every outgoing packet/frame; without a pool each encode
/// allocates a fresh `BytesMut`.  Acquire a buffer, encode into it, hand the
/// bytes to the transport, and release the buffer: once the pooled buffers
/// have grown to the largest wire size in use, the encode path performs zero
/// heap allocations.
#[derive(Debug, Default)]
pub struct PacketBufPool {
    free: Vec<BytesMut>,
    alloc_events: u64,
}

/// Buffers beyond this count are dropped on release rather than pooled.
const PACKET_BUF_POOL_CAP: usize = 32;

impl PacketBufPool {
    /// Creates an empty pool without allocating.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer with at least `capacity` bytes reserved.
    pub fn acquire(&mut self, capacity: usize) -> BytesMut {
        match self.free.pop() {
            Some(mut buf) => {
                if buf.capacity() < capacity {
                    self.alloc_events += 1;
                }
                buf.reserve(capacity);
                buf
            }
            None => {
                self.alloc_events += 1;
                BytesMut::with_capacity(capacity)
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn release(&mut self, mut buf: BytesMut) {
        if self.free.len() < PACKET_BUF_POOL_CAP {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Number of times `acquire` had to allocate or grow a buffer (steady
    /// state must not add any).
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header(kind: PacketKind) -> PacketHeader {
        PacketHeader {
            kind,
            src: ProcessId::new(0, 1),
            dst: ProcessId::new(1, 3),
            msg_id: MessageId(42),
            tag: Tag(7),
            total_len: 8192,
            eager_len: 760,
            offset: 760,
            payload_len: 0,
        }
    }

    #[test]
    fn header_roundtrip_every_kind() {
        for kind in [
            PacketKind::Push(PushPart::First),
            PacketKind::Push(PushPart::Second),
            PacketKind::PullRequest,
            PacketKind::PullData,
            PacketKind::Control,
        ] {
            let header = sample_header(kind);
            let mut buf = BytesMut::new();
            header.encode(&mut buf);
            assert_eq!(buf.len(), MAX_HEADER_LEN);
            let decoded = PacketHeader::decode(&mut buf.freeze()).unwrap();
            assert_eq!(decoded, header);
        }
    }

    #[test]
    fn packet_roundtrip_with_payload() {
        let payload = Bytes::from(vec![0xABu8; 680]);
        let mut header = sample_header(PacketKind::Push(PushPart::Second));
        header.payload_len = 680;
        let pkt = Packet::new(header, payload.clone()).unwrap();
        assert_eq!(pkt.wire_size(), MAX_HEADER_LEN + 680);
        let encoded = pkt.encode();
        let decoded = Packet::decode(encoded).unwrap();
        assert_eq!(decoded, pkt);
        assert_eq!(decoded.payload, payload);
    }

    #[test]
    fn pull_request_has_empty_payload_but_request_len() {
        let mut header = sample_header(PacketKind::PullRequest);
        header.payload_len = 4096; // bytes requested
        let pkt = Packet::new(header, Bytes::new()).unwrap();
        assert!(!pkt.carries_data());
        let decoded = Packet::decode(pkt.encode()).unwrap();
        assert_eq!(decoded.header.payload_len, 4096);
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn mismatched_payload_rejected() {
        let mut header = sample_header(PacketKind::PullData);
        header.payload_len = 100;
        let err = Packet::new(header, Bytes::from(vec![0u8; 50])).unwrap_err();
        assert_eq!(
            err,
            Error::PayloadLenMismatch {
                declared: 100,
                actual: 50
            }
        );
    }

    #[test]
    fn truncated_header_rejected() {
        let err = Packet::decode(Bytes::from(vec![0u8; 5])).unwrap_err();
        assert_eq!(
            err,
            Error::TruncatedHeader {
                need: MAX_HEADER_LEN,
                have: 5
            }
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut header = sample_header(PacketKind::PullData);
        header.payload_len = 300;
        let pkt = Packet::new(header, Bytes::from(vec![1u8; 300])).unwrap();
        let encoded = pkt.encode();
        let truncated = encoded.slice(..MAX_HEADER_LEN + 100);
        assert!(Packet::decode(truncated).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut header = sample_header(PacketKind::Control);
        header.payload_len = 0;
        let pkt = Packet::new(header, Bytes::new()).unwrap();
        let mut bytes = BytesMut::from(&pkt.encode()[..]);
        bytes[0] = 99;
        assert!(Packet::decode(bytes.freeze()).is_err());
    }

    #[test]
    fn zero_copy_payload_slicing() {
        // The payload of a packet built from a user buffer shares storage
        // with that buffer: no copy happens on encode-side construction.
        let user = Bytes::from(vec![7u8; 4096]);
        let slice = user.slice(80..760);
        let mut header = sample_header(PacketKind::Push(PushPart::Second));
        header.payload_len = 680;
        let pkt = Packet::new(header, slice.clone()).unwrap();
        assert_eq!(pkt.payload.as_ptr(), slice.as_ptr());
    }
}
