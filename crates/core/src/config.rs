//! Protocol configuration: mode, BTP policy, optimisation flags and resource
//! limits.

use crate::btp::BtpPolicy;
use crate::error::{Error, Result};
use crate::reliability::GbnConfig;
use serde::{Deserialize, Serialize};

/// Which of the three messaging mechanisms from the paper the endpoint runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolMode {
    /// `BTP = 0`: the classical three-phase / rendezvous protocol.  The push
    /// phase carries no payload and only announces the message; all data
    /// flows in the pull phase after the handshake.
    PushZero,
    /// The paper's contribution: push `BTP` bytes eagerly, pull the rest.
    PushPull,
    /// `BTP = message length`: a purely eager protocol.  Fast when the
    /// receiver is early, but overwhelms the finite pushed buffer when the
    /// receiver is late (Fig. 6, right).
    PushAll,
}

impl ProtocolMode {
    /// All three modes, in the order the paper's figures list them.
    pub const ALL: [ProtocolMode; 3] = [
        ProtocolMode::PushZero,
        ProtocolMode::PushPull,
        ProtocolMode::PushAll,
    ];

    /// The label the paper's figures use for this mode.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolMode::PushZero => "push-zero",
            ProtocolMode::PushPull => "push-pull",
            ProtocolMode::PushAll => "push-all",
        }
    }
}

/// The optimisation techniques of Section 4, individually toggleable so the
/// ablation of Fig. 4 (no optimisation / mask only / overlap only / full) can
/// be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptFlags {
    /// §4.2 Cross-Space Zero Buffer: one-copy transfers between protected
    /// spaces (and from the NIC buffer straight into the destination buffer).
    /// When disabled, every cross-space transfer costs an extra staging copy.
    pub zero_buffer: bool,
    /// §4.3 Address Translation Overhead Masking: schedule virtual→physical
    /// translation *after* network transmission has been initiated, and
    /// inject the first push from user space (direct thread invocation).
    pub translation_masking: bool,
    /// §4.4 Push-and-Acknowledge Overlapping: split the pushed bytes into
    /// `BTP(1)` + `BTP(2)` and overlap the second push with the returning
    /// acknowledgement.
    pub push_ack_overlap: bool,
    /// §4.1 Exploiting parallelism: run the pull phase (the kernel copy into
    /// the destination buffer) on the least-loaded processor of the node
    /// rather than on the processor running the application thread.
    pub parallel_pull: bool,
}

impl OptFlags {
    /// No optimisations: the raw Push-Pull mechanism of Section 3.
    pub const fn none() -> Self {
        OptFlags {
            zero_buffer: false,
            translation_masking: false,
            push_ack_overlap: false,
            parallel_pull: false,
        }
    }

    /// All four optimisations enabled ("full optimisation" in Fig. 4).
    pub const fn full() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: true,
            push_ack_overlap: true,
            parallel_pull: true,
        }
    }

    /// Address-translation masking only (the `[∆]` series in Fig. 4).
    /// Zero buffer stays enabled because masking is defined on top of it.
    pub const fn mask_only() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: true,
            push_ack_overlap: false,
            parallel_pull: true,
        }
    }

    /// Push-and-acknowledge overlapping only (the `[×]` series in Fig. 4).
    pub const fn overlap_only() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: false,
            push_ack_overlap: true,
            parallel_pull: true,
        }
    }

    /// Baseline used by Fig. 4's "no optimization" series: zero buffer and
    /// parallel pull are part of the base implementation, but neither masking
    /// nor overlapping is applied.
    pub const fn baseline() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: false,
            push_ack_overlap: false,
            parallel_pull: true,
        }
    }

    /// The paper's label for this combination in Fig. 4, when it matches one
    /// of the four measured series.
    pub fn figure4_label(&self) -> &'static str {
        match (self.translation_masking, self.push_ack_overlap) {
            (false, false) => "no optimization",
            (true, false) => "mask only",
            (false, true) => "overlap only",
            (true, true) => "full optimization",
        }
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags::full()
    }
}

/// Complete configuration of one protocol endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Which messaging mechanism to run.
    pub mode: ProtocolMode,
    /// BTP policy used for internode peers.
    pub internode_btp: BtpPolicy,
    /// BTP policy used for intranode peers (the paper uses a single 16-byte
    /// BTP for the intranode experiments).
    pub intranode_btp: BtpPolicy,
    /// Optimisation flags.
    pub opts: OptFlags,
    /// Capacity of the pushed buffer in bytes (per endpoint).  Unexpected
    /// pushed data beyond this capacity is dropped and recovered by
    /// go-back-N retransmission.  Fig. 3 uses 12 KiB, Fig. 6 uses 4 KiB.
    pub pushed_buffer_capacity: usize,
    /// Maximum payload bytes carried by a single wire packet (the Ethernet
    /// MTU minus protocol headers for the internode path).
    pub max_payload: usize,
    /// Go-back-N transport configuration for internode channels.
    pub gbn: GbnConfig,
    /// Whether intranode transfers bypass the go-back-N layer (shared memory
    /// is reliable, so they always can; disabling this is only useful for
    /// testing the ARQ logic over a lossy in-memory channel).
    pub reliable_intranode: bool,
}

impl ProtocolConfig {
    /// Configuration used for the paper's intranode experiments (Fig. 3):
    /// 16-byte BTP, 12 KiB pushed buffer, full optimisation.
    pub fn paper_intranode() -> Self {
        ProtocolConfig {
            mode: ProtocolMode::PushPull,
            internode_btp: BtpPolicy::INTERNODE_DEFAULT,
            intranode_btp: BtpPolicy::INTRANODE_DEFAULT,
            opts: OptFlags::full(),
            pushed_buffer_capacity: 12 * 1024,
            max_payload: 1460,
            gbn: GbnConfig::default(),
            reliable_intranode: true,
        }
    }

    /// Configuration used for the paper's internode experiments (Fig. 4):
    /// `BTP(1)=80`, `BTP(2)=680`, 4 KiB pushed buffer.
    pub fn paper_internode() -> Self {
        ProtocolConfig {
            mode: ProtocolMode::PushPull,
            internode_btp: BtpPolicy::INTERNODE_DEFAULT,
            intranode_btp: BtpPolicy::INTRANODE_DEFAULT,
            opts: OptFlags::full(),
            pushed_buffer_capacity: 4 * 1024,
            max_payload: 1460,
            gbn: GbnConfig::default(),
            reliable_intranode: true,
        }
    }

    /// Sets the protocol mode, consuming and returning the configuration.
    pub fn with_mode(mut self, mode: ProtocolMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the optimisation flags, consuming and returning the configuration.
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the pushed-buffer capacity, consuming and returning the
    /// configuration.
    pub fn with_pushed_buffer(mut self, bytes: usize) -> Self {
        self.pushed_buffer_capacity = bytes;
        self
    }

    /// Sets the internode BTP policy, consuming and returning the
    /// configuration.
    pub fn with_internode_btp(mut self, policy: BtpPolicy) -> Self {
        self.internode_btp = policy;
        self
    }

    /// Sets the intranode BTP policy, consuming and returning the
    /// configuration.
    pub fn with_intranode_btp(mut self, policy: BtpPolicy) -> Self {
        self.intranode_btp = policy;
        self
    }

    /// Validates the configuration, returning a descriptive error for any
    /// field outside its legal range.
    pub fn validate(&self) -> Result<()> {
        if self.max_payload == 0 {
            return Err(Error::InvalidConfig {
                what: "max_payload must be non-zero".into(),
            });
        }
        if self.max_payload > 65_536 {
            return Err(Error::InvalidConfig {
                what: format!("max_payload {} exceeds 64 KiB", self.max_payload),
            });
        }
        if self.gbn.window == 0 {
            return Err(Error::InvalidConfig {
                what: "go-back-N window must be at least 1".into(),
            });
        }
        if self.pushed_buffer_capacity < self.intranode_btp.min_pushed_buffer()
            || self.pushed_buffer_capacity < self.internode_btp.min_pushed_buffer()
        {
            return Err(Error::InvalidConfig {
                what: format!(
                    "pushed buffer of {} bytes is smaller than the BTP policy requires",
                    self.pushed_buffer_capacity
                ),
            });
        }
        Ok(())
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::paper_internode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ProtocolConfig::default().validate().unwrap();
        ProtocolConfig::paper_intranode().validate().unwrap();
        ProtocolConfig::paper_internode().validate().unwrap();
    }

    #[test]
    fn invalid_payload_rejected() {
        let mut cfg = ProtocolConfig {
            max_payload: 0,
            ..ProtocolConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.max_payload = 1 << 20;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn pushed_buffer_must_hold_btp() {
        let cfg = ProtocolConfig::default()
            .with_internode_btp(BtpPolicy::split(80, 680))
            .with_pushed_buffer(100);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn figure4_labels() {
        assert_eq!(OptFlags::baseline().figure4_label(), "no optimization");
        assert_eq!(OptFlags::mask_only().figure4_label(), "mask only");
        assert_eq!(OptFlags::overlap_only().figure4_label(), "overlap only");
        assert_eq!(OptFlags::full().figure4_label(), "full optimization");
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(ProtocolMode::PushZero.label(), "push-zero");
        assert_eq!(ProtocolMode::PushPull.label(), "push-pull");
        assert_eq!(ProtocolMode::PushAll.label(), "push-all");
        assert_eq!(ProtocolMode::ALL.len(), 3);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = ProtocolConfig::paper_internode()
            .with_mode(ProtocolMode::PushAll)
            .with_opts(OptFlags::overlap_only())
            .with_pushed_buffer(8192)
            .with_intranode_btp(BtpPolicy::single(32));
        assert_eq!(cfg.mode, ProtocolMode::PushAll);
        assert!(!cfg.opts.translation_masking);
        assert_eq!(cfg.pushed_buffer_capacity, 8192);
        assert_eq!(cfg.intranode_btp.total(), 32);
        cfg.validate().unwrap();
    }

    #[test]
    fn gbn_window_validated() {
        let mut cfg = ProtocolConfig::default();
        cfg.gbn.window = 0;
        assert!(cfg.validate().is_err());
    }
}
