//! Protocol configuration: mode, BTP policy, optimisation flags and resource
//! limits.

use crate::btp::BtpPolicy;
use crate::error::{Error, Result};
use crate::ops::{CompletionQueue, TruncationPolicy};
use crate::reliability::{GbnConfig, ReliabilityMode};
use serde::{Deserialize, Serialize};

/// Which of the three messaging mechanisms from the paper the endpoint runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolMode {
    /// `BTP = 0`: the classical three-phase / rendezvous protocol.  The push
    /// phase carries no payload and only announces the message; all data
    /// flows in the pull phase after the handshake.
    PushZero,
    /// The paper's contribution: push `BTP` bytes eagerly, pull the rest.
    PushPull,
    /// `BTP = message length`: a purely eager protocol.  Fast when the
    /// receiver is early, but overwhelms the finite pushed buffer when the
    /// receiver is late (Fig. 6, right).
    PushAll,
}

impl ProtocolMode {
    /// All three modes, in the order the paper's figures list them.
    pub const ALL: [ProtocolMode; 3] = [
        ProtocolMode::PushZero,
        ProtocolMode::PushPull,
        ProtocolMode::PushAll,
    ];

    /// The label the paper's figures use for this mode.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolMode::PushZero => "push-zero",
            ProtocolMode::PushPull => "push-pull",
            ProtocolMode::PushAll => "push-all",
        }
    }
}

/// The optimisation techniques of Section 4, individually toggleable so the
/// ablation of Fig. 4 (no optimisation / mask only / overlap only / full) can
/// be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptFlags {
    /// §4.2 Cross-Space Zero Buffer: one-copy transfers between protected
    /// spaces (and from the NIC buffer straight into the destination buffer).
    /// When disabled, every cross-space transfer costs an extra staging copy.
    pub zero_buffer: bool,
    /// §4.3 Address Translation Overhead Masking: schedule virtual→physical
    /// translation *after* network transmission has been initiated, and
    /// inject the first push from user space (direct thread invocation).
    pub translation_masking: bool,
    /// §4.4 Push-and-Acknowledge Overlapping: split the pushed bytes into
    /// `BTP(1)` + `BTP(2)` and overlap the second push with the returning
    /// acknowledgement.
    pub push_ack_overlap: bool,
    /// §4.1 Exploiting parallelism: run the pull phase (the kernel copy into
    /// the destination buffer) on the least-loaded processor of the node
    /// rather than on the processor running the application thread.
    pub parallel_pull: bool,
}

impl OptFlags {
    /// No optimisations: the raw Push-Pull mechanism of Section 3.
    pub const fn none() -> Self {
        OptFlags {
            zero_buffer: false,
            translation_masking: false,
            push_ack_overlap: false,
            parallel_pull: false,
        }
    }

    /// All four optimisations enabled ("full optimisation" in Fig. 4).
    pub const fn full() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: true,
            push_ack_overlap: true,
            parallel_pull: true,
        }
    }

    /// Address-translation masking only (the `[∆]` series in Fig. 4).
    /// Zero buffer stays enabled because masking is defined on top of it.
    pub const fn mask_only() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: true,
            push_ack_overlap: false,
            parallel_pull: true,
        }
    }

    /// Push-and-acknowledge overlapping only (the `[×]` series in Fig. 4).
    pub const fn overlap_only() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: false,
            push_ack_overlap: true,
            parallel_pull: true,
        }
    }

    /// Baseline used by Fig. 4's "no optimization" series: zero buffer and
    /// parallel pull are part of the base implementation, but neither masking
    /// nor overlapping is applied.
    pub const fn baseline() -> Self {
        OptFlags {
            zero_buffer: true,
            translation_masking: false,
            push_ack_overlap: false,
            parallel_pull: true,
        }
    }

    /// The paper's label for this combination in Fig. 4, when it matches one
    /// of the four measured series.
    pub fn figure4_label(&self) -> &'static str {
        match (self.translation_masking, self.push_ack_overlap) {
            (false, false) => "no optimization",
            (true, false) => "mask only",
            (false, true) => "overlap only",
            (true, true) => "full optimization",
        }
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags::full()
    }
}

/// Complete configuration of one protocol endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Which messaging mechanism to run.
    pub mode: ProtocolMode,
    /// BTP policy used for internode peers.
    pub internode_btp: BtpPolicy,
    /// BTP policy used for intranode peers (the paper uses a single 16-byte
    /// BTP for the intranode experiments).
    pub intranode_btp: BtpPolicy,
    /// Optimisation flags.
    pub opts: OptFlags,
    /// Capacity of the pushed buffer in bytes (per endpoint).  Unexpected
    /// pushed data beyond this capacity is dropped and recovered by
    /// go-back-N retransmission.  Fig. 3 uses 12 KiB, Fig. 6 uses 4 KiB.
    pub pushed_buffer_capacity: usize,
    /// Maximum payload bytes carried by a single wire packet (the Ethernet
    /// MTU minus protocol headers for the internode path).
    pub max_payload: usize,
    /// Go-back-N transport configuration for internode channels.  Shared by
    /// both reliability modes: the window / RTO / retry knobs mean the same
    /// thing to selective repeat.
    pub gbn: GbnConfig,
    /// Which ARQ scheme internode channels run: the paper's go-back-N
    /// (default) or selective repeat for lossy / high-fan-in links.
    pub reliability: ReliabilityMode,
    /// Whether intranode transfers bypass the go-back-N layer (shared memory
    /// is reliable, so they always can; disabling this is only useful for
    /// testing the ARQ logic over a lossy in-memory channel).
    pub reliable_intranode: bool,
}

impl ProtocolConfig {
    /// Configuration used for the paper's intranode experiments (Fig. 3):
    /// 16-byte BTP, 12 KiB pushed buffer, full optimisation.
    pub fn paper_intranode() -> Self {
        ProtocolConfig {
            mode: ProtocolMode::PushPull,
            internode_btp: BtpPolicy::INTERNODE_DEFAULT,
            intranode_btp: BtpPolicy::INTRANODE_DEFAULT,
            opts: OptFlags::full(),
            pushed_buffer_capacity: 12 * 1024,
            max_payload: 1460,
            gbn: GbnConfig::default(),
            reliability: ReliabilityMode::default(),
            reliable_intranode: true,
        }
    }

    /// Configuration used for the paper's internode experiments (Fig. 4):
    /// `BTP(1)=80`, `BTP(2)=680`, 4 KiB pushed buffer.
    pub fn paper_internode() -> Self {
        ProtocolConfig {
            mode: ProtocolMode::PushPull,
            internode_btp: BtpPolicy::INTERNODE_DEFAULT,
            intranode_btp: BtpPolicy::INTRANODE_DEFAULT,
            opts: OptFlags::full(),
            pushed_buffer_capacity: 4 * 1024,
            max_payload: 1460,
            gbn: GbnConfig::default(),
            reliability: ReliabilityMode::default(),
            reliable_intranode: true,
        }
    }

    /// Sets the protocol mode, consuming and returning the configuration.
    pub fn with_mode(mut self, mode: ProtocolMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the optimisation flags, consuming and returning the configuration.
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the pushed-buffer capacity, consuming and returning the
    /// configuration.
    pub fn with_pushed_buffer(mut self, bytes: usize) -> Self {
        self.pushed_buffer_capacity = bytes;
        self
    }

    /// Sets the reliability mode for internode channels, consuming and
    /// returning the configuration.
    pub fn with_reliability(mut self, mode: ReliabilityMode) -> Self {
        self.reliability = mode;
        self
    }

    /// Sets the internode BTP policy, consuming and returning the
    /// configuration.
    pub fn with_internode_btp(mut self, policy: BtpPolicy) -> Self {
        self.internode_btp = policy;
        self
    }

    /// Sets the intranode BTP policy, consuming and returning the
    /// configuration.
    pub fn with_intranode_btp(mut self, policy: BtpPolicy) -> Self {
        self.intranode_btp = policy;
        self
    }

    /// Validates the configuration, returning a descriptive error for any
    /// field outside its legal range.
    pub fn validate(&self) -> Result<()> {
        if self.max_payload == 0 {
            return Err(Error::InvalidConfig {
                what: "max_payload must be non-zero".into(),
            });
        }
        if self.max_payload > 65_536 {
            return Err(Error::InvalidConfig {
                what: format!("max_payload {} exceeds 64 KiB", self.max_payload),
            });
        }
        if self.gbn.window == 0 {
            return Err(Error::InvalidConfig {
                what: "go-back-N window must be at least 1".into(),
            });
        }
        if self.pushed_buffer_capacity < self.intranode_btp.min_pushed_buffer()
            || self.pushed_buffer_capacity < self.internode_btp.min_pushed_buffer()
        {
            return Err(Error::InvalidConfig {
                what: format!(
                    "pushed buffer of {} bytes is smaller than the BTP policy requires",
                    self.pushed_buffer_capacity
                ),
            });
        }
        Ok(())
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::paper_internode()
    }
}

/// Per-endpoint configuration overrides, applied on top of a backend's
/// shared [`ProtocolConfig`].
///
/// Historically every backend hardwired the same defaults for all of its
/// endpoints: the completion-retention cap
/// ([`DEFAULT_COMPLETION_RETENTION`](crate::DEFAULT_COMPLETION_RETENTION)),
/// the go-back-N window, and the BTP eager threshold all came from the
/// cluster-wide protocol configuration, and the truncation policy had to be
/// spelled out on every posted receive.  `EndpointConfig` is the builder
/// that makes these **per endpoint**: pass it to a backend's `*_with`
/// constructor (`HostCluster::add_endpoint_with`,
/// `LoopbackCluster::add_endpoint_with`, `UdpEndpoint::bind_with`) or apply
/// it to an existing endpoint through the facade front-end.
///
/// Every field is optional; an unset field keeps the backend's default.
///
/// ```
/// use ppmsg_core::{EndpointConfig, TruncationPolicy};
///
/// let cfg = EndpointConfig::new()
///     .completion_retention(256)          // evict unclaimed results beyond 256
///     .truncation(TruncationPolicy::Truncate) // default for convenience receives
///     .gbn_window(16)                     // wider internode in-flight window
///     .eager_threshold(256);              // push 256 bytes before the pull
/// assert_eq!(cfg.retention(), Some(256));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EndpointConfig {
    completion_retention: Option<usize>,
    truncation: Option<TruncationPolicy>,
    gbn_window: Option<usize>,
    eager_threshold: Option<usize>,
    reliability: Option<ReliabilityMode>,
    shards: Option<usize>,
}

impl EndpointConfig {
    /// A configuration with every override unset (backend defaults apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of unclaimed completions this endpoint retains before
    /// evicting the oldest unawaited ones
    /// ([`CompletionQueue::set_retention`]); evictions are surfaced through
    /// `EndpointStats::completions_evicted`.
    pub fn completion_retention(mut self, cap: usize) -> Self {
        self.completion_retention = Some(cap);
        self
    }

    /// Sets the default [`TruncationPolicy`] used by the front-end's
    /// convenience receives that do not spell a policy out.
    ///
    /// This field is a **front-end** setting: it takes effect through the
    /// facade's `Endpoint::with_config` (which owns the convenience
    /// receives), not through a backend's `*_with` constructor — backends
    /// only consume the protocol-and-queue overrides (retention, window,
    /// eager threshold).  When constructing through a backend, apply the
    /// same config on both layers:
    /// `Endpoint::with_config(cluster.add_endpoint_with(id, &cfg), &cfg)`.
    pub fn truncation(mut self, policy: TruncationPolicy) -> Self {
        self.truncation = Some(policy);
        self
    }

    /// Overrides the go-back-N window (maximum unacknowledged data frames in
    /// flight) for this endpoint's internode channels.
    pub fn gbn_window(mut self, window: usize) -> Self {
        self.gbn_window = Some(window);
        self
    }

    /// Overrides the BTP eager threshold: messages are pushed eagerly up to
    /// `bytes` (a single, non-split `BTP = bytes` on both the intranode and
    /// internode paths) and pulled beyond it.
    pub fn eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = Some(bytes);
        self
    }

    /// Overrides the ARQ scheme this endpoint's internode channels run —
    /// [`ReliabilityMode::SelectiveRepeat`] for lossy or high-fan-in links,
    /// [`ReliabilityMode::GoBackN`] (the paper's scheme) otherwise.  Like the
    /// window override, this is applied at engine construction, so pass it to
    /// a backend's `*_with` constructor.
    pub fn reliability(mut self, mode: ReliabilityMode) -> Self {
        self.reliability = Some(mode);
        self
    }

    /// Partitions the endpoint's matching/completion state across `count`
    /// engine shards keyed by peer (see
    /// [`ShardedEngine`](crate::sharded::ShardedEngine)): traffic from
    /// independent peers progresses under independent locks.  `1` (the
    /// default) keeps a single shard — identical locking behaviour to an
    /// unsharded endpoint.  Backends that host the engine behind a lock
    /// honor this; note that [`ANY_SOURCE`](crate::types::ANY_SOURCE)
    /// receives are rejected with [`Error::ShardedWildcard`](crate::Error)
    /// when more than one shard is configured.
    pub fn shards(mut self, count: usize) -> Self {
        self.shards = Some(count.max(1));
        self
    }

    /// The configured shard count (`1` when unset).
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(1)
    }

    /// The configured retention cap, if any.
    pub fn retention(&self) -> Option<usize> {
        self.completion_retention
    }

    /// The default truncation policy for convenience receives
    /// ([`TruncationPolicy::Error`] unless overridden).
    pub fn default_truncation(&self) -> TruncationPolicy {
        self.truncation.unwrap_or_default()
    }

    /// Applies the protocol-level overrides (go-back-N window, BTP eager
    /// threshold) to a backend's base [`ProtocolConfig`], returning the
    /// per-endpoint configuration the engine should be built with.
    pub fn apply_protocol(&self, mut base: ProtocolConfig) -> ProtocolConfig {
        if let Some(window) = self.gbn_window {
            base.gbn.window = window;
        }
        if let Some(bytes) = self.eager_threshold {
            base.intranode_btp = BtpPolicy::single(bytes);
            base.internode_btp = BtpPolicy::single(bytes);
        }
        if let Some(mode) = self.reliability {
            base.reliability = mode;
        }
        base
    }

    /// Applies the completion-retention override to an endpoint's
    /// [`CompletionQueue`] (no-op when unset).
    pub fn apply_retention(&self, queue: &mut CompletionQueue) {
        if let Some(cap) = self.completion_retention {
            queue.set_retention(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ProtocolConfig::default().validate().unwrap();
        ProtocolConfig::paper_intranode().validate().unwrap();
        ProtocolConfig::paper_internode().validate().unwrap();
    }

    #[test]
    fn invalid_payload_rejected() {
        let mut cfg = ProtocolConfig {
            max_payload: 0,
            ..ProtocolConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.max_payload = 1 << 20;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn pushed_buffer_must_hold_btp() {
        let cfg = ProtocolConfig::default()
            .with_internode_btp(BtpPolicy::split(80, 680))
            .with_pushed_buffer(100);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn figure4_labels() {
        assert_eq!(OptFlags::baseline().figure4_label(), "no optimization");
        assert_eq!(OptFlags::mask_only().figure4_label(), "mask only");
        assert_eq!(OptFlags::overlap_only().figure4_label(), "overlap only");
        assert_eq!(OptFlags::full().figure4_label(), "full optimization");
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(ProtocolMode::PushZero.label(), "push-zero");
        assert_eq!(ProtocolMode::PushPull.label(), "push-pull");
        assert_eq!(ProtocolMode::PushAll.label(), "push-all");
        assert_eq!(ProtocolMode::ALL.len(), 3);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = ProtocolConfig::paper_internode()
            .with_mode(ProtocolMode::PushAll)
            .with_opts(OptFlags::overlap_only())
            .with_pushed_buffer(8192)
            .with_intranode_btp(BtpPolicy::single(32));
        assert_eq!(cfg.mode, ProtocolMode::PushAll);
        assert!(!cfg.opts.translation_masking);
        assert_eq!(cfg.pushed_buffer_capacity, 8192);
        assert_eq!(cfg.intranode_btp.total(), 32);
        cfg.validate().unwrap();
    }

    #[test]
    fn gbn_window_validated() {
        let mut cfg = ProtocolConfig::default();
        cfg.gbn.window = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn endpoint_config_overrides_apply() {
        let cfg = EndpointConfig::new()
            .completion_retention(7)
            .truncation(TruncationPolicy::Truncate)
            .gbn_window(3)
            .eager_threshold(128)
            .reliability(ReliabilityMode::SelectiveRepeat);
        assert_eq!(cfg.retention(), Some(7));
        assert_eq!(cfg.default_truncation(), TruncationPolicy::Truncate);
        let proto = cfg.apply_protocol(ProtocolConfig::paper_internode());
        assert_eq!(proto.gbn.window, 3);
        assert_eq!(proto.reliability, ReliabilityMode::SelectiveRepeat);
        assert_eq!(proto.internode_btp, BtpPolicy::single(128));
        assert_eq!(proto.intranode_btp, BtpPolicy::single(128));
        proto.validate().unwrap();

        let mut queue = CompletionQueue::new();
        cfg.apply_retention(&mut queue);
        for slot in 0..10u32 {
            queue.push(crate::ops::Completion {
                op: crate::ops::OpId::Send(crate::ops::SendOp::from_raw(slot, 0)),
                peer: crate::types::ProcessId::new(0, 1),
                tag: crate::types::Tag(0),
                len: 0,
                status: crate::ops::Status::Ok,
                data: None,
                buf: None,
            });
        }
        assert_eq!(queue.len(), 7, "retention cap applied");
    }

    #[test]
    fn unset_endpoint_config_changes_nothing() {
        let cfg = EndpointConfig::new();
        assert_eq!(cfg.retention(), None);
        assert_eq!(cfg.default_truncation(), TruncationPolicy::Error);
        let base = ProtocolConfig::paper_internode();
        assert_eq!(cfg.apply_protocol(base.clone()), base);
    }
}
