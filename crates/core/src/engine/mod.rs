//! The sans-I/O protocol engine.
//!
//! [`Endpoint`] is the per-process protocol state machine.  Backends call
//! [`Endpoint::post_send`] / [`Endpoint::post_recv`] /
//! [`Endpoint::post_recv_into`] on behalf of the application, feed arriving
//! traffic through [`Endpoint::handle_packet`] (intranode) or
//! [`Endpoint::handle_frame`] (internode, go-back-N framed), fire timers
//! through [`Endpoint::handle_timer`], and drain the resulting [`Action`]s
//! with [`Endpoint::poll_action`].
//!
//! The engine performs **no I/O and reads no clock**: every externally
//! visible effect is an [`Action`].  This is what lets the same protocol code
//! run both inside the discrete-event simulator (`ppmsg-sim`) and over real
//! sockets and shared memory (`ppmsg-host`).
//!
//! Operation **completions** do not travel through the action stream: they
//! land in a per-endpoint completion queue ([`Completion`]), drained in
//! batches with [`Endpoint::poll_completion`] /
//! [`Endpoint::drain_completions_into`].  Actions are the backend's
//! obligations (move these bytes, arm this timer); completions are the
//! application's results (this operation finished, with this status).

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

mod receiver;
mod sender;
#[cfg(test)]
mod tests;

use crate::btp::BtpPolicy;
use crate::config::ProtocolConfig;
use crate::index::{Slab, U64Index};
use crate::ops::{Completion, OpTable, RecvBuf, RecvOp, TruncationPolicy};
use crate::queues::{Assembly, BufferQueue, PushedBuffer, ReceiveQueue, SendQueue};
use crate::reliability::{ArqChannel, Frame, GbnEvent};
use crate::telemetry::{self, frame_kind, EventKind, OP_SEND_BIT};
use crate::types::{MessageId, ProcessId, Tag, TimerId};
use crate::wire::Packet;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How a packet is handed to the network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectMode {
    /// Copied into the NIC's outgoing buffer directly from user space via the
    /// mapped control registers ("direct thread invocation", §4.3).  No
    /// system call and no prior address translation are required.
    UserSpaceDirect,
    /// Handed to the kernel transmission thread, which requires the source
    /// buffer's zero buffer (physical scatter list) to have been built.
    Kernel,
}

/// Which buffer a [`Action::Translate`] request refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TranslateCtx {
    /// The source buffer of a send operation.
    SendSource,
    /// The destination buffer of a receive operation.
    RecvDestination,
}

/// The kind of data movement described by an [`Action::Copy`].
///
/// The distinction matters because the number of copies — one (zero buffer)
/// versus two (staged through the pushed buffer) — is exactly what the
/// paper's intranode evaluation measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyKind {
    /// Eagerly pushed data copied straight into the destination buffer
    /// (receive already posted): the one-copy path.
    PushDirect,
    /// Eagerly pushed data staged into the pinned pushed buffer because the
    /// receive has not been posted yet.
    PushToPushedBuffer,
    /// Data moved from the pushed buffer into the destination buffer once the
    /// receive is posted — the second copy of the two-copy path.
    DrainPushedBuffer,
    /// Pulled data copied straight into the destination buffer.  Eligible to
    /// run on the least-loaded processor (§4.1) when `least_loaded` is set on
    /// the action.
    PullDirect,
    /// The extra staging copy incurred when the cross-space zero buffer
    /// optimisation is disabled.
    StagingExtra,
}

/// Why an incoming frame or packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// The pushed buffer had no room for the unexpected data.  The sender's
    /// go-back-N logic will retransmit the frame later.
    PushedBufferOverflow,
    /// The packet referenced a message id this endpoint does not know.
    UnknownMessage,
    /// The packet was malformed.
    Malformed,
}

/// An externally visible effect requested by the engine.
#[derive(Debug, Clone)]
pub enum Action {
    /// Build the zero buffer (virtual→physical scatter list) for `bytes`
    /// bytes of a user buffer.  The backend charges the translation cost
    /// here; with translation masking this action is emitted *after* the
    /// network transmissions it would otherwise delay.
    Translate {
        /// Which buffer is being translated.
        ctx: TranslateCtx,
        /// The peer of the operation the buffer belongs to.
        peer: ProcessId,
        /// The message the buffer belongs to.
        msg_id: MessageId,
        /// Number of bytes to translate.
        bytes: usize,
    },
    /// Transmit a protocol packet to an **intranode** peer (through the
    /// kernel's shared queues; no go-back-N framing).
    Transmit {
        /// The destination process (same node).
        dst: ProcessId,
        /// The packet to deliver to the peer's `handle_packet`.
        packet: Packet,
        /// How the packet is injected into the transport.
        inject: InjectMode,
    },
    /// Transmit a go-back-N frame to an **internode** peer.
    TransmitFrame {
        /// The destination process (different node).
        dst: ProcessId,
        /// The frame to put on the wire.
        frame: Frame,
        /// How the frame is injected into the NIC.
        inject: InjectMode,
    },
    /// Account a data copy of `bytes` bytes.  The backend charges memory
    /// system cost here; the engine has already moved the bytes internally.
    Copy {
        /// What kind of copy this is (one-copy vs staged paths).
        kind: CopyKind,
        /// The peer the data came from / goes to.
        peer: ProcessId,
        /// The message involved.
        msg_id: MessageId,
        /// Number of bytes copied.
        bytes: usize,
        /// `true` when §4.1 allows this copy to run on the least-loaded
        /// processor of the node instead of the application's processor.
        least_loaded: bool,
    },
    /// Arm a retransmission timer: call `handle_timer(timer)` after
    /// `delay_us` microseconds unless it is cancelled first.
    SetTimer {
        /// The timer to arm.
        timer: TimerId,
        /// Delay in microseconds.
        delay_us: u64,
    },
    /// Cancel a previously armed timer.
    CancelTimer {
        /// The timer to cancel.
        timer: TimerId,
    },
    /// An incoming frame was dropped before reaching the protocol layer.
    PacketDropped {
        /// The peer that sent the frame.
        peer: ProcessId,
        /// Payload bytes lost (will be recovered by retransmission on
        /// internode channels).
        bytes: usize,
        /// Why the frame was dropped.
        reason: DropReason,
    },
    /// An internode channel exceeded its retry budget and was declared dead.
    ChannelFailed {
        /// The unreachable peer.
        peer: ProcessId,
    },
}

/// Counters maintained by an endpoint, used by the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Send operations posted.
    pub sends_posted: u64,
    /// Receive operations posted.
    pub recvs_posted: u64,
    /// Send operations completed.
    pub sends_completed: u64,
    /// Receive operations completed.
    pub recvs_completed: u64,
    /// Receive operations that completed with an error status (e.g. a
    /// too-small buffer under [`TruncationPolicy::Error`]).
    pub recvs_failed: u64,
    /// Receive operations cancelled before they matched a message.
    pub recvs_cancelled: u64,
    /// Send operations cancelled before their remainder was pulled.
    pub sends_cancelled: u64,
    /// Receive operations that completed truncated
    /// ([`TruncationPolicy::Truncate`]).
    pub recvs_truncated: u64,
    /// Bytes pushed eagerly (first + second pushes).
    pub bytes_pushed: u64,
    /// Bytes transferred in the pull phase.
    pub bytes_pulled: u64,
    /// Bytes copied straight to the destination buffer (one-copy path).
    pub bytes_copied_direct: u64,
    /// Bytes staged through the pushed buffer (two-copy path), counted once
    /// per staging copy.
    pub bytes_copied_staged: u64,
    /// Bytes of extra staging copies caused by disabling the zero buffer.
    pub bytes_copied_extra: u64,
    /// Address translation requests issued.
    pub translations: u64,
    /// Bytes covered by address translation requests.
    pub bytes_translated: u64,
    /// Pull requests sent.
    pub pull_requests_sent: u64,
    /// Pull requests served.
    pub pull_requests_served: u64,
    /// Frames dropped at the pushed-buffer admission check.
    pub frames_dropped: u64,
    /// Bytes dropped at the pushed-buffer admission check.
    pub bytes_dropped: u64,
    /// [`Action::PacketDropped`] events emitted, whatever the
    /// [`DropReason`] — pushed-buffer overflows, unknown-message references,
    /// and malformed traffic alike.  Counted by the engine itself, so every
    /// backend reports it without having to observe the action stream.
    ///
    /// Note: traffic addressed to a process the *router* does not know never
    /// reaches an engine, so it cannot appear here — the loopback and chaos
    /// clusters count it separately in their `unroutable_drops()` accessor.
    pub packets_dropped: u64,
    /// [`Action::ChannelFailed`] events emitted: internode channels that
    /// exhausted their retry budget.  Operations pending against the failed
    /// peer complete with [`Error::ChannelFailed`](crate::Error::ChannelFailed)
    /// at the same moment.  Deliberately induced failures (e.g. a permanent
    /// chaos partition) land here too — a failed channel is a clean outcome,
    /// distinct from both a wedge and an unroutable drop.
    pub channels_failed: u64,
    /// Data frames this endpoint's ARQ channels retransmitted, in either
    /// reliability mode.  Under go-back-N one timeout retransmits the whole
    /// in-flight window, so this grows in window-sized steps; under selective
    /// repeat each increment corresponds to one presumed-lost frame.
    pub retransmits: u64,
    /// Acknowledgement frames received across this endpoint's ARQ channels
    /// (cumulative acks and SACKs alike).
    pub acks_received: u64,
    /// Data frames received whose payload had already been accepted — a
    /// retransmission that crossed an in-flight ack, or a network duplicate.
    /// Summed across this endpoint's ARQ channels.
    pub duplicate_frames: u64,
    /// Retransmissions triggered by an RTO expiry, summed across this
    /// endpoint's ARQ channels (a subset of `retransmits`).
    pub rto_retransmits: u64,
    /// Retransmissions triggered by duplicate-SACK fast recovery, summed
    /// across this endpoint's ARQ channels (a subset of `retransmits`;
    /// always 0 under go-back-N).
    pub fast_retransmits: u64,
    /// Heap-allocation events attributable to the engine's data structures:
    /// arena growth, index rehashes, assembly/scratch pool misses, and
    /// action-queue growth.  After warm-up, a steady-state send/receive loop
    /// must keep this counter constant — the regression test in
    /// `tests/integration.rs` asserts exactly that.
    pub steady_allocs: u64,
    /// Completions silently evicted from the endpoint's backend
    /// [`CompletionQueue`](crate::CompletionQueue) because they were never
    /// claimed and aged past the retention cap.  The engine itself does not
    /// retain completions (this field stays `0` on a bare [`Endpoint`]);
    /// backends merge [`CompletionQueue::evicted`](crate::CompletionQueue::evicted)
    /// in when reporting stats, so a fire-and-forget workload losing results
    /// to the cap is observable instead of silent.
    pub completions_evicted: u64,
}

impl EndpointStats {
    /// Accumulates `other` into `self`, field by field.  A sharded engine
    /// ([`crate::sharded::ShardedEngine`]) reports one merged view over its
    /// shards; the exhaustive destructuring makes adding a counter without
    /// summing it a compile error.
    pub fn merge(&mut self, other: &EndpointStats) {
        let EndpointStats {
            sends_posted,
            recvs_posted,
            sends_completed,
            recvs_completed,
            recvs_failed,
            recvs_cancelled,
            sends_cancelled,
            recvs_truncated,
            bytes_pushed,
            bytes_pulled,
            bytes_copied_direct,
            bytes_copied_staged,
            bytes_copied_extra,
            translations,
            bytes_translated,
            pull_requests_sent,
            pull_requests_served,
            frames_dropped,
            bytes_dropped,
            packets_dropped,
            channels_failed,
            retransmits,
            acks_received,
            duplicate_frames,
            rto_retransmits,
            fast_retransmits,
            steady_allocs,
            completions_evicted,
        } = other;
        self.sends_posted += sends_posted;
        self.recvs_posted += recvs_posted;
        self.sends_completed += sends_completed;
        self.recvs_completed += recvs_completed;
        self.recvs_failed += recvs_failed;
        self.recvs_cancelled += recvs_cancelled;
        self.sends_cancelled += sends_cancelled;
        self.recvs_truncated += recvs_truncated;
        self.bytes_pushed += bytes_pushed;
        self.bytes_pulled += bytes_pulled;
        self.bytes_copied_direct += bytes_copied_direct;
        self.bytes_copied_staged += bytes_copied_staged;
        self.bytes_copied_extra += bytes_copied_extra;
        self.translations += translations;
        self.bytes_translated += bytes_translated;
        self.pull_requests_sent += pull_requests_sent;
        self.pull_requests_served += pull_requests_served;
        self.frames_dropped += frames_dropped;
        self.bytes_dropped += bytes_dropped;
        self.packets_dropped += packets_dropped;
        self.channels_failed += channels_failed;
        self.retransmits += retransmits;
        self.acks_received += acks_received;
        self.duplicate_frames += duplicate_frames;
        self.rto_retransmits += rto_retransmits;
        self.fast_retransmits += fast_retransmits;
        self.steady_allocs += steady_allocs;
        self.completions_evicted += completions_evicted;
    }
}

/// Payload storage of one incoming message.
///
/// Small fully-eager messages — the latency-critical regime the paper tunes
/// BTP for — arrive as a single packet and are delivered as a zero-copy
/// [`Bytes`] slice of that packet ([`MsgBody::Direct`]), touching neither the
/// heap nor the assembly pool.  Only genuinely fragmented messages pay for an
/// assembly buffer.
#[derive(Debug)]
pub(crate) enum MsgBody {
    /// No payload bytes recorded yet (e.g. only the zero-length Push-Zero
    /// announce has arrived).
    Empty,
    /// The whole message arrived in one packet; the payload is shared with
    /// the packet buffer, no copy and no allocation.
    Direct(Bytes),
    /// Multi-fragment reassembly through a pooled [`Assembly`] buffer.
    Assembling(Assembly),
    /// Reassembly directly into the caller-owned buffer of a
    /// [`Endpoint::post_recv_into`] operation: fragments land in the
    /// application's storage and the buffer is handed back in the
    /// completion — the engine never owns the message bytes.
    Caller(RecvBuf),
}

/// Reassembly state of one incoming message.
#[derive(Debug)]
pub(crate) struct IncomingMsg {
    #[allow(dead_code)] // kept for diagnostics and symmetry with the peer list
    pub(crate) src: ProcessId,
    pub(crate) msg_id: MessageId,
    pub(crate) tag: Tag,
    pub(crate) total_len: usize,
    pub(crate) eager_len: usize,
    pub(crate) body: MsgBody,
    /// The receive this message has been matched to, if any.
    pub(crate) matched: Option<RecvOp>,
    /// `true` once the pull request for the remainder has been sent.
    pub(crate) pull_requested: bool,
    /// Payload bytes of this message currently staged in the pushed buffer.
    pub(crate) pushed_buffer_bytes: usize,
    /// Bytes reserved in the pushed buffer for this message, including packet
    /// headers (what actually counts against the buffer's capacity).
    pub(crate) pushed_buffer_footprint: usize,
}

impl IncomingMsg {
    /// `true` once every byte of the message has been received.
    pub(crate) fn is_complete(&self) -> bool {
        match &self.body {
            MsgBody::Direct(_) => true,
            MsgBody::Assembling(a) => a.is_complete(),
            MsgBody::Caller(buf) => buf.is_complete(),
            MsgBody::Empty => self.total_len == 0,
        }
    }
}

/// Per-peer engine state, addressed by the dense index the peer interner
/// assigns on first contact.
#[derive(Debug)]
struct PeerState {
    id: ProcessId,
    /// ARQ channel for internode peers (lazily created; go-back-N or
    /// selective repeat per [`ProtocolConfig::reliability`]).
    channel: Option<ArqChannel>,
    /// Slots (into [`Endpoint::incoming`]) of this peer's in-flight incoming
    /// messages.  A handful at most, so a linear scan beats any index.
    incoming: Vec<u32>,
}

/// How many scratch vectors / assembly shells the engine keeps pooled.
const SCRATCH_POOL_CAP: usize = 8;

/// Live state of one in-flight receive operation, slab-indexed by its
/// [`RecvOp`] handle.
#[derive(Debug)]
pub(crate) struct RecvRec {
    /// Caller-owned destination buffer of a [`Endpoint::post_recv_into`]
    /// receive; moved into the message body at match time and handed back in
    /// the completion.
    pub(crate) buf: Option<RecvBuf>,
    /// Capacity of the destination buffer in bytes.
    pub(crate) capacity: usize,
    /// What to do when the arriving message exceeds `capacity`.  Consulted
    /// through the matcher's [`PostedReceive`](crate::queues::PostedReceive)
    /// copy on the match path; kept here for diagnostics.
    #[allow(dead_code)]
    pub(crate) policy: TruncationPolicy,
}

/// Trace arguments for a frame event: `(sequence-or-ack-point, frame kind)`.
fn frame_trace_args(frame: &Frame) -> (u32, u32) {
    match frame {
        Frame::Data { seq, .. } => (*seq as u32, frame_kind::DATA),
        Frame::Ack { next_expected } => (*next_expected as u32, frame_kind::ACK),
        Frame::Sack { next_expected, .. } => (*next_expected as u32, frame_kind::SACK),
    }
}

/// The per-process Push-Pull Messaging protocol engine.
///
/// Steady-state hot-path operations (`post_send`, `post_recv`,
/// `post_recv_into`, `handle_packet`, `handle_frame`, completion draining)
/// are allocation-free: message and operation state lives in slab arenas
/// addressed by dense per-peer indices, matching uses `(source,
/// tag)`-bucketed O(1) lookups, and every transient buffer (action queue,
/// completion queue, go-back-N event scratch, assembly buffers) is pooled
/// and reused.  [`EndpointStats::steady_allocs`] counts the allocation
/// events so regressions are observable.
#[derive(Debug)]
pub struct Endpoint {
    id: ProcessId,
    config: ProtocolConfig,
    next_msg_id: u64,
    pub(crate) send_queue: SendQueue,
    pub(crate) recv_queue: ReceiveQueue,
    pub(crate) pushed_buffer: PushedBuffer,
    pub(crate) buffer_queue: BufferQueue,
    /// Arena of in-flight incoming messages; peers hold slot lists.
    pub(crate) incoming: Slab<IncomingMsg>,
    /// Peer interner: `ProcessId::as_u64()` → dense index into `peers`.
    peer_index: U64Index,
    peers: Vec<PeerState>,
    pub(crate) actions: VecDeque<Action>,
    /// Completed operations awaiting [`Endpoint::poll_completion`].
    pub(crate) completions: VecDeque<Completion>,
    /// Generation-checked table of in-flight send operations, each recording
    /// its message id so [`Endpoint::cancel_send`] can find the registered
    /// send without a scan.
    pub(crate) send_ops: OpTable<MessageId>,
    /// Generation-checked table of in-flight receive operations.
    pub(crate) recv_ops: OpTable<RecvRec>,
    pub(crate) stats: EndpointStats,
    /// Pool of reusable assembly buffers for fragmented messages.
    assembly_pool: Vec<Assembly>,
    /// Pool of reusable go-back-N event vectors (nested use during
    /// in-line delivery takes more than one).
    gbn_scratch: Vec<Vec<GbnEvent>>,
    /// Engine-local allocation events (pool misses, queue growth); merged
    /// with the per-structure counters in [`Endpoint::stats`].
    alloc_events: u64,
    /// Test hook: apply
    /// [`GoBackN::sabotage_skip_rearm`](crate::reliability::GoBackN::sabotage_skip_rearm)
    /// to every channel (see [`Endpoint::sabotage_skip_rearm`]).
    sabotage_skip_rearm: bool,
}

impl Endpoint {
    /// Creates an endpoint for process `id` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`ProtocolConfig::validate`] to check first when the configuration
    /// comes from user input.
    pub fn new(id: ProcessId, config: ProtocolConfig) -> Self {
        config
            .validate()
            .expect("invalid protocol configuration passed to Endpoint::new");
        let pushed_buffer = PushedBuffer::new(config.pushed_buffer_capacity);
        Endpoint {
            id,
            config,
            next_msg_id: 0,
            send_queue: SendQueue::new(),
            recv_queue: ReceiveQueue::new(),
            pushed_buffer,
            buffer_queue: BufferQueue::new(),
            incoming: Slab::new(),
            peer_index: U64Index::new(),
            peers: Vec::new(),
            actions: VecDeque::new(),
            completions: VecDeque::new(),
            send_ops: OpTable::new(),
            recv_ops: OpTable::new(),
            stats: EndpointStats::default(),
            assembly_pool: Vec::new(),
            gbn_scratch: Vec::new(),
            alloc_events: 0,
            sabotage_skip_rearm: false,
        }
    }

    /// The process this endpoint belongs to.
    #[inline]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The endpoint's configuration.
    #[inline]
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Replaces the pushed-buffer capacity at run time ("applications can
    /// dynamically change the size of the pushed buffer").
    pub fn resize_pushed_buffer(&mut self, capacity: usize) {
        self.config.pushed_buffer_capacity = capacity;
        self.pushed_buffer.resize(capacity);
    }

    /// A snapshot of this endpoint's statistics.
    pub fn stats(&self) -> EndpointStats {
        let mut stats = self.stats;
        stats.steady_allocs = self.alloc_events
            + self.send_queue.alloc_events()
            + self.recv_queue.alloc_events()
            + self.buffer_queue.alloc_events()
            + self.incoming.alloc_events()
            + self.peer_index.alloc_events()
            + self.send_ops.alloc_events()
            + self.recv_ops.alloc_events()
            + self
                .peers
                .iter()
                .filter_map(|p| p.channel.as_ref())
                .map(|c| c.alloc_events())
                .sum::<u64>();
        for channel in self.peers.iter().filter_map(|p| p.channel.as_ref()) {
            let c = channel.stats();
            stats.retransmits += c.retransmissions;
            stats.acks_received += c.acks_received;
            stats.duplicate_frames += c.duplicates;
            stats.rto_retransmits += c.rto_retransmits;
            stats.fast_retransmits += c.fast_retransmits;
        }
        stats
    }

    /// Statistics of the pushed buffer (occupancy, overflow events).
    #[inline]
    pub fn pushed_buffer_stats(&self) -> crate::queues::PushedBufferStats {
        self.pushed_buffer.stats()
    }

    /// ARQ statistics for the channel to `peer`, if one exists (the
    /// [`GbnStats`](crate::reliability::GbnStats) counters are shared by both
    /// reliability modes).
    pub fn channel_stats(&self, peer: ProcessId) -> Option<crate::reliability::GbnStats> {
        let slot = self.peer_index.get(peer.as_u64())?;
        self.peers[slot as usize]
            .channel
            .as_ref()
            .map(|c| c.stats())
    }

    /// Removes and returns the next pending action, if any.
    #[inline]
    pub fn poll_action(&mut self) -> Option<Action> {
        self.actions.pop_front()
    }

    /// Drains every pending action into a vector (convenience for tests and
    /// simple backends; allocates — backends with a hot loop should use
    /// [`Endpoint::drain_actions_into`] or [`Endpoint::poll_action`]).
    pub fn drain_actions(&mut self) -> Vec<Action> {
        self.actions.drain(..).collect()
    }

    /// Appends every pending action to `out`, reusing its capacity.
    pub fn drain_actions_into(&mut self, out: &mut Vec<Action>) {
        out.extend(self.actions.drain(..));
    }

    /// Removes and returns the next pending completion, if any.
    ///
    /// Completions are produced in the order operations finish; draining
    /// them is how the application observes operation results (the action
    /// stream only carries backend obligations).
    #[inline]
    pub fn poll_completion(&mut self) -> Option<Completion> {
        self.completions.pop_front()
    }

    /// Appends every pending completion to `out`, reusing its capacity.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.extend(self.completions.drain(..));
    }

    /// Number of completions waiting to be drained.
    #[inline]
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// `true` when the endpoint has no pending protocol work: no queued
    /// actions, no registered sends awaiting a pull, no posted receives, no
    /// partially assembled incoming messages and no unacknowledged frames.
    /// Undrained completions do not count — they are results waiting for the
    /// application, not work waiting for the protocol.
    pub fn idle(&self) -> bool {
        self.actions.is_empty()
            && self.send_queue.is_empty()
            && self.recv_queue.is_empty()
            && self.incoming.is_empty()
            && self
                .peers
                .iter()
                .all(|p| p.channel.as_ref().map(|c| c.idle()).unwrap_or(true))
    }

    /// The BTP policy that applies to messages exchanged with `peer`.
    pub fn btp_for(&self, peer: ProcessId) -> BtpPolicy {
        if self.id.same_node(&peer) {
            self.config.intranode_btp
        } else {
            self.config.internode_btp
        }
    }

    /// Handles a retransmission timer previously requested via
    /// [`Action::SetTimer`].
    pub fn handle_timer(&mut self, timer: TimerId) {
        let peer = timer.peer;
        telemetry::event(
            EventKind::TimerFire,
            timer.generation as u32,
            0,
            peer.as_u64(),
        );
        let mut events = self.take_scratch();
        if let Some(slot) = self.peer_index.get(peer.as_u64()) {
            if let Some(channel) = self.peers[slot as usize].channel.as_mut() {
                channel.on_timeout(timer.generation, &mut events);
            }
        }
        self.emit_gbn_outputs(peer, &mut events, InjectMode::Kernel);
        self.put_scratch(events);
    }

    /// Handles a go-back-N frame arriving from an internode peer.
    ///
    /// The pushed-buffer admission check happens *here*, before the frame
    /// reaches the ARQ receiver: a frame that would overflow the pushed
    /// buffer is dropped without acknowledgement, exactly as the paper's
    /// kernel drops packets it has nowhere to put, so the sender's go-back-N
    /// logic retransmits it later.
    pub fn handle_frame(&mut self, src: ProcessId, frame: Frame) {
        let (seq_arg, kind_arg) = frame_trace_args(&frame);
        telemetry::event(EventKind::FrameRx, seq_arg, kind_arg, src.as_u64());
        if let Frame::Data { packet, .. } = &frame {
            if self.would_overflow(src, packet) {
                let bytes = packet.payload.len();
                self.stats.frames_dropped += 1;
                self.stats.bytes_dropped += bytes as u64;
                // Record the rejection against the pushed buffer statistics
                // (the reservation is known to fail).
                let _ = self.pushed_buffer.try_reserve(bytes);
                self.push_action(Action::PacketDropped {
                    peer: src,
                    bytes,
                    reason: DropReason::PushedBufferOverflow,
                });
                return;
            }
        }
        let mut events = self.take_scratch();
        self.channel_mut(src).on_frame(frame, &mut events);
        self.emit_gbn_outputs(src, &mut events, InjectMode::Kernel);
        self.put_scratch(events);
    }

    /// Handles a raw protocol packet arriving from an intranode peer (or from
    /// a backend that provides its own reliable transport).
    pub fn handle_packet(&mut self, src: ProcessId, packet: Packet) {
        self.process_packet(src, packet);
    }

    // ------------------------------------------------------------------
    // Internals shared by the sender and receiver halves.
    // ------------------------------------------------------------------

    pub(crate) fn alloc_msg_id(&mut self) -> MessageId {
        let id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        id
    }

    pub(crate) fn push_completion(&mut self, completion: Completion) {
        let (slot, send_bit) = match completion.op {
            crate::ops::OpId::Send(op) => (op.slot(), OP_SEND_BIT),
            crate::ops::OpId::Recv(op) => (op.slot(), 0),
        };
        telemetry::event(
            EventKind::OpCompleted,
            slot | send_bit,
            (completion.status != crate::ops::Status::Ok) as u32,
            completion.len as u64,
        );
        if self.completions.len() == self.completions.capacity() {
            self.alloc_events += 1;
        }
        self.completions.push_back(completion);
    }

    /// Interns `peer`, returning its dense index (assigned on first
    /// contact and stable for the endpoint's lifetime).
    fn peer_slot(&mut self, peer: ProcessId) -> u32 {
        if let Some(slot) = self.peer_index.get(peer.as_u64()) {
            return slot;
        }
        let slot = self.peers.len() as u32;
        if self.peers.len() == self.peers.capacity() {
            self.alloc_events += 1;
        }
        self.peers.push(PeerState {
            id: peer,
            channel: None,
            incoming: Vec::new(),
        });
        self.peer_index.insert(peer.as_u64(), slot);
        slot
    }

    pub(crate) fn channel_mut(&mut self, peer: ProcessId) -> &mut ArqChannel {
        let cfg = self.config.gbn;
        let mode = self.config.reliability;
        let sabotage = self.sabotage_skip_rearm;
        let slot = self.peer_slot(peer);
        self.peers[slot as usize].channel.get_or_insert_with(|| {
            let mut channel = ArqChannel::new(mode, cfg);
            if sabotage {
                channel.sabotage_skip_rearm();
            }
            channel
        })
    }

    /// Finds the slot of the in-flight incoming message `(src, msg_id)`, if
    /// any.  Scans the source peer's (short) active list — no tuple hashing.
    pub(crate) fn incoming_slot(&self, src: ProcessId, msg_id: MessageId) -> Option<u32> {
        let peer = self.peer_index.get(src.as_u64())?;
        self.peers[peer as usize]
            .incoming
            .iter()
            .copied()
            .find(|&slot| {
                self.incoming
                    .get(slot)
                    .map(|m| m.msg_id == msg_id)
                    .unwrap_or(false)
            })
    }

    /// Registers a new incoming message, returning its slot.
    pub(crate) fn incoming_insert(&mut self, src: ProcessId, msg: IncomingMsg) -> u32 {
        let peer = self.peer_slot(src);
        let slot = self.incoming.insert(msg);
        let list = &mut self.peers[peer as usize].incoming;
        if list.len() == list.capacity() {
            self.alloc_events += 1;
        }
        list.push(slot);
        slot
    }

    /// Removes an incoming message by slot, unlinking it from its peer's
    /// active list.
    pub(crate) fn incoming_remove(&mut self, src: ProcessId, slot: u32) -> Option<IncomingMsg> {
        let msg = self.incoming.remove(slot)?;
        if let Some(peer) = self.peer_index.get(src.as_u64()) {
            let list = &mut self.peers[peer as usize].incoming;
            if let Some(pos) = list.iter().position(|&s| s == slot) {
                list.swap_remove(pos);
            }
        }
        Some(msg)
    }

    /// Takes the message bytes out of a completed incoming message,
    /// recycling its assembly buffer into the pool.  Caller-buffered bodies
    /// are extracted whole at completion and never reach this path.
    pub(crate) fn take_body(&mut self, msg: &mut IncomingMsg) -> Bytes {
        match std::mem::replace(&mut msg.body, MsgBody::Empty) {
            MsgBody::Direct(bytes) => bytes,
            MsgBody::Assembling(mut assembly) => {
                let bytes = assembly.take_bytes();
                self.release_assembly(assembly);
                bytes
            }
            MsgBody::Caller(_) => unreachable!("caller buffer extracted at completion"),
            MsgBody::Empty => Bytes::new(),
        }
    }

    /// Takes an assembly buffer from the pool (or allocates one on a miss).
    pub(crate) fn acquire_assembly(&mut self, total_len: usize) -> Assembly {
        match self.assembly_pool.pop() {
            Some(mut assembly) => {
                if assembly.reset(total_len) {
                    self.alloc_events += 1;
                }
                assembly
            }
            None => {
                self.alloc_events += 1;
                Assembly::new(total_len)
            }
        }
    }

    fn release_assembly(&mut self, assembly: Assembly) {
        if self.assembly_pool.len() < SCRATCH_POOL_CAP {
            if self.assembly_pool.len() == self.assembly_pool.capacity() {
                self.alloc_events += 1;
            }
            self.assembly_pool.push(assembly);
        }
    }

    fn take_scratch(&mut self) -> Vec<GbnEvent> {
        // A `Vec::new()` miss costs nothing now; its first growth is the
        // allocation, after which the vector lives in the pool.
        self.gbn_scratch.pop().unwrap_or_default()
    }

    fn put_scratch(&mut self, mut events: Vec<GbnEvent>) {
        debug_assert!(events.is_empty(), "scratch returned with pending events");
        events.clear();
        if self.gbn_scratch.len() < SCRATCH_POOL_CAP {
            if self.gbn_scratch.len() == self.gbn_scratch.capacity() {
                self.alloc_events += 1;
            }
            self.gbn_scratch.push(events);
        }
    }

    /// Sends a protocol packet towards `dst`, choosing the intranode or
    /// internode path and wrapping in go-back-N frames as needed.
    pub(crate) fn submit_packet(&mut self, dst: ProcessId, packet: Packet, inject: InjectMode) {
        if self.id.same_node(&dst) && self.config.reliable_intranode {
            self.push_action(Action::Transmit {
                dst,
                packet,
                inject,
            });
        } else {
            let mut events = self.take_scratch();
            self.channel_mut(dst).send(packet, &mut events);
            self.emit_gbn_outputs(dst, &mut events, inject);
            self.put_scratch(events);
        }
    }

    fn emit_gbn_outputs(
        &mut self,
        peer: ProcessId,
        events: &mut Vec<GbnEvent>,
        inject: InjectMode,
    ) {
        for event in events.drain(..) {
            match event {
                GbnEvent::Transmit(frame) => {
                    let (seq_arg, kind_arg) = frame_trace_args(&frame);
                    telemetry::event(EventKind::FrameTx, seq_arg, kind_arg, peer.as_u64());
                    self.push_action(Action::TransmitFrame {
                        dst: peer,
                        frame,
                        inject,
                    })
                }
                GbnEvent::Deliver(packet) => self.process_packet(peer, packet),
                GbnEvent::SetTimer {
                    generation,
                    delay_us,
                } => {
                    telemetry::event(
                        EventKind::TimerArm,
                        generation as u32,
                        delay_us as u32,
                        peer.as_u64(),
                    );
                    self.push_action(Action::SetTimer {
                        timer: TimerId { peer, generation },
                        delay_us,
                    })
                }
                GbnEvent::CancelTimer { generation } => self.push_action(Action::CancelTimer {
                    timer: TimerId { peer, generation },
                }),
                GbnEvent::ChannelFailed => {
                    telemetry::event(
                        EventKind::ChannelFail,
                        self.config.gbn.max_retries,
                        0,
                        peer.as_u64(),
                    );
                    self.push_action(Action::ChannelFailed { peer });
                    self.fail_peer(peer);
                }
            }
        }
    }

    /// Retires every operation pending against `peer` with
    /// [`Error::ChannelFailed`](crate::Error::ChannelFailed): registered
    /// sends awaiting a pull, partially received incoming messages, and
    /// exact-source posted receives naming the peer.  Wildcard receives stay
    /// posted — another peer can still satisfy them.
    ///
    /// Called when the go-back-N channel to `peer` exhausts its retries, so
    /// a dead peer produces clean error completions instead of operations
    /// that silently never finish.
    fn fail_peer(&mut self, peer: ProcessId) {
        use crate::ops::{OpId, Status};
        let error = crate::error::Error::ChannelFailed { peer };

        // Registered sends whose remainder the dead peer will never pull.
        let doomed_sends: Vec<MessageId> = self
            .send_queue
            .iter()
            .filter(|p| p.dst == peer)
            .map(|p| p.msg_id)
            .collect();
        for msg_id in doomed_sends {
            let pending = self
                .send_queue
                .remove(msg_id)
                .expect("doomed send vanished mid-failure");
            self.send_ops
                .remove(pending.op.slot(), pending.op.generation())
                .expect("pending send without live operation record");
            self.push_completion(Completion {
                op: OpId::Send(pending.op),
                peer,
                tag: pending.tag,
                len: 0,
                status: Status::Error(error.clone()),
                data: None,
                buf: None,
            });
        }

        // Partially received incoming messages from the peer: matched ones
        // fail their receive (handing back any caller buffer); unmatched
        // ones are discarded along with their buffer-queue entry and pushed
        // buffer reservation.
        let doomed_incoming: Vec<u32> = self
            .peer_index
            .get(peer.as_u64())
            .map(|slot| self.peers[slot as usize].incoming.clone())
            .unwrap_or_default();
        for slot in doomed_incoming {
            let Some(mut incoming) = self.incoming_remove(peer, slot) else {
                continue;
            };
            if incoming.pushed_buffer_footprint > 0 {
                self.pushed_buffer.release(incoming.pushed_buffer_footprint);
            }
            self.buffer_queue.remove_with_tag(
                crate::queues::UnexpectedKey {
                    src: peer,
                    msg_id: incoming.msg_id,
                },
                incoming.tag,
            );
            let Some(op) = incoming.matched else {
                continue;
            };
            self.recv_ops
                .remove(op.slot(), op.generation())
                .expect("matched receive without operation record");
            let buf = match std::mem::replace(&mut incoming.body, MsgBody::Empty) {
                MsgBody::Caller(caller_buf) => Some(caller_buf),
                MsgBody::Assembling(assembly) => {
                    self.release_assembly(assembly);
                    None
                }
                _ => None,
            };
            self.stats.recvs_failed += 1;
            self.push_completion(Completion {
                op: OpId::Recv(op),
                peer,
                tag: incoming.tag,
                len: 0,
                status: Status::Error(error.clone()),
                data: None,
                buf,
            });
        }

        // Posted receives naming the dead peer exactly can never match now.
        let doomed_recvs: Vec<crate::ops::RecvOp> = self
            .recv_queue
            .iter()
            .filter(|posted| posted.src == peer)
            .map(|posted| posted.op)
            .collect();
        for op in doomed_recvs {
            let posted = self
                .recv_queue
                .cancel(op)
                .expect("doomed receive vanished mid-failure");
            let rec = self
                .recv_ops
                .remove(op.slot(), op.generation())
                .expect("queued receive without operation record");
            self.stats.recvs_failed += 1;
            self.push_completion(Completion {
                op: OpId::Recv(op),
                peer,
                tag: posted.tag,
                len: 0,
                status: Status::Error(error.clone()),
                data: None,
                buf: rec.buf,
            });
        }
    }

    /// Visits every internode ARQ channel with its peer id — the hook
    /// harnesses use to distinguish a cleanly failed channel from a wedged
    /// one (unacknowledged frames, no timer pending, not failed), in either
    /// reliability mode.
    pub fn each_channel(&self, mut f: impl FnMut(ProcessId, &ArqChannel)) {
        for peer in &self.peers {
            if let Some(channel) = &peer.channel {
                f(peer.id, channel);
            }
        }
    }

    /// Applies the chaos harness's injected retransmission bug
    /// ([`GoBackN::sabotage_skip_rearm`](crate::reliability::GoBackN::sabotage_skip_rearm))
    /// to every current and future channel of this endpoint.  Never call
    /// outside tests.
    #[doc(hidden)]
    pub fn sabotage_skip_rearm(&mut self) {
        self.sabotage_skip_rearm = true;
        for peer in &mut self.peers {
            if let Some(channel) = peer.channel.as_mut() {
                channel.sabotage_skip_rearm();
            }
        }
    }

    /// `true` if accepting `packet` right now would require pushed-buffer
    /// space that is not available.
    fn would_overflow(&self, src: ProcessId, packet: &Packet) -> bool {
        use crate::wire::PacketKind;
        if packet.payload.is_empty() {
            return false;
        }
        match packet.header.kind {
            PacketKind::Push(_) | PacketKind::Control => {}
            // Pull data only flows after the receive was posted, so it is
            // always copied directly to the destination buffer.
            PacketKind::PullData | PacketKind::PullRequest => return false,
        }
        if let Some(slot) = self.incoming_slot(src, packet.header.msg_id) {
            if self
                .incoming
                .get(slot)
                .map(|m| m.matched.is_some())
                .unwrap_or(false)
            {
                return false;
            }
        } else if self.recv_queue.peek_match(src, packet.header.tag).is_some() {
            return false;
        }
        // The kernel stores the whole packet (header included) in the pushed
        // buffer, so the footprint is payload plus header.  A selective-
        // repeat receiver may also be holding out-of-order frames that were
        // admitted earlier but will only claim their pushed-buffer space when
        // the hole fills; count them now so that deferred drain can never
        // oversubscribe the buffer.
        let ring_bytes = self
            .peer_index
            .get(src.as_u64())
            .and_then(|slot| self.peers[slot as usize].channel.as_ref())
            .map(|c| c.buffered_bytes())
            .unwrap_or(0);
        packet.payload.len() + crate::wire::MAX_HEADER_LEN + ring_bytes > self.pushed_buffer.free()
    }

    pub(crate) fn push_action(&mut self, action: Action) {
        match &action {
            Action::PacketDropped { .. } => self.stats.packets_dropped += 1,
            Action::ChannelFailed { .. } => self.stats.channels_failed += 1,
            _ => {}
        }
        if self.actions.len() == self.actions.capacity() {
            self.alloc_events += 1;
        }
        self.actions.push_back(action);
    }
}
