//! Sender-side half of the protocol engine: posting sends (the push phase)
//! and serving pull requests.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use super::{Action, Endpoint, InjectMode, TranslateCtx};
use crate::btp::BtpSplit;
use crate::error::{Error, Result};
use crate::ops::{Completion, OpId, SendOp, Status};
use crate::queues::{chunk_segments, PendingSend, SendPayload};
use crate::types::{MessageId, ProcessId, Tag};
use crate::wire::{Packet, PacketHeader, PacketKind, PushPart};
use bytes::Bytes;

impl Endpoint {
    /// Posts a send of `data` to `dst` with user tag `tag`.
    ///
    /// This is the push phase of Fig. 1: the first `BTP(1)` bytes (plus the
    /// `BTP(2)` bytes overlapped with the acknowledgement, when enabled) are
    /// handed to the transport immediately and the remainder is registered in
    /// the send queue to be pulled by the receiver.
    ///
    /// Completion is reported through the completion queue
    /// ([`Endpoint::poll_completion`]) as a [`Completion`] carrying the
    /// returned [`SendOp`].
    pub fn post_send(&mut self, dst: ProcessId, tag: Tag, data: Bytes) -> Result<SendOp> {
        self.post_send_segments(dst, tag, std::slice::from_ref(&data), |_| {
            SendPayload::Single(data.clone())
        })
    }

    /// Posts a vectored send: `segments` are concatenated into **one**
    /// message on the receive side, but are never coalesced on the wire —
    /// every packet's payload is a zero-copy slice of exactly one segment
    /// ([`SendPayload::for_each_chunk`]), so a scatter list of header and
    /// body buffers is pushed and pulled without a staging copy.  Empty
    /// segments are allowed and skipped; an empty list behaves like an empty
    /// [`Endpoint::post_send`].
    ///
    /// The push phase is emitted **directly from the borrowed segment
    /// list**: a fully-eager vectored send (everything fits the BTP push,
    /// the latency-critical small-scatter case) never materialises an owned
    /// payload and therefore never allocates, whatever the segment count.
    /// Only a send that registers a pull remainder pins the list, in one
    /// shared `Arc<[Bytes]>` allocation amortised against the multi-packet
    /// pull transfer it serves; serving the pull later clones only
    /// refcounts, like the single-buffer path.
    pub fn post_send_vectored(
        &mut self,
        dst: ProcessId,
        tag: Tag,
        segments: &[Bytes],
    ) -> Result<SendOp> {
        self.post_send_segments(dst, tag, segments, |segments| {
            SendPayload::Vectored(std::sync::Arc::from(segments))
        })
    }

    /// Shared posting body: pushes the eager part straight off the borrowed
    /// `segments`, and calls `pin` to build the owned [`SendPayload`] only
    /// when a pull remainder must outlive this call.
    fn post_send_segments(
        &mut self,
        dst: ProcessId,
        tag: Tag,
        segments: &[Bytes],
        pin: impl FnOnce(&[Bytes]) -> SendPayload,
    ) -> Result<SendOp> {
        if dst == self.id() {
            return Err(Error::SelfSend { process: dst });
        }
        let msg_id = self.alloc_msg_id();
        let (op_slot, op_generation) = self.send_ops.insert(msg_id);
        let op = SendOp::from_raw(op_slot, op_generation);
        let policy = self.btp_for(dst);
        let opts = self.config().opts;
        let mode = self.config().mode;
        let total_len = segments.iter().map(Bytes::len).sum();
        let split = BtpSplit::plan(mode, policy, opts, total_len);
        self.stats.sends_posted += 1;
        crate::telemetry::event(
            crate::telemetry::EventKind::OpPosted,
            op_slot | crate::telemetry::OP_SEND_BIT,
            tag.0,
            total_len as u64,
        );

        // §4.3 Address Translation Overhead Masking decides *when* the source
        // buffer's zero buffer is built relative to the first transmission.
        // Without masking the translation is on the critical path: it must
        // complete before the kernel transmission thread can read the user
        // buffer.  With masking the pushed bytes are injected from user space
        // (direct thread invocation) and the translation of the remainder is
        // scheduled after the transmissions have been initiated.
        let masking = opts.translation_masking;
        let zero_buffer = opts.zero_buffer;
        let inject = if masking {
            InjectMode::UserSpaceDirect
        } else {
            InjectMode::Kernel
        };

        // The source buffer's zero buffer is only needed when a remainder
        // will be pulled out of it by the kernel; eagerly pushed bytes are
        // copied to the NIC (or the peer's kernel queue) at injection time
        // and need no translation of their own.
        if zero_buffer && !masking && split.needs_pull() {
            self.emit_translate(TranslateCtx::SendSource, dst, msg_id, total_len);
        }

        // First push (may be zero-length for Push-Zero: it still announces
        // the message so the receiver can start the pull phase).  Pushes
        // larger than the maximum payload are fragmented; each fragment is an
        // independently deliverable push packet with its own offset.
        self.emit_push_packets(
            dst,
            tag,
            msg_id,
            total_len,
            split,
            PushPart::First,
            segments,
            inject,
        );

        // Second push, overlapped with the acknowledgement (§4.4).
        if split.second_push > 0 {
            self.emit_push_packets(
                dst,
                tag,
                msg_id,
                total_len,
                split,
                PushPart::Second,
                segments,
                inject,
            );
        }

        if zero_buffer && masking && split.needs_pull() {
            // Translation of the (remaining) message is now off the critical
            // path: the pushes are already in flight.
            self.emit_translate(TranslateCtx::SendSource, dst, msg_id, total_len);
        }

        if split.needs_pull() {
            // Register the send so the pull request can be served later
            // (arrow 1b.1 in Fig. 1) — the only case that needs an owned,
            // pinned payload.
            self.send_queue.register(PendingSend {
                op,
                dst,
                tag,
                msg_id,
                payload: pin(segments),
                split,
                pull_served: false,
                fully_transmitted: false,
                translated: zero_buffer,
            });
        } else {
            // Everything was pushed eagerly; the send is locally complete.
            self.complete_send(op, dst, tag, total_len);
        }
        Ok(op)
    }

    /// Cancels a posted send whose remainder has not been pulled yet.
    ///
    /// Returns `true` if the operation was cancelled: the send is removed
    /// from the send queue, its pinned [`Bytes`] payload is released, and a
    /// [`Status::Cancelled`] completion is queued — the operation can never
    /// complete afterwards.  Returns `false` for stale handles, sends that
    /// completed eagerly (everything pushed, nothing left to cancel), and
    /// sends whose pull request has already been served.
    ///
    /// The receiver is **not** notified: if it had already matched the
    /// message and issued its pull request, that receive keeps waiting for
    /// pulled data that will never arrive (the stale request is answered
    /// with a drop action).  A protocol-level NACK that fails the remote
    /// receive is future work; until then, cancel sends only when the peer
    /// is known not to have posted the matching receive (the exact situation
    /// — a pull that never arrives — this exists to reclaim).
    pub fn cancel_send(&mut self, op: SendOp) -> bool {
        let Some(&mut msg_id) = self.send_ops.get_mut(op.slot(), op.generation()) else {
            return false;
        };
        let Some(pending) = self.send_queue.get(msg_id) else {
            // Live operation without a queue entry cannot happen today (an
            // eager send completes inside `post_send`); guard anyway.
            return false;
        };
        if pending.pull_served {
            return false;
        }
        let pending = self
            .send_queue
            .remove(msg_id)
            .expect("pending send vanished during cancel");
        self.send_ops
            .remove(op.slot(), op.generation())
            .expect("cancelling send without live operation record");
        self.stats.sends_cancelled += 1;
        self.push_completion(Completion {
            op: OpId::Send(op),
            peer: pending.dst,
            tag: pending.tag,
            len: 0,
            status: Status::Cancelled,
            data: None,
            buf: None,
        });
        // `pending.payload` — the pinned payload — is dropped here,
        // reclaiming the caller's bytes.
        true
    }

    /// Retires a send operation and queues its completion.
    fn complete_send(&mut self, op: SendOp, peer: ProcessId, tag: Tag, bytes: usize) {
        self.send_ops
            .remove(op.slot(), op.generation())
            .expect("completing send without live operation record");
        self.stats.sends_completed += 1;
        self.push_completion(Completion {
            op: OpId::Send(op),
            peer,
            tag,
            len: bytes,
            status: Status::Ok,
            data: None,
            buf: None,
        });
    }

    /// Builds and submits the push packets of one part directly — no
    /// intermediate `Vec<Packet>` and no owned payload, keeping `post_send`
    /// and the fully-eager vectored path allocation-free.  Chunking is
    /// delegated to [`chunk_segments`]: a vectored payload's packets split
    /// at segment boundaries instead of coalescing.
    #[allow(clippy::too_many_arguments)] // mirrors the packet header fields
    fn emit_push_packets(
        &mut self,
        dst: ProcessId,
        tag: Tag,
        msg_id: MessageId,
        total_len: usize,
        split: BtpSplit,
        part: PushPart,
        segments: &[Bytes],
        inject: InjectMode,
    ) {
        let (start, len) = match part {
            PushPart::First => (0, split.first_push),
            PushPart::Second => (split.second_push_offset(), split.second_push),
        };
        let eager_len = (split.first_push + split.second_push) as u32;
        let max_payload = self.config().max_payload;
        chunk_segments(
            segments,
            start,
            start + len,
            max_payload,
            |offset, chunk| {
                let header = PacketHeader {
                    kind: PacketKind::Push(part),
                    src: self.id(),
                    dst,
                    msg_id,
                    tag,
                    total_len: total_len as u32,
                    eager_len,
                    offset: offset as u32,
                    payload_len: chunk.len() as u32,
                };
                let packet =
                    Packet::new(header, chunk).expect("push packet construction cannot fail");
                self.stats.bytes_pushed += packet.payload.len() as u64;
                self.submit_packet(dst, packet, inject);
            },
        );
    }

    fn emit_translate(
        &mut self,
        ctx: TranslateCtx,
        peer: ProcessId,
        msg_id: MessageId,
        bytes: usize,
    ) {
        self.stats.translations += 1;
        self.stats.bytes_translated += bytes as u64;
        self.push_action(Action::Translate {
            ctx,
            peer,
            msg_id,
            bytes,
        });
    }

    /// Serves a pull request arriving from `src` (the receiver of one of our
    /// registered sends): transmits the pulled remainder, fragmented to the
    /// configured maximum payload size, and completes the send.
    pub(crate) fn serve_pull_request(&mut self, src: ProcessId, packet: &Packet) {
        let msg_id = packet.header.msg_id;
        let Some(pending) = self.send_queue.get_mut(msg_id) else {
            // Duplicate or stale request: the send already completed.
            self.push_action(Action::PacketDropped {
                peer: src,
                bytes: 0,
                reason: super::DropReason::UnknownMessage,
            });
            return;
        };
        if pending.pull_served {
            return;
        }
        pending.pull_served = true;
        let payload = pending.payload.clone();
        let split = pending.split;
        let op = pending.op;
        let tag = pending.tag;
        let dst = pending.dst;
        debug_assert_eq!(
            dst, src,
            "pull request must come from the send's destination"
        );

        let total_len = payload.len();
        let eager_len = split.first_push + split.second_push;
        let max_payload = self.config().max_payload;
        self.stats.pull_requests_served += 1;

        // Transmit the remainder (arrow 1b.2 in Fig. 1).  The reception
        // handler at the receive party copies each packet straight into the
        // destination buffer using the registered zero buffer (arrow 2a).
        // The pull phase never has a zero-length range (`needs_pull` held),
        // so the announce-chunk special case of `for_each_chunk` cannot
        // trigger here.
        payload.for_each_chunk(
            split.pulled_offset(),
            total_len,
            max_payload,
            |offset, chunk| {
                let header = PacketHeader {
                    kind: PacketKind::PullData,
                    src: self.id(),
                    dst,
                    msg_id,
                    tag,
                    total_len: total_len as u32,
                    eager_len: eager_len as u32,
                    offset: offset as u32,
                    payload_len: chunk.len() as u32,
                };
                let packet =
                    Packet::new(header, chunk).expect("pull data packet construction cannot fail");
                self.stats.bytes_pulled += packet.payload.len() as u64;
                // The pull phase is served by the kernel-side reception handler;
                // the data leaves through the kernel transmission path.
                self.submit_packet(dst, packet, InjectMode::Kernel);
            },
        );

        // The message is now fully handed to the transport.
        if let Some(pending) = self.send_queue.get_mut(msg_id) {
            pending.fully_transmitted = true;
        }
        self.send_queue.remove(msg_id);
        self.complete_send(op, dst, tag, total_len);
    }
}
