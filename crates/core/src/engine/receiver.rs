//! Receiver-side half of the protocol engine: posting receives (engine- or
//! caller-buffered), handling arriving pushes and pulled data, issuing pull
//! requests, cancellation, and completion delivery.

// ppmsg-lint: deny(hot_path_alloc) — steady-state engine path; pooled buffers only.

use super::{
    Action, CopyKind, DropReason, Endpoint, IncomingMsg, InjectMode, MsgBody, RecvRec, TranslateCtx,
};
use crate::error::{Error, Result};
use crate::ops::{Completion, OpId, RecvBuf, RecvOp, Status, TruncationPolicy};
use crate::queues::{PostedReceive, UnexpectedKey};
use crate::types::{MessageId, ProcessId, Tag};
use crate::wire::{Packet, PacketHeader, PacketKind};
use bytes::Bytes;

impl Endpoint {
    /// Posts a receive for a message from `src` with tag `tag` into an
    /// engine-managed buffer of `capacity` bytes, with the default
    /// [`TruncationPolicy::Error`].
    ///
    /// `src` may be [`ANY_SOURCE`](crate::types::ANY_SOURCE) and `tag` may
    /// be [`ANY_TAG`](crate::types::ANY_TAG); wildcard receives match in the
    /// same global posting order an MPI implementation's linear scan would
    /// use.
    ///
    /// If the matching message (or part of it) has already arrived and is
    /// sitting in the pushed buffer, it is drained into the destination
    /// buffer immediately (the two-copy path); otherwise the receive is
    /// registered in the receive queue so arriving data can be copied
    /// straight to its destination (the one-copy path).  Either way, if the
    /// sender is withholding a remainder, the pull request is issued as soon
    /// as the message is known.
    ///
    /// Completion is reported through the completion queue
    /// ([`Endpoint::poll_completion`]) as a [`Completion`] carrying the
    /// returned [`RecvOp`]; the message bytes arrive in the completion's
    /// `data` field.
    pub fn post_recv(&mut self, src: ProcessId, tag: Tag, capacity: usize) -> Result<RecvOp> {
        self.post_recv_opts(src, tag, capacity, TruncationPolicy::Error, None)
    }

    /// [`Endpoint::post_recv`] with an explicit [`TruncationPolicy`].
    pub fn post_recv_with(
        &mut self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        self.post_recv_opts(src, tag, capacity, policy, None)
    }

    /// Posts a receive that reassembles the message **directly into the
    /// caller-owned buffer** `buf` — no engine-side assembly buffer and no
    /// owned-`Bytes` handoff, so even the multi-fragment pull path performs
    /// zero heap allocations in steady state.
    ///
    /// The buffer travels with the operation and is handed back in the
    /// [`Completion`]'s `buf` field (also on cancellation and failure), so
    /// one buffer can be recycled across receives indefinitely.
    pub fn post_recv_into(
        &mut self,
        src: ProcessId,
        tag: Tag,
        mut buf: RecvBuf,
        policy: TruncationPolicy,
    ) -> Result<RecvOp> {
        let capacity = buf.capacity();
        // Clear any previous message view immediately: a recycled buffer
        // handed back unused (cancellation, failure) must read as empty,
        // not as the bytes of the message it carried last time.
        buf.begin(0);
        self.post_recv_opts(src, tag, capacity, policy, Some(buf))
    }

    fn post_recv_opts(
        &mut self,
        src: ProcessId,
        tag: Tag,
        capacity: usize,
        policy: TruncationPolicy,
        buf: Option<RecvBuf>,
    ) -> Result<RecvOp> {
        if src == self.id() {
            return Err(Error::SelfSend { process: src });
        }
        let (op_slot, op_generation) = self.recv_ops.insert(RecvRec {
            buf,
            capacity,
            policy,
        });
        let op = RecvOp::from_raw(op_slot, op_generation);
        self.stats.recvs_posted += 1;
        crate::telemetry::event(
            crate::telemetry::EventKind::OpPosted,
            op_slot,
            tag.0,
            capacity as u64,
        );
        let opts = self.config().opts;

        // Without translation masking, the destination buffer's zero buffer
        // is built up front, on the critical path of the receive operation.
        let mut translated = false;
        if opts.zero_buffer && !opts.translation_masking && capacity > 0 {
            self.stats.translations += 1;
            self.stats.bytes_translated += capacity as u64;
            self.push_action(Action::Translate {
                ctx: TranslateCtx::RecvDestination,
                peer: src,
                msg_id: MessageId(u64::MAX), // not yet known
                bytes: capacity,
            });
            translated = true;
        }

        // Check the buffer queue for an unexpected message that already
        // arrived (arrow 2b.2 in Fig. 1: drain the pushed buffer).  Peeking
        // first keeps arrival order intact when the receive turns out to be
        // too small and the message must stay queued.
        if let Some((key, msg_tag)) = self.buffer_queue.peek_unexpected(src, tag) {
            let slot = self
                .incoming_slot(key.src, key.msg_id)
                .expect("buffer queue entry without incoming state");
            let total = self.incoming.get(slot).unwrap().total_len;
            if total > capacity && policy == TruncationPolicy::Error {
                // The receive fails; the message is unharmed and stays
                // queued for the next adequate receive (the seed dropped its
                // partial state here, poisoning the message forever).
                self.fail_recv(op, key.src, msg_tag, capacity, total);
                return Ok(op);
            }
            self.buffer_queue.remove_with_tag(key, msg_tag);
            self.attach_to_incoming(key.src, slot, op, translated, capacity);
            self.try_complete(key.src, key.msg_id);
            return Ok(op);
        }

        // No data yet: register the receive so the reception handler can copy
        // arriving data straight to the destination buffer.
        self.recv_queue.register(PostedReceive {
            op,
            src,
            tag,
            capacity,
            translated,
            policy,
        });
        Ok(op)
    }

    /// Cancels a posted receive that has not yet matched a message.
    ///
    /// Returns `true` if the operation was cancelled, in which case a
    /// [`Status::Cancelled`] completion (carrying back any caller-owned
    /// buffer) is queued and the operation can never complete afterwards.
    /// Returns `false` when the handle is stale or the operation has already
    /// matched an arriving message — a matched receive is owed data that is
    /// possibly already in flight and must run to completion.
    pub fn cancel(&mut self, op: RecvOp) -> bool {
        let Some(posted) = self.recv_queue.cancel(op) else {
            return false;
        };
        let rec = self
            .recv_ops
            .remove(op.slot(), op.generation())
            .expect("queued receive without operation record");
        self.stats.recvs_cancelled += 1;
        self.push_completion(Completion {
            op: OpId::Recv(op),
            peer: posted.src,
            tag: posted.tag,
            len: 0,
            status: Status::Cancelled,
            data: None,
            buf: rec.buf,
        });
        true
    }

    /// Retires a receive with [`Error::ReceiveTooSmall`], handing back any
    /// caller-owned buffer.
    fn fail_recv(&mut self, op: RecvOp, peer: ProcessId, tag: Tag, posted: usize, incoming: usize) {
        let rec = self
            .recv_ops
            .remove(op.slot(), op.generation())
            .expect("failing receive without operation record");
        self.stats.recvs_failed += 1;
        self.push_completion(Completion {
            op: OpId::Recv(op),
            peer,
            tag,
            len: 0,
            status: Status::Error(Error::ReceiveTooSmall { posted, incoming }),
            data: None,
            buf: rec.buf,
        });
    }

    /// Binds a receive operation to the incoming message in `slot`: records
    /// the match, moves a caller-owned buffer into the message body (copying
    /// any already staged bytes into it), releases the message's pushed
    /// buffer reservation (the two-copy drain), and issues the pull request
    /// / deferred translation as needed.
    ///
    /// The caller is responsible for invoking [`Endpoint::try_complete`]
    /// afterwards (directly or at the end of packet processing).
    fn attach_to_incoming(
        &mut self,
        src: ProcessId,
        slot: u32,
        op: RecvOp,
        translated_at_post: bool,
        capacity: usize,
    ) {
        let (msg_id, total) = {
            let incoming = self.incoming.get_mut(slot).expect("attaching to live slot");
            incoming.matched = Some(op);
            (incoming.msg_id, incoming.total_len)
        };
        crate::telemetry::event(
            crate::telemetry::EventKind::OpMatched,
            op.slot(),
            0,
            total as u64,
        );

        // Caller-buffered receive: reassemble into the application's storage
        // from here on, first draining whatever was staged so far.
        let buf = self
            .recv_ops
            .get_mut(op.slot(), op.generation())
            .expect("matching receive without operation record")
            .buf
            .take();
        if let Some(mut buf) = buf {
            buf.begin(total);
            match std::mem::replace(
                &mut self.incoming.get_mut(slot).unwrap().body,
                MsgBody::Empty,
            ) {
                MsgBody::Empty => {}
                MsgBody::Direct(bytes) => {
                    buf.write_at(0, &bytes);
                }
                MsgBody::Assembling(assembly) => {
                    // Only genuinely received intervals may be marked
                    // covered in the caller buffer.
                    for &(start, end) in assembly.covered_intervals() {
                        buf.write_at(start, &assembly.as_slice()[start..end]);
                    }
                    self.release_assembly(assembly);
                }
                MsgBody::Caller(_) => unreachable!("message matched twice"),
            }
            self.incoming.get_mut(slot).unwrap().body = MsgBody::Caller(buf);
        }

        // Drain the pushed-buffer reservation: the second copy of the
        // two-copy path (pushed buffer → destination buffer).
        let (buffered, footprint) = {
            let incoming = self.incoming.get_mut(slot).unwrap();
            let pair = (
                incoming.pushed_buffer_bytes,
                incoming.pushed_buffer_footprint,
            );
            incoming.pushed_buffer_bytes = 0;
            incoming.pushed_buffer_footprint = 0;
            pair
        };
        if footprint > 0 {
            self.pushed_buffer.release(footprint);
            self.stats.bytes_copied_staged += buffered as u64;
            self.push_action(Action::Copy {
                kind: CopyKind::DrainPushedBuffer,
                peer: src,
                msg_id,
                bytes: buffered,
                least_loaded: false,
            });
            if !self.config().opts.zero_buffer {
                self.stats.bytes_copied_extra += buffered as u64;
                self.push_action(Action::Copy {
                    kind: CopyKind::StagingExtra,
                    peer: src,
                    msg_id,
                    bytes: buffered,
                    least_loaded: false,
                });
            }
        }

        // With masking the destination translation happens here, after the
        // (possible) pull request has been scheduled; without masking it
        // already happened at posting time.
        self.maybe_pull_and_translate(src, msg_id, translated_at_post, capacity);
    }

    /// Dispatches one protocol packet (already made reliable by the caller or
    /// by the go-back-N layer).
    pub(crate) fn process_packet(&mut self, src: ProcessId, packet: Packet) {
        match packet.header.kind {
            PacketKind::Push(_) | PacketKind::Control => self.handle_push(src, packet),
            PacketKind::PullData => self.handle_pull_data(src, packet),
            PacketKind::PullRequest => self.serve_pull_request(src, &packet),
        }
    }

    /// Records `payload` at `offset` in the message occupying `slot`.
    ///
    /// Caller-buffered messages write straight into the application's
    /// storage.  Otherwise, a payload covering the whole message in one
    /// packet is stored as a zero-copy [`MsgBody::Direct`] reference to the
    /// packet buffer; anything else goes through a pooled assembly buffer.
    fn record_payload(&mut self, slot: u32, offset: usize, payload: &Bytes) {
        if payload.is_empty() {
            return;
        }
        let total = self.incoming.get(slot).expect("live slot").total_len;
        let whole_message = offset == 0 && payload.len() == total;
        {
            let msg = self.incoming.get_mut(slot).unwrap();
            match &mut msg.body {
                MsgBody::Caller(buf) => {
                    buf.write_at(offset, payload);
                    return;
                }
                MsgBody::Empty if whole_message => {
                    msg.body = MsgBody::Direct(payload.clone());
                    return;
                }
                // Duplicate of an already complete single-packet message
                // (e.g. a go-back-N retransmission): idempotent.
                MsgBody::Direct(_) if whole_message => return,
                MsgBody::Assembling(assembly) => {
                    assembly.write_at(offset, payload);
                    return;
                }
                _ => {}
            }
        }
        // Transition Empty/Direct → Assembling through the pool.
        let mut assembly = self.acquire_assembly(total);
        let msg = self.incoming.get_mut(slot).unwrap();
        if let MsgBody::Direct(bytes) = &msg.body {
            assembly.write_at(0, bytes);
        }
        assembly.write_at(offset, payload);
        msg.body = MsgBody::Assembling(assembly);
    }

    fn handle_push(&mut self, src: ProcessId, packet: Packet) {
        let header = packet.header;
        let opts = self.config().opts;

        // Create (or look up) the reassembly state for this message.
        let slot = match self.incoming_slot(src, header.msg_id) {
            Some(slot) => slot,
            None => self.incoming_insert(
                src,
                IncomingMsg {
                    src,
                    msg_id: header.msg_id,
                    tag: header.tag,
                    total_len: header.total_len as usize,
                    eager_len: header.eager_len as usize,
                    body: MsgBody::Empty,
                    matched: None,
                    pull_requested: false,
                    pushed_buffer_bytes: 0,
                    pushed_buffer_footprint: 0,
                },
            ),
        };

        // Try to match a posted receive if this message is not matched yet.
        // A too-small receive under `TruncationPolicy::Error` is consumed
        // with an error completion and the message moves on to the next
        // posted receive — it is never dropped or poisoned.
        if self.incoming.get(slot).unwrap().matched.is_none() {
            let total = header.total_len as usize;
            while let Some(posted) = self.recv_queue.match_incoming(src, header.tag) {
                if total > posted.capacity && posted.policy == TruncationPolicy::Error {
                    self.fail_recv(posted.op, src, header.tag, posted.capacity, total);
                    continue;
                }
                self.attach_to_incoming(src, slot, posted.op, posted.translated, posted.capacity);
                break;
            }
        }

        let is_matched = self.incoming.get(slot).unwrap().matched.is_some();
        let bytes = packet.payload.len();

        if bytes > 0 {
            if is_matched {
                // One-copy path: reception handler copies straight into the
                // destination buffer using the registered zero buffer
                // (arrow 2a in Fig. 1).
                self.stats.bytes_copied_direct += bytes as u64;
                self.push_action(Action::Copy {
                    kind: CopyKind::PushDirect,
                    peer: src,
                    msg_id: header.msg_id,
                    bytes,
                    least_loaded: false,
                });
                if !opts.zero_buffer {
                    self.stats.bytes_copied_extra += bytes as u64;
                    self.push_action(Action::Copy {
                        kind: CopyKind::StagingExtra,
                        peer: src,
                        msg_id: header.msg_id,
                        bytes,
                        least_loaded: false,
                    });
                }
            } else {
                // Unexpected: stage in the pushed buffer (arrow 2b.1).  The
                // kernel stores the whole packet, header included.
                let footprint = bytes + crate::wire::MAX_HEADER_LEN;
                if !self.pushed_buffer.try_reserve(footprint) {
                    // No room: drop the fragment.  On internode channels the
                    // admission check in `handle_frame` normally prevents
                    // this; on intranode channels the data is simply lost and
                    // the caller is told.
                    self.stats.frames_dropped += 1;
                    self.stats.bytes_dropped += bytes as u64;
                    self.push_action(Action::PacketDropped {
                        peer: src,
                        bytes,
                        reason: DropReason::PushedBufferOverflow,
                    });
                    return;
                }
                let incoming = self.incoming.get_mut(slot).unwrap();
                incoming.pushed_buffer_bytes += bytes;
                incoming.pushed_buffer_footprint += footprint;
                self.stats.bytes_copied_staged += bytes as u64;
                self.push_action(Action::Copy {
                    kind: CopyKind::PushToPushedBuffer,
                    peer: src,
                    msg_id: header.msg_id,
                    bytes,
                    least_loaded: false,
                });
            }
        }

        // Record the payload (zero-copy for single-packet messages).
        self.record_payload(slot, header.offset as usize, &packet.payload);

        if !is_matched {
            // Remember the unexpected message so a later receive can find it.
            self.buffer_queue.insert(
                UnexpectedKey {
                    src,
                    msg_id: header.msg_id,
                },
                header.tag,
            );
            return;
        }

        // A pull may still be outstanding if the message was matched before
        // any push carrying `eager_len` arrived (`attach_to_incoming` already
        // issued it for the newly-matched case; this call is a no-op then).
        self.maybe_pull_and_translate(src, header.msg_id, true, 0);

        self.try_complete(src, header.msg_id);
    }

    fn handle_pull_data(&mut self, src: ProcessId, packet: Packet) {
        let header = packet.header;
        let opts = self.config().opts;
        let Some(slot) = self.incoming_slot(src, header.msg_id) else {
            self.push_action(Action::PacketDropped {
                peer: src,
                bytes: packet.payload.len(),
                reason: DropReason::UnknownMessage,
            });
            return;
        };
        let bytes = packet.payload.len();
        self.record_payload(slot, header.offset as usize, &packet.payload);
        let incoming = self.incoming.get(slot).unwrap();
        let msg_id = incoming.msg_id;
        let matched = incoming.matched.is_some();

        if bytes > 0 {
            if matched {
                // Pulled data goes straight to the destination buffer; §4.1
                // allows this copy to run on the least-loaded processor.
                self.stats.bytes_copied_direct += bytes as u64;
                let least_loaded = opts.parallel_pull;
                self.push_action(Action::Copy {
                    kind: CopyKind::PullDirect,
                    peer: src,
                    msg_id,
                    bytes,
                    least_loaded,
                });
                if !opts.zero_buffer {
                    self.stats.bytes_copied_extra += bytes as u64;
                    self.push_action(Action::Copy {
                        kind: CopyKind::StagingExtra,
                        peer: src,
                        msg_id,
                        bytes,
                        least_loaded: false,
                    });
                }
            } else {
                // A pull was requested, so a receive must have been matched;
                // this branch only happens for stray pull data (e.g. a
                // duplicate after completion recreated the state).
                let footprint = bytes + crate::wire::MAX_HEADER_LEN;
                if self.pushed_buffer.try_reserve(footprint) {
                    let incoming = self.incoming.get_mut(slot).unwrap();
                    incoming.pushed_buffer_bytes += bytes;
                    incoming.pushed_buffer_footprint += footprint;
                    self.stats.bytes_copied_staged += bytes as u64;
                    self.push_action(Action::Copy {
                        kind: CopyKind::PushToPushedBuffer,
                        peer: src,
                        msg_id,
                        bytes,
                        least_loaded: false,
                    });
                } else {
                    self.stats.frames_dropped += 1;
                    self.stats.bytes_dropped += bytes as u64;
                    self.push_action(Action::PacketDropped {
                        peer: src,
                        bytes,
                        reason: DropReason::PushedBufferOverflow,
                    });
                    return;
                }
            }
        }
        self.try_complete(src, header.msg_id);
    }

    /// Issues the pull request for the remainder of `msg_id` if one is needed
    /// and has not been sent yet, and (with translation masking) schedules
    /// the deferred destination-buffer translation right after it.
    fn maybe_pull_and_translate(
        &mut self,
        src: ProcessId,
        msg_id: MessageId,
        already_translated: bool,
        capacity: usize,
    ) {
        let opts = self.config().opts;
        let Some(slot) = self.incoming_slot(src, msg_id) else {
            return;
        };
        let incoming = self.incoming.get_mut(slot).unwrap();
        if incoming.matched.is_none() {
            return;
        }
        let total = incoming.total_len;
        let eager = incoming.eager_len;
        let tag = incoming.tag;
        let needs_pull = total > eager && !incoming.pull_requested;
        if needs_pull {
            incoming.pull_requested = true;
        }
        let translate_bytes = if !already_translated && opts.zero_buffer && opts.translation_masking
        {
            capacity.max(total)
        } else {
            0
        };

        if needs_pull {
            // The acknowledgement that doubles as the pull request
            // (arrows 3a/3b in Fig. 1).
            self.stats.pull_requests_sent += 1;
            let header = PacketHeader {
                kind: PacketKind::PullRequest,
                src: self.id(),
                dst: src,
                msg_id,
                tag,
                total_len: total as u32,
                eager_len: eager as u32,
                offset: eager as u32,
                payload_len: (total - eager) as u32,
            };
            let packet =
                Packet::new(header, Bytes::new()).expect("pull request construction cannot fail");
            self.submit_packet(src, packet, InjectMode::Kernel);
        }

        if translate_bytes > 0 {
            // §4.3: the destination translation is scheduled after the
            // network event (the pull request) so its cost is masked by the
            // wire latency of the pulled data.
            self.stats.translations += 1;
            self.stats.bytes_translated += translate_bytes as u64;
            self.push_action(Action::Translate {
                ctx: TranslateCtx::RecvDestination,
                peer: src,
                msg_id,
                bytes: translate_bytes,
            });
        }
    }

    /// Delivers the completed message for `msg_id` if every byte has arrived,
    /// retiring the receive operation and queueing its [`Completion`].
    pub(crate) fn try_complete(&mut self, src: ProcessId, msg_id: MessageId) {
        let Some(slot) = self.incoming_slot(src, msg_id) else {
            return;
        };
        {
            let incoming = self.incoming.get(slot).unwrap();
            if incoming.matched.is_none() || !incoming.is_complete() {
                return;
            }
        }
        let mut incoming = self.incoming_remove(src, slot).unwrap();
        let op = incoming.matched.unwrap();
        if incoming.pushed_buffer_footprint > 0 {
            // Data still accounted against the pushed buffer is released on
            // delivery (it was matched without an intervening drain action,
            // which only happens for messages completed entirely from the
            // pushed buffer).
            self.pushed_buffer.release(incoming.pushed_buffer_footprint);
        }
        self.buffer_queue
            .remove_with_tag(UnexpectedKey { src, msg_id }, incoming.tag);
        let rec = self
            .recv_ops
            .remove(op.slot(), op.generation())
            .expect("completed receive without operation record");
        let total = incoming.total_len;
        let truncated = total > rec.capacity;
        let (data, buf, len) = match std::mem::replace(&mut incoming.body, MsgBody::Empty) {
            MsgBody::Caller(caller_buf) => {
                let len = caller_buf.len();
                (None, Some(caller_buf), len)
            }
            body => {
                incoming.body = body;
                let bytes = self.take_body(&mut incoming);
                if truncated {
                    // Truncating delivery: hand over the prefix that fits.
                    (Some(bytes.slice(..rec.capacity)), None, rec.capacity)
                } else {
                    let len = bytes.len();
                    (Some(bytes), None, len)
                }
            }
        };
        self.stats.recvs_completed += 1;
        let status = if truncated {
            self.stats.recvs_truncated += 1;
            Status::Truncated { message_len: total }
        } else {
            Status::Ok
        };
        self.push_completion(Completion {
            op: OpId::Recv(op),
            peer: src,
            tag: incoming.tag,
            len,
            status,
            data,
            buf,
        });
    }
}
