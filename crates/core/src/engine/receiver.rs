//! Receiver-side half of the protocol engine: posting receives, handling
//! arriving pushes and pulled data, and issuing pull requests.

use super::{
    Action, CopyKind, DropReason, Endpoint, IncomingMsg, InjectMode, MsgBody, TranslateCtx,
};
use crate::error::{Error, Result};
use crate::queues::{PostedReceive, UnexpectedKey};
use crate::types::{MessageId, ProcessId, RecvHandle, Tag};
use crate::wire::{Packet, PacketHeader, PacketKind};
use bytes::Bytes;

impl Endpoint {
    /// Posts a receive for a message from `src` with tag `tag` into a buffer
    /// of `capacity` bytes.
    ///
    /// If the matching message (or part of it) has already arrived and is
    /// sitting in the pushed buffer, it is drained into the destination
    /// buffer immediately (the two-copy path); otherwise the receive is
    /// registered in the receive queue so arriving data can be copied
    /// straight to its destination (the one-copy path).  Either way, if the
    /// sender is withholding a remainder, the pull request is issued as soon
    /// as the message is known.
    ///
    /// Completion is reported through [`Action::RecvComplete`] carrying the
    /// returned handle.
    pub fn post_recv(&mut self, src: ProcessId, tag: Tag, capacity: usize) -> Result<RecvHandle> {
        if src == self.id() {
            return Err(Error::SelfSend { process: src });
        }
        let handle = RecvHandle(self.alloc_handle());
        self.stats.recvs_posted += 1;
        let opts = self.config().opts;

        // Without translation masking, the destination buffer's zero buffer
        // is built up front, on the critical path of the receive operation.
        let mut translated = false;
        if opts.zero_buffer && !opts.translation_masking && capacity > 0 {
            self.stats.translations += 1;
            self.stats.bytes_translated += capacity as u64;
            self.push_action(Action::Translate {
                ctx: TranslateCtx::RecvDestination,
                peer: src,
                msg_id: MessageId(u64::MAX), // not yet known
                bytes: capacity,
            });
            translated = true;
        }

        // Check the buffer queue for an unexpected message that already
        // arrived (arrow 2b.2 in Fig. 1: drain the pushed buffer).
        if let Some(key) = self.buffer_queue.match_posted(src, tag) {
            let slot = self
                .incoming_slot(key.src, key.msg_id)
                .expect("buffer queue entry without incoming state");
            let incoming = self.incoming.get_mut(slot).unwrap();
            if incoming.total_len > capacity {
                let err = Error::ReceiveTooSmall {
                    posted: capacity,
                    incoming: incoming.total_len,
                };
                // Leave the unexpected message queued so a correctly sized
                // receive posted later can still claim it.
                self.buffer_queue.insert(key, tag);
                self.push_action(Action::RecvFailed {
                    handle,
                    peer: src,
                    error: err.clone(),
                });
                return Err(err);
            }
            incoming.matched = Some(handle);
            let buffered = incoming.pushed_buffer_bytes;
            let footprint = incoming.pushed_buffer_footprint;
            let msg_id = incoming.msg_id;
            incoming.pushed_buffer_bytes = 0;
            incoming.pushed_buffer_footprint = 0;
            if footprint > 0 {
                // Second copy of the two-copy path: pushed buffer → user
                // destination buffer.
                self.pushed_buffer.release(footprint);
                self.stats.bytes_copied_staged += buffered as u64;
                self.push_action(Action::Copy {
                    kind: CopyKind::DrainPushedBuffer,
                    peer: src,
                    msg_id,
                    bytes: buffered,
                    least_loaded: false,
                });
                if !opts.zero_buffer {
                    self.stats.bytes_copied_extra += buffered as u64;
                    self.push_action(Action::Copy {
                        kind: CopyKind::StagingExtra,
                        peer: src,
                        msg_id,
                        bytes: buffered,
                        least_loaded: false,
                    });
                }
            }
            // With masking the destination translation happens here, after
            // the (possible) pull request below has been scheduled; without
            // masking it already happened above.
            self.maybe_pull_and_translate(src, msg_id, translated, capacity);
            self.try_complete(src, msg_id);
            return Ok(handle);
        }

        // No data yet: register the receive so the reception handler can copy
        // arriving data straight to the destination buffer.
        self.recv_queue.register(PostedReceive {
            handle,
            src,
            tag,
            capacity,
            translated,
        });
        Ok(handle)
    }

    /// Dispatches one protocol packet (already made reliable by the caller or
    /// by the go-back-N layer).
    pub(crate) fn process_packet(&mut self, src: ProcessId, packet: Packet) {
        match packet.header.kind {
            PacketKind::Push(_) | PacketKind::Control => self.handle_push(src, packet),
            PacketKind::PullData => self.handle_pull_data(src, packet),
            PacketKind::PullRequest => self.serve_pull_request(src, &packet),
        }
    }

    /// Records `payload` at `offset` in the message occupying `slot`.
    ///
    /// A payload covering the whole message in one packet is stored as a
    /// zero-copy [`MsgBody::Direct`] reference to the packet buffer; anything
    /// else goes through a pooled assembly buffer.
    fn record_payload(&mut self, slot: u32, offset: usize, payload: &Bytes) {
        if payload.is_empty() {
            return;
        }
        let total = self.incoming.get(slot).expect("live slot").total_len;
        let whole_message = offset == 0 && payload.len() == total;
        {
            let msg = self.incoming.get_mut(slot).unwrap();
            match &mut msg.body {
                MsgBody::Empty if whole_message => {
                    msg.body = MsgBody::Direct(payload.clone());
                    return;
                }
                // Duplicate of an already complete single-packet message
                // (e.g. a go-back-N retransmission): idempotent.
                MsgBody::Direct(_) if whole_message => return,
                MsgBody::Assembling(assembly) => {
                    assembly.write_at(offset, payload);
                    return;
                }
                _ => {}
            }
        }
        // Transition Empty/Direct → Assembling through the pool.
        let mut assembly = self.acquire_assembly(total);
        let msg = self.incoming.get_mut(slot).unwrap();
        if let MsgBody::Direct(bytes) = &msg.body {
            assembly.write_at(0, bytes);
        }
        assembly.write_at(offset, payload);
        msg.body = MsgBody::Assembling(assembly);
    }

    fn handle_push(&mut self, src: ProcessId, packet: Packet) {
        let header = packet.header;
        let opts = self.config().opts;

        // Create (or look up) the reassembly state for this message.
        let slot = match self.incoming_slot(src, header.msg_id) {
            Some(slot) => slot,
            None => self.incoming_insert(
                src,
                IncomingMsg {
                    src,
                    msg_id: header.msg_id,
                    tag: header.tag,
                    total_len: header.total_len as usize,
                    eager_len: header.eager_len as usize,
                    body: MsgBody::Empty,
                    matched: None,
                    pull_requested: false,
                    pushed_buffer_bytes: 0,
                    pushed_buffer_footprint: 0,
                },
            ),
        };

        // Try to match a posted receive if this message is not matched yet.
        let mut newly_matched = false;
        let mut matched_capacity = 0usize;
        let mut translated_at_post = false;
        if self.incoming.get(slot).unwrap().matched.is_none() {
            if let Some(posted) = self.recv_queue.match_incoming(src, header.tag) {
                if (header.total_len as usize) > posted.capacity {
                    let err = Error::ReceiveTooSmall {
                        posted: posted.capacity,
                        incoming: header.total_len as usize,
                    };
                    self.push_action(Action::RecvFailed {
                        handle: posted.handle,
                        peer: src,
                        error: err,
                    });
                    // Drop the message state; further fragments are discarded.
                    if let Some(msg) = self.incoming_remove(src, slot) {
                        self.discard_body(msg);
                    }
                    self.push_action(Action::PacketDropped {
                        peer: src,
                        bytes: packet.payload.len(),
                        reason: DropReason::Malformed,
                    });
                    return;
                }
                self.incoming.get_mut(slot).unwrap().matched = Some(posted.handle);
                newly_matched = true;
                matched_capacity = posted.capacity;
                translated_at_post = posted.translated;
            }
        }

        let is_matched = self.incoming.get(slot).unwrap().matched.is_some();
        let bytes = packet.payload.len();

        if bytes > 0 {
            if is_matched {
                // One-copy path: reception handler copies straight into the
                // destination buffer using the registered zero buffer
                // (arrow 2a in Fig. 1).
                self.stats.bytes_copied_direct += bytes as u64;
                self.push_action(Action::Copy {
                    kind: CopyKind::PushDirect,
                    peer: src,
                    msg_id: header.msg_id,
                    bytes,
                    least_loaded: false,
                });
                if !opts.zero_buffer {
                    self.stats.bytes_copied_extra += bytes as u64;
                    self.push_action(Action::Copy {
                        kind: CopyKind::StagingExtra,
                        peer: src,
                        msg_id: header.msg_id,
                        bytes,
                        least_loaded: false,
                    });
                }
            } else {
                // Unexpected: stage in the pushed buffer (arrow 2b.1).  The
                // kernel stores the whole packet, header included.
                let footprint = bytes + crate::wire::MAX_HEADER_LEN;
                if !self.pushed_buffer.try_reserve(footprint) {
                    // No room: drop the fragment.  On internode channels the
                    // admission check in `handle_frame` normally prevents
                    // this; on intranode channels the data is simply lost and
                    // the caller is told.
                    self.stats.frames_dropped += 1;
                    self.stats.bytes_dropped += bytes as u64;
                    self.push_action(Action::PacketDropped {
                        peer: src,
                        bytes,
                        reason: DropReason::PushedBufferOverflow,
                    });
                    return;
                }
                let incoming = self.incoming.get_mut(slot).unwrap();
                incoming.pushed_buffer_bytes += bytes;
                incoming.pushed_buffer_footprint += footprint;
                self.stats.bytes_copied_staged += bytes as u64;
                self.push_action(Action::Copy {
                    kind: CopyKind::PushToPushedBuffer,
                    peer: src,
                    msg_id: header.msg_id,
                    bytes,
                    least_loaded: false,
                });
            }
        }

        // Record the payload (zero-copy for single-packet messages).
        self.record_payload(slot, header.offset as usize, &packet.payload);

        if !is_matched {
            // Remember the unexpected message so a later receive can find it.
            self.buffer_queue.insert(
                UnexpectedKey {
                    src,
                    msg_id: header.msg_id,
                },
                header.tag,
            );
            return;
        }

        if newly_matched {
            // The receive was posted before the data arrived; now that the
            // message is known, issue the pull request (and, with masking,
            // the deferred destination translation).
            self.maybe_pull_and_translate(src, header.msg_id, translated_at_post, matched_capacity);
        } else {
            // Already matched earlier: a pull may still be outstanding if the
            // message was matched via the pushed buffer before any push
            // carrying `eager_len` arrived.
            self.maybe_pull_and_translate(src, header.msg_id, true, 0);
        }

        self.try_complete(src, header.msg_id);
    }

    fn handle_pull_data(&mut self, src: ProcessId, packet: Packet) {
        let header = packet.header;
        let opts = self.config().opts;
        let Some(slot) = self.incoming_slot(src, header.msg_id) else {
            self.push_action(Action::PacketDropped {
                peer: src,
                bytes: packet.payload.len(),
                reason: DropReason::UnknownMessage,
            });
            return;
        };
        let bytes = packet.payload.len();
        self.record_payload(slot, header.offset as usize, &packet.payload);
        let incoming = self.incoming.get(slot).unwrap();
        let msg_id = incoming.msg_id;
        let matched = incoming.matched.is_some();

        if bytes > 0 {
            if matched {
                // Pulled data goes straight to the destination buffer; §4.1
                // allows this copy to run on the least-loaded processor.
                self.stats.bytes_copied_direct += bytes as u64;
                let least_loaded = opts.parallel_pull;
                self.push_action(Action::Copy {
                    kind: CopyKind::PullDirect,
                    peer: src,
                    msg_id,
                    bytes,
                    least_loaded,
                });
                if !opts.zero_buffer {
                    self.stats.bytes_copied_extra += bytes as u64;
                    self.push_action(Action::Copy {
                        kind: CopyKind::StagingExtra,
                        peer: src,
                        msg_id,
                        bytes,
                        least_loaded: false,
                    });
                }
            } else {
                // A pull was requested, so a receive must have been posted;
                // this branch only happens if the receive was cancelled.
                let footprint = bytes + crate::wire::MAX_HEADER_LEN;
                if self.pushed_buffer.try_reserve(footprint) {
                    let incoming = self.incoming.get_mut(slot).unwrap();
                    incoming.pushed_buffer_bytes += bytes;
                    incoming.pushed_buffer_footprint += footprint;
                    self.stats.bytes_copied_staged += bytes as u64;
                    self.push_action(Action::Copy {
                        kind: CopyKind::PushToPushedBuffer,
                        peer: src,
                        msg_id,
                        bytes,
                        least_loaded: false,
                    });
                } else {
                    self.stats.frames_dropped += 1;
                    self.stats.bytes_dropped += bytes as u64;
                    self.push_action(Action::PacketDropped {
                        peer: src,
                        bytes,
                        reason: DropReason::PushedBufferOverflow,
                    });
                    return;
                }
            }
        }
        self.try_complete(src, header.msg_id);
    }

    /// Issues the pull request for the remainder of `msg_id` if one is needed
    /// and has not been sent yet, and (with translation masking) schedules
    /// the deferred destination-buffer translation right after it.
    fn maybe_pull_and_translate(
        &mut self,
        src: ProcessId,
        msg_id: MessageId,
        already_translated: bool,
        capacity: usize,
    ) {
        let opts = self.config().opts;
        let Some(slot) = self.incoming_slot(src, msg_id) else {
            return;
        };
        let incoming = self.incoming.get_mut(slot).unwrap();
        if incoming.matched.is_none() {
            return;
        }
        let total = incoming.total_len;
        let eager = incoming.eager_len;
        let tag = incoming.tag;
        let needs_pull = total > eager && !incoming.pull_requested;
        if needs_pull {
            incoming.pull_requested = true;
        }
        let translate_bytes = if !already_translated && opts.zero_buffer && opts.translation_masking
        {
            capacity.max(total)
        } else {
            0
        };

        if needs_pull {
            // The acknowledgement that doubles as the pull request
            // (arrows 3a/3b in Fig. 1).
            self.stats.pull_requests_sent += 1;
            let header = PacketHeader {
                kind: PacketKind::PullRequest,
                src: self.id(),
                dst: src,
                msg_id,
                tag,
                total_len: total as u32,
                eager_len: eager as u32,
                offset: eager as u32,
                payload_len: (total - eager) as u32,
            };
            let packet =
                Packet::new(header, Bytes::new()).expect("pull request construction cannot fail");
            self.submit_packet(src, packet, InjectMode::Kernel);
        }

        if translate_bytes > 0 {
            // §4.3: the destination translation is scheduled after the
            // network event (the pull request) so its cost is masked by the
            // wire latency of the pulled data.
            self.stats.translations += 1;
            self.stats.bytes_translated += translate_bytes as u64;
            self.push_action(Action::Translate {
                ctx: TranslateCtx::RecvDestination,
                peer: src,
                msg_id,
                bytes: translate_bytes,
            });
        }
    }

    /// Returns a dropped message's assembly buffer to the pool.
    fn discard_body(&mut self, mut msg: IncomingMsg) {
        let _ = self.take_body(&mut msg);
    }

    /// Delivers the completed message for `msg_id` if every byte has arrived.
    fn try_complete(&mut self, src: ProcessId, msg_id: MessageId) {
        let Some(slot) = self.incoming_slot(src, msg_id) else {
            return;
        };
        {
            let incoming = self.incoming.get(slot).unwrap();
            if incoming.matched.is_none() || !incoming.is_complete() {
                return;
            }
        }
        let mut incoming = self.incoming_remove(src, slot).unwrap();
        let handle = incoming.matched.unwrap();
        if incoming.pushed_buffer_footprint > 0 {
            // Data still accounted against the pushed buffer is released on
            // delivery (it was matched without an intervening drain action,
            // which only happens for messages completed entirely from the
            // pushed buffer).
            self.pushed_buffer.release(incoming.pushed_buffer_footprint);
        }
        self.buffer_queue
            .remove_with_tag(UnexpectedKey { src, msg_id }, incoming.tag);
        self.stats.recvs_completed += 1;
        let data = self.take_body(&mut incoming);
        self.push_action(Action::RecvComplete {
            handle,
            peer: src,
            data,
        });
    }
}
