//! Unit tests for the protocol engine, driven through an in-memory relay that
//! simply moves actions between two endpoints (no timing model).

use super::*;
use crate::config::{OptFlags, ProtocolConfig, ProtocolMode};
use crate::error::Error;
use crate::ops::{Completion, OpId, Status};
use crate::types::{ProcessId, Tag};
use crate::wire::PacketKind;
use bytes::Bytes;

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

/// Drains one endpoint's actions into its peer, collecting non-transport
/// actions into `out`.  Returns `true` if any action was processed.
fn pump(
    me: &mut Endpoint,
    other: &mut Endpoint,
    out: &mut Vec<Action>,
    timers: &mut Vec<(ProcessId, crate::types::TimerId)>,
) -> bool {
    let mut progressed = false;
    while let Some(action) = me.poll_action() {
        progressed = true;
        match action {
            Action::Transmit { dst, packet, .. } => {
                assert_eq!(dst, other.id());
                other.handle_packet(me.id(), packet);
            }
            Action::TransmitFrame { dst, frame, .. } => {
                assert_eq!(dst, other.id());
                other.handle_frame(me.id(), frame);
            }
            Action::SetTimer { timer, .. } => timers.push((me.id(), timer)),
            Action::CancelTimer { timer } => {
                timers.retain(|(owner, t)| !(*owner == me.id() && *t == timer));
            }
            other_action => out.push(other_action),
        }
    }
    progressed
}

/// Relays traffic between two endpoints until both are quiescent, returning
/// every non-transport action each produced (in order).
fn run_pair(a: &mut Endpoint, b: &mut Endpoint) -> (Vec<Action>, Vec<Action>) {
    let mut out_a = Vec::new();
    let mut out_b = Vec::new();
    let mut timers: Vec<(ProcessId, crate::types::TimerId)> = Vec::new();
    for _ in 0..10_000 {
        let mut progressed = false;
        progressed |= pump(a, b, &mut out_a, &mut timers);
        progressed |= pump(b, a, &mut out_b, &mut timers);
        if !progressed {
            // Fire any outstanding timers once; if nothing new happens, stop.
            if timers.is_empty() {
                break;
            }
            let (owner, timer) = timers.remove(0);
            if owner == a.id() {
                a.handle_timer(timer);
            } else {
                b.handle_timer(timer);
            }
        }
    }
    (out_a, out_b)
}

/// Drains an endpoint's completion queue.
fn completions(e: &mut Endpoint) -> Vec<Completion> {
    let mut out = Vec::new();
    e.drain_completions_into(&mut out);
    out
}

/// The payload of the first successful receive completion, if any.
fn recv_complete_data(e: &mut Endpoint) -> Option<Bytes> {
    completions(e)
        .into_iter()
        .find_map(|c| match (c.op, c.status) {
            (OpId::Recv(_), Status::Ok) => c.data,
            _ => None,
        })
}

fn count_copies(actions: &[Action], kind: CopyKind) -> (usize, usize) {
    let mut count = 0;
    let mut bytes = 0;
    for a in actions {
        if let Action::Copy {
            kind: k, bytes: b, ..
        } = a
        {
            if *k == kind {
                count += 1;
                bytes += b;
            }
        }
    }
    (count, bytes)
}

fn intranode_pair(cfg: ProtocolConfig) -> (Endpoint, Endpoint) {
    (
        Endpoint::new(ProcessId::new(0, 0), cfg.clone()),
        Endpoint::new(ProcessId::new(0, 1), cfg),
    )
}

fn internode_pair(cfg: ProtocolConfig) -> (Endpoint, Endpoint) {
    (
        Endpoint::new(ProcessId::new(0, 0), cfg.clone()),
        Endpoint::new(ProcessId::new(1, 0), cfg),
    )
}

// ---------------------------------------------------------------------------
// Basic transfer correctness across modes, sizes, and posting orders.
// ---------------------------------------------------------------------------

#[test]
fn intranode_transfer_all_modes_and_sizes() {
    for mode in ProtocolMode::ALL {
        for len in [0usize, 1, 10, 16, 17, 100, 1000, 3000, 4096, 8192] {
            let cfg = ProtocolConfig::paper_intranode().with_mode(mode);
            let (mut s, mut r) = intranode_pair(cfg);
            let data = payload(len);
            s.post_send(r.id(), Tag(1), data.clone()).unwrap();
            r.post_recv(s.id(), Tag(1), len.max(1)).unwrap();
            let (_sa, _ra) = run_pair(&mut s, &mut r);
            let got = recv_complete_data(&mut r)
                .unwrap_or_else(|| panic!("no completion for mode {mode:?} len {len}"));
            assert_eq!(got, data, "mode {mode:?} len {len}");
            assert!(s.idle(), "sender not idle for mode {mode:?} len {len}");
            assert!(r.idle(), "receiver not idle for mode {mode:?} len {len}");
        }
    }
}

#[test]
fn internode_transfer_all_modes_and_sizes() {
    for mode in ProtocolMode::ALL {
        for len in [0usize, 4, 80, 760, 761, 1460, 1461, 4096, 8192] {
            let cfg = ProtocolConfig::paper_internode()
                .with_mode(mode)
                .with_pushed_buffer(16 * 1024);
            let (mut s, mut r) = internode_pair(cfg);
            let data = payload(len);
            s.post_send(r.id(), Tag(9), data.clone()).unwrap();
            r.post_recv(s.id(), Tag(9), len).unwrap();
            let (_sa, _ra) = run_pair(&mut s, &mut r);
            let got = recv_complete_data(&mut r)
                .unwrap_or_else(|| panic!("no completion for mode {mode:?} len {len}"));
            assert_eq!(got, data, "mode {mode:?} len {len}");
        }
    }
}

#[test]
fn late_receiver_still_delivers() {
    // Send first, post the receive only afterwards: the data must be staged
    // in the pushed buffer and drained on posting.
    for mode in ProtocolMode::ALL {
        let cfg = ProtocolConfig::paper_internode()
            .with_mode(mode)
            .with_pushed_buffer(64 * 1024);
        let (mut s, mut r) = internode_pair(cfg);
        let data = payload(4096);
        s.post_send(r.id(), Tag(2), data.clone()).unwrap();
        // Let the pushes propagate before the receive is posted.
        let (_sa0, _ra0) = run_pair(&mut s, &mut r);
        r.post_recv(s.id(), Tag(2), 4096).unwrap();
        let (_sa, _ra) = run_pair(&mut s, &mut r);
        assert_eq!(recv_complete_data(&mut r).unwrap(), data, "mode {mode:?}");
    }
}

#[test]
fn early_receiver_uses_one_copy_path() {
    let cfg = ProtocolConfig::paper_internode();
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(4096);
    // Receive posted before the send: all data should be copied directly.
    r.post_recv(s.id(), Tag(3), 4096).unwrap();
    s.post_send(r.id(), Tag(3), data.clone()).unwrap();
    let (_sa, ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
    let (_, staged) = count_copies(&ra, CopyKind::PushToPushedBuffer);
    assert_eq!(staged, 0, "early receiver must not stage data");
    let (_, direct_push) = count_copies(&ra, CopyKind::PushDirect);
    let (_, direct_pull) = count_copies(&ra, CopyKind::PullDirect);
    assert_eq!(direct_push + direct_pull, 4096);
}

#[test]
fn late_receiver_uses_two_copy_path_for_pushed_bytes() {
    let cfg = ProtocolConfig::paper_internode();
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(4096);
    s.post_send(r.id(), Tag(3), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    r.post_recv(s.id(), Tag(3), 4096).unwrap();
    let (_sa, ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
    // The eagerly pushed 760 bytes were staged and then drained.
    let (_, staged) = count_copies(&ra, CopyKind::DrainPushedBuffer);
    assert_eq!(staged, 760);
    // The pulled remainder went straight to the destination.
    let (_, pulled) = count_copies(&ra, CopyKind::PullDirect);
    assert_eq!(pulled, 4096 - 760);
}

// ---------------------------------------------------------------------------
// Mode-specific behaviour.
// ---------------------------------------------------------------------------

#[test]
fn push_all_sends_everything_eagerly() {
    let cfg = ProtocolConfig::paper_internode()
        .with_mode(ProtocolMode::PushAll)
        .with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(8192);
    r.post_recv(s.id(), Tag(0), 8192).unwrap();
    s.post_send(r.id(), Tag(0), data.clone()).unwrap();
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
    assert_eq!(s.stats().bytes_pushed, 8192);
    assert_eq!(s.stats().bytes_pulled, 0);
    assert_eq!(r.stats().pull_requests_sent, 0);
}

#[test]
fn push_zero_pulls_everything() {
    let cfg = ProtocolConfig::paper_internode().with_mode(ProtocolMode::PushZero);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(8192);
    r.post_recv(s.id(), Tag(0), 8192).unwrap();
    s.post_send(r.id(), Tag(0), data.clone()).unwrap();
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
    assert_eq!(s.stats().bytes_pushed, 0);
    assert_eq!(s.stats().bytes_pulled, 8192);
    assert_eq!(r.stats().pull_requests_sent, 1);
}

#[test]
fn push_pull_splits_push_and_pull() {
    let cfg = ProtocolConfig::paper_internode();
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(8192);
    r.post_recv(s.id(), Tag(0), 8192).unwrap();
    s.post_send(r.id(), Tag(0), data.clone()).unwrap();
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
    assert_eq!(s.stats().bytes_pushed, 760);
    assert_eq!(s.stats().bytes_pulled, 8192 - 760);
    assert_eq!(s.stats().pull_requests_served, 1);
}

#[test]
fn short_message_needs_no_pull_in_push_pull_mode() {
    let cfg = ProtocolConfig::paper_internode();
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(500);
    r.post_recv(s.id(), Tag(0), 500).unwrap();
    s.post_send(r.id(), Tag(0), data.clone()).unwrap();
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
    assert_eq!(r.stats().pull_requests_sent, 0);
    assert_eq!(s.stats().bytes_pulled, 0);
}

// ---------------------------------------------------------------------------
// Optimisation flags.
// ---------------------------------------------------------------------------

#[test]
fn overlap_flag_controls_push_splitting() {
    for (opts, expected_pushes) in [
        (OptFlags::overlap_only(), 2usize),
        (OptFlags::baseline(), 1),
    ] {
        let cfg = ProtocolConfig::paper_internode().with_opts(opts);
        let mut s = Endpoint::new(ProcessId::new(0, 0), cfg.clone());
        let r_id = ProcessId::new(1, 0);
        s.post_send(r_id, Tag(0), payload(4096)).unwrap();
        let pushes = s
            .drain_actions()
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::TransmitFrame {
                        frame: crate::reliability::Frame::Data { packet, .. },
                        ..
                    } if matches!(packet.header.kind, PacketKind::Push(_))
                )
            })
            .count();
        assert_eq!(pushes, expected_pushes, "opts {opts:?}");
    }
}

#[test]
fn masking_defers_translation_after_first_transmit() {
    // With masking the first emitted action must be the transmission, with
    // the translation following it; without masking the translation leads.
    let check = |opts: OptFlags, translate_first: bool| {
        let cfg = ProtocolConfig::paper_internode().with_opts(opts);
        let mut s = Endpoint::new(ProcessId::new(0, 0), cfg);
        s.post_send(ProcessId::new(1, 0), Tag(0), payload(4096))
            .unwrap();
        let actions = s.drain_actions();
        let translate_pos = actions
            .iter()
            .position(|a| matches!(a, Action::Translate { .. }))
            .expect("translation must be requested");
        let transmit_pos = actions
            .iter()
            .position(|a| matches!(a, Action::TransmitFrame { .. }))
            .expect("transmission must be requested");
        if translate_first {
            assert!(translate_pos < transmit_pos, "opts {opts:?}");
        } else {
            assert!(transmit_pos < translate_pos, "opts {opts:?}");
        }
    };
    check(OptFlags::baseline(), true);
    check(OptFlags::mask_only(), false);
    check(OptFlags::full(), false);
}

#[test]
fn masking_uses_user_space_injection() {
    let cfg = ProtocolConfig::paper_internode().with_opts(OptFlags::full());
    let mut s = Endpoint::new(ProcessId::new(0, 0), cfg);
    s.post_send(ProcessId::new(1, 0), Tag(0), payload(100))
        .unwrap();
    let injections: Vec<InjectMode> = s
        .drain_actions()
        .iter()
        .filter_map(|a| match a {
            Action::TransmitFrame { inject, .. } => Some(*inject),
            _ => None,
        })
        .collect();
    assert!(injections.contains(&InjectMode::UserSpaceDirect));

    let cfg = ProtocolConfig::paper_internode().with_opts(OptFlags::baseline());
    let mut s = Endpoint::new(ProcessId::new(0, 0), cfg);
    s.post_send(ProcessId::new(1, 0), Tag(0), payload(100))
        .unwrap();
    let injections: Vec<InjectMode> = s
        .drain_actions()
        .iter()
        .filter_map(|a| match a {
            Action::TransmitFrame { inject, .. } => Some(*inject),
            _ => None,
        })
        .collect();
    assert!(!injections.contains(&InjectMode::UserSpaceDirect));
}

#[test]
fn disabling_zero_buffer_adds_extra_copies() {
    let mut no_zb = OptFlags::full();
    no_zb.zero_buffer = false;
    let cfg = ProtocolConfig::paper_internode().with_opts(no_zb);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(4096);
    r.post_recv(s.id(), Tag(0), 4096).unwrap();
    s.post_send(r.id(), Tag(0), data).unwrap();
    let (_sa, ra) = run_pair(&mut s, &mut r);
    let (_, extra) = count_copies(&ra, CopyKind::StagingExtra);
    assert_eq!(extra, 4096);
    assert_eq!(r.stats().bytes_copied_extra, 4096);

    let cfg = ProtocolConfig::paper_internode().with_opts(OptFlags::full());
    let (mut s, mut r) = internode_pair(cfg);
    r.post_recv(s.id(), Tag(0), 4096).unwrap();
    s.post_send(r.id(), Tag(0), payload(4096)).unwrap();
    let (_sa, ra) = run_pair(&mut s, &mut r);
    let (_, extra) = count_copies(&ra, CopyKind::StagingExtra);
    assert_eq!(extra, 0);
}

#[test]
fn parallel_pull_marks_copies_least_loaded() {
    let cfg = ProtocolConfig::paper_internode().with_opts(OptFlags::full());
    let (mut s, mut r) = internode_pair(cfg);
    r.post_recv(s.id(), Tag(0), 8192).unwrap();
    s.post_send(r.id(), Tag(0), payload(8192)).unwrap();
    let (_sa, ra) = run_pair(&mut s, &mut r);
    let pull_copies: Vec<bool> = ra
        .iter()
        .filter_map(|a| match a {
            Action::Copy {
                kind: CopyKind::PullDirect,
                least_loaded,
                ..
            } => Some(*least_loaded),
            _ => None,
        })
        .collect();
    assert!(!pull_copies.is_empty());
    assert!(pull_copies.iter().all(|&b| b));
}

// ---------------------------------------------------------------------------
// Pushed-buffer overflow and go-back-N recovery (the Fig. 6 late-receiver
// collapse of Push-All).
// ---------------------------------------------------------------------------

#[test]
fn push_all_overflows_small_pushed_buffer_and_recovers() {
    let cfg = ProtocolConfig::paper_internode()
        .with_mode(ProtocolMode::PushAll)
        .with_pushed_buffer(4 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(8192);
    s.post_send(r.id(), Tag(0), data.clone()).unwrap();

    // Relay traffic by hand so the receive can be posted *after* the first
    // overflow drop, like the late-receiver test does, while keeping the
    // retransmission timers alive across that boundary.
    let mut timers: Vec<(ProcessId, crate::types::TimerId)> = Vec::new();
    let mut out_s = Vec::new();
    let mut out_r = Vec::new();
    let mut posted = false;
    let mut delivered: Option<Bytes> = None;
    for _ in 0..100_000 {
        let mut progressed = pump(&mut s, &mut r, &mut out_s, &mut timers);
        progressed |= pump(&mut r, &mut s, &mut out_r, &mut timers);
        if delivered.is_none() {
            delivered = recv_complete_data(&mut r);
        }
        if !posted && r.stats().frames_dropped > 0 {
            // Without a posted receive the 8 KiB eager transfer cannot fit in
            // the 4 KiB pushed buffer: frames were dropped.  Now post it.
            r.post_recv(s.id(), Tag(0), 8192).unwrap();
            posted = true;
            continue;
        }
        if !progressed {
            if delivered.is_some() || timers.is_empty() {
                break;
            }
            let (owner, timer) = timers.remove(0);
            if owner == s.id() {
                s.handle_timer(timer);
            } else {
                r.handle_timer(timer);
            }
        }
    }
    assert!(posted, "overflow drop never happened");
    assert!(r.stats().frames_dropped > 0, "expected overflow drops");
    assert_eq!(delivered.unwrap(), data);
    let gbn = s.channel_stats(r.id()).unwrap();
    assert!(gbn.retransmissions > 0, "go-back-N must have retransmitted");
}

#[test]
fn push_pull_does_not_overflow_small_pushed_buffer() {
    let cfg = ProtocolConfig::paper_internode()
        .with_mode(ProtocolMode::PushPull)
        .with_pushed_buffer(4 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(8192);
    s.post_send(r.id(), Tag(0), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    assert_eq!(r.stats().frames_dropped, 0);
    r.post_recv(s.id(), Tag(0), 8192).unwrap();
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
    let gbn = s.channel_stats(r.id()).unwrap();
    assert_eq!(gbn.retransmissions, 0);
}

// ---------------------------------------------------------------------------
// Message matching.
// ---------------------------------------------------------------------------

#[test]
fn messages_match_by_tag() {
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data_a = payload(100);
    let data_b = payload(2000);
    s.post_send(r.id(), Tag(1), data_a.clone()).unwrap();
    s.post_send(r.id(), Tag(2), data_b.clone()).unwrap();
    // Post the receives in the opposite tag order.
    let h2 = r.post_recv(s.id(), Tag(2), 2000).unwrap();
    let h1 = r.post_recv(s.id(), Tag(1), 100).unwrap();
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    let done: Vec<(OpId, Bytes)> = completions(&mut r)
        .into_iter()
        .map(|c| {
            assert_eq!(c.status, Status::Ok);
            let data = c.data.clone().unwrap();
            (c.op, data)
        })
        .collect();
    assert_eq!(done.len(), 2);
    for (op, data) in done {
        if op == OpId::Recv(h1) {
            assert_eq!(data, data_a);
        } else {
            assert_eq!(op, OpId::Recv(h2));
            assert_eq!(data, data_b);
        }
    }
}

#[test]
fn multiple_messages_same_tag_arrive_in_order() {
    let cfg = ProtocolConfig::paper_intranode();
    let (mut s, mut r) = intranode_pair(cfg);
    let msgs: Vec<Bytes> = (1..=4).map(|i| payload(i * 500)).collect();
    for m in &msgs {
        s.post_send(r.id(), Tag(7), m.clone()).unwrap();
    }
    for m in &msgs {
        r.post_recv(s.id(), Tag(7), m.len()).unwrap();
    }
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    let received: Vec<Bytes> = completions(&mut r)
        .into_iter()
        .filter_map(|c| match c.op {
            OpId::Recv(_) => c.data,
            OpId::Send(_) => None,
        })
        .collect();
    assert_eq!(received.len(), 4);
    for (got, want) in received.iter().zip(&msgs) {
        assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------------
// Error handling.
// ---------------------------------------------------------------------------

#[test]
fn self_send_rejected() {
    let cfg = ProtocolConfig::default();
    let mut e = Endpoint::new(ProcessId::new(0, 0), cfg);
    assert!(matches!(
        e.post_send(ProcessId::new(0, 0), Tag(0), payload(10)),
        Err(Error::SelfSend { .. })
    ));
    assert!(matches!(
        e.post_recv(ProcessId::new(0, 0), Tag(0), 10),
        Err(Error::SelfSend { .. })
    ));
}

#[test]
fn receive_smaller_than_message_fails() {
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(4096);
    s.post_send(r.id(), Tag(0), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    // Message already buffered; a too-small receive completes with an error
    // (and, under the default policy, leaves the message unharmed).
    let small = r.post_recv(s.id(), Tag(0), 100).unwrap();
    let failed = completions(&mut r)
        .into_iter()
        .find(|c| c.op == OpId::Recv(small))
        .expect("error completion");
    assert!(matches!(
        failed.status,
        Status::Error(Error::ReceiveTooSmall {
            posted: 100,
            incoming: 4096
        })
    ));
    // A correctly sized receive posted afterwards still gets the message.
    r.post_recv(s.id(), Tag(0), 4096).unwrap();
    let (_sa, _ra) = run_pair(&mut s, &mut r);
    assert_eq!(recv_complete_data(&mut r).unwrap(), data);
}

// ---------------------------------------------------------------------------
// Operations layer: wildcards, cancellation, truncation, caller buffers.
// ---------------------------------------------------------------------------

#[test]
fn wildcard_receive_matches_any_source_and_tag() {
    use crate::types::{ANY_SOURCE, ANY_TAG};
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(3000);
    let op = r.post_recv(ANY_SOURCE, ANY_TAG, 4096).unwrap();
    s.post_send(r.id(), Tag(99), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    let done = completions(&mut r)
        .into_iter()
        .find(|c| c.op == OpId::Recv(op))
        .expect("wildcard receive completed");
    assert_eq!(done.status, Status::Ok);
    // The completion reports the concrete source and tag, not the selector.
    assert_eq!(done.peer, s.id());
    assert_eq!(done.tag, Tag(99));
    assert_eq!(done.data.unwrap(), data);
}

#[test]
fn wildcard_receive_claims_buffered_unexpected_message() {
    use crate::types::ANY_SOURCE;
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(2048);
    s.post_send(r.id(), Tag(5), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    // The message sits unexpected; an any-source receive takes it.
    let op = r.post_recv(ANY_SOURCE, Tag(5), 2048).unwrap();
    let _ = run_pair(&mut s, &mut r);
    let done = completions(&mut r)
        .into_iter()
        .find(|c| c.op == OpId::Recv(op))
        .expect("completed");
    assert_eq!(done.data.unwrap(), data);
}

#[test]
fn cancelled_receive_completes_cancelled_and_never_again() {
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let op = r.post_recv(s.id(), Tag(1), 4096).unwrap();
    assert!(r.cancel(op), "pending receive must cancel");
    assert!(!r.cancel(op), "second cancel must fail (stale handle)");
    let done = completions(&mut r);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, Status::Cancelled);
    assert_eq!(done[0].op, OpId::Recv(op));
    // A message arriving afterwards must not complete the cancelled op; it
    // waits for the replacement receive instead.
    let data = payload(1000);
    s.post_send(r.id(), Tag(1), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    assert!(
        completions(&mut r).is_empty(),
        "cancelled op must stay silent"
    );
    let op2 = r.post_recv(s.id(), Tag(1), 4096).unwrap();
    let _ = run_pair(&mut s, &mut r);
    let done = completions(&mut r);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].op, OpId::Recv(op2));
    assert_eq!(done[0].data.as_ref().unwrap(), &data);
}

#[test]
fn matched_receive_cannot_be_cancelled() {
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let op = r.post_recv(s.id(), Tag(1), 8192).unwrap();
    s.post_send(r.id(), Tag(1), payload(8192)).unwrap();
    // Deliver only the eager pushes so the receive is matched but not
    // complete: pump once without firing timers or serving the pull.
    let mut out = Vec::new();
    let mut timers = Vec::new();
    pump(&mut s, &mut r, &mut out, &mut timers);
    assert!(!r.cancel(op), "matched receive must refuse cancellation");
    let _ = run_pair(&mut s, &mut r);
    assert_eq!(
        completions(&mut r)
            .iter()
            .filter(|c| c.op == OpId::Recv(op))
            .count(),
        1
    );
}

#[test]
fn truncation_error_policy_preserves_message_for_next_receive() {
    // The ROADMAP PR-1 poisoning bug: a too-small receive used to drop the
    // message's first fragment with its state, hanging the next receive.
    for recv_first in [false, true] {
        let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
        let (mut s, mut r) = internode_pair(cfg);
        let data = payload(8192);
        let small = if recv_first {
            let op = r.post_recv(s.id(), Tag(3), 64).unwrap();
            s.post_send(r.id(), Tag(3), data.clone()).unwrap();
            op
        } else {
            s.post_send(r.id(), Tag(3), data.clone()).unwrap();
            let _ = run_pair(&mut s, &mut r);
            r.post_recv(s.id(), Tag(3), 64).unwrap()
        };
        let _ = run_pair(&mut s, &mut r);
        let failed = completions(&mut r)
            .into_iter()
            .find(|c| c.op == OpId::Recv(small))
            .expect("error completion");
        assert!(
            matches!(failed.status, Status::Error(Error::ReceiveTooSmall { .. })),
            "recv_first {recv_first}"
        );
        // The message is unharmed: an adequate receive gets every byte.
        let ok = r.post_recv(s.id(), Tag(3), 8192).unwrap();
        let _ = run_pair(&mut s, &mut r);
        let done = completions(&mut r)
            .into_iter()
            .find(|c| c.op == OpId::Recv(ok))
            .unwrap_or_else(|| panic!("no recovery completion, recv_first {recv_first}"));
        assert_eq!(done.status, Status::Ok, "recv_first {recv_first}");
        assert_eq!(done.data.unwrap(), data, "recv_first {recv_first}");
    }
}

#[test]
fn truncate_policy_delivers_prefix() {
    for recv_first in [false, true] {
        let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
        let (mut s, mut r) = internode_pair(cfg);
        let data = payload(4096);
        let op = if recv_first {
            let op = r
                .post_recv_with(s.id(), Tag(1), 100, TruncationPolicy::Truncate)
                .unwrap();
            s.post_send(r.id(), Tag(1), data.clone()).unwrap();
            op
        } else {
            s.post_send(r.id(), Tag(1), data.clone()).unwrap();
            let _ = run_pair(&mut s, &mut r);
            r.post_recv_with(s.id(), Tag(1), 100, TruncationPolicy::Truncate)
                .unwrap()
        };
        let _ = run_pair(&mut s, &mut r);
        let done = completions(&mut r)
            .into_iter()
            .find(|c| c.op == OpId::Recv(op))
            .unwrap_or_else(|| panic!("no completion, recv_first {recv_first}"));
        assert_eq!(
            done.status,
            Status::Truncated { message_len: 4096 },
            "recv_first {recv_first}"
        );
        assert_eq!(done.len, 100);
        assert_eq!(done.data.unwrap(), data.slice(..100));
        assert!(s.idle() && r.idle(), "recv_first {recv_first}");
    }
}

#[test]
fn recv_into_reassembles_into_caller_buffer() {
    for recv_first in [false, true] {
        for len in [0usize, 1, 80, 760, 1461, 8192] {
            let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
            let (mut s, mut r) = internode_pair(cfg);
            let data = payload(len);
            let buf = RecvBuf::with_capacity(8192);
            let op = if recv_first {
                let op = r
                    .post_recv_into(s.id(), Tag(1), buf, TruncationPolicy::Error)
                    .unwrap();
                s.post_send(r.id(), Tag(1), data.clone()).unwrap();
                op
            } else {
                s.post_send(r.id(), Tag(1), data.clone()).unwrap();
                let _ = run_pair(&mut s, &mut r);
                r.post_recv_into(s.id(), Tag(1), buf, TruncationPolicy::Error)
                    .unwrap()
            };
            let _ = run_pair(&mut s, &mut r);
            let done = completions(&mut r)
                .into_iter()
                .find(|c| c.op == OpId::Recv(op))
                .unwrap_or_else(|| panic!("no completion, recv_first {recv_first} len {len}"));
            assert_eq!(done.status, Status::Ok, "recv_first {recv_first} len {len}");
            assert!(done.data.is_none());
            let buf = done.buf.expect("caller buffer handed back");
            assert_eq!(buf.len(), len, "recv_first {recv_first} len {len}");
            assert_eq!(
                buf.as_slice(),
                &data[..],
                "recv_first {recv_first} len {len}"
            );
        }
    }
}

#[test]
fn recycled_recv_buf_reads_empty_when_returned_unused() {
    // A buffer that carried a message last time must not present those
    // stale bytes when it comes back from a cancelled (or failed) receive.
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(1024);
    let op = r
        .post_recv_into(
            s.id(),
            Tag(1),
            RecvBuf::with_capacity(1024),
            TruncationPolicy::Error,
        )
        .unwrap();
    s.post_send(r.id(), Tag(1), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    let done = completions(&mut r)
        .into_iter()
        .find(|c| c.op == OpId::Recv(op))
        .unwrap();
    let buf = done.buf.unwrap();
    assert_eq!(buf.as_slice(), &data[..]);
    // Recycle, post again, cancel before any match.
    let op2 = r
        .post_recv_into(s.id(), Tag(2), buf, TruncationPolicy::Error)
        .unwrap();
    assert!(r.cancel(op2));
    let cancelled = completions(&mut r)
        .into_iter()
        .find(|c| c.op == OpId::Recv(op2))
        .unwrap();
    assert_eq!(cancelled.status, Status::Cancelled);
    assert_eq!(cancelled.payload(), Some(&[][..]));
    let buf = cancelled.buf.unwrap();
    assert_eq!(buf.len(), 0, "unused buffer must read empty");
    assert!(buf.as_slice().is_empty());
}

#[test]
fn recv_into_truncates_into_small_buffer() {
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let data = payload(4096);
    let op = r
        .post_recv_into(
            s.id(),
            Tag(1),
            RecvBuf::with_capacity(128),
            TruncationPolicy::Truncate,
        )
        .unwrap();
    s.post_send(r.id(), Tag(1), data.clone()).unwrap();
    let _ = run_pair(&mut s, &mut r);
    let done = completions(&mut r)
        .into_iter()
        .find(|c| c.op == OpId::Recv(op))
        .expect("completion");
    assert_eq!(done.status, Status::Truncated { message_len: 4096 });
    let buf = done.buf.unwrap();
    assert_eq!(buf.len(), 128);
    assert_eq!(buf.as_slice(), &data[..128]);
}

#[test]
fn stats_track_operations() {
    let cfg = ProtocolConfig::paper_internode();
    let (mut s, mut r) = internode_pair(cfg);
    r.post_recv(s.id(), Tag(0), 4096).unwrap();
    s.post_send(r.id(), Tag(0), payload(4096)).unwrap();
    let _ = run_pair(&mut s, &mut r);
    assert_eq!(s.stats().sends_posted, 1);
    assert_eq!(s.stats().sends_completed, 1);
    assert_eq!(r.stats().recvs_posted, 1);
    assert_eq!(r.stats().recvs_completed, 1);
    assert_eq!(s.stats().bytes_pushed + s.stats().bytes_pulled, 4096);
}

#[test]
fn cancel_send_reclaims_unpulled_send() {
    // Push-Zero: nothing is pushed eagerly, so the whole payload stays
    // registered until the receiver pulls — the cancellable regime.
    let cfg = ProtocolConfig::paper_intranode().with_mode(ProtocolMode::PushZero);
    let (mut s, mut r) = intranode_pair(cfg);
    let op = s.post_send(r.id(), Tag(5), payload(4096)).unwrap();
    let _ = run_pair(&mut s, &mut r); // announce travels; no receive posted
    assert!(s.cancel_send(op), "unpulled send must cancel");
    assert!(!s.cancel_send(op), "stale handle must not cancel again");
    let done = completions(&mut s);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].op, OpId::Send(op));
    assert_eq!(done[0].status, Status::Cancelled);
    assert_eq!(done[0].len, 0);
    assert_eq!(s.stats().sends_cancelled, 1);
    assert_eq!(s.stats().sends_completed, 0);
    assert!(s.send_queue.is_empty(), "pinned payload must be released");

    // A receive posted afterwards answers the (now stale) pull request with
    // a drop, never with data: the cancelled operation stays cancelled.
    r.post_recv(s.id(), Tag(5), 4096).unwrap();
    let _ = run_pair(&mut s, &mut r);
    assert!(
        completions(&mut s).is_empty(),
        "cancelled send must never complete again"
    );
}

#[test]
fn cancel_send_refuses_completed_and_pulled_sends() {
    // Fully-eager send: completes inside post_send, nothing to cancel.
    let cfg = ProtocolConfig::paper_intranode().with_pushed_buffer(64 * 1024);
    let (mut s, r) = intranode_pair(cfg.clone());
    let eager = s.post_send(r.id(), Tag(1), payload(8)).unwrap();
    assert!(!s.cancel_send(eager), "eager send completed at post time");

    // Pulled send that ran to completion: the handle is stale by then.
    let (mut s, mut r) = intranode_pair(cfg);
    r.post_recv(s.id(), Tag(2), 4096).unwrap();
    let op = s.post_send(r.id(), Tag(2), payload(4096)).unwrap();
    let _ = run_pair(&mut s, &mut r);
    assert!(!s.cancel_send(op), "completed send must not cancel");
    assert_eq!(s.stats().sends_completed, 1);
    assert_eq!(s.stats().sends_cancelled, 0);
}

#[test]
fn dynamic_pushed_buffer_resize() {
    let cfg = ProtocolConfig::paper_internode();
    let mut e = Endpoint::new(ProcessId::new(0, 0), cfg);
    assert_eq!(e.config().pushed_buffer_capacity, 4 * 1024);
    e.resize_pushed_buffer(64 * 1024);
    assert_eq!(e.config().pushed_buffer_capacity, 64 * 1024);
}

// ---------------------------------------------------------------------------
// Vectored sends: one message from a scatter list, no wire coalescing.
// ---------------------------------------------------------------------------

#[test]
fn vectored_send_delivers_concatenation_all_modes() {
    for mode in ProtocolMode::ALL {
        for shape in [
            vec![0usize, 0],
            vec![10],
            vec![16, 0, 84],
            vec![80, 680, 4096],
            vec![1, 1459, 1461, 2000],
        ] {
            let cfg = ProtocolConfig::paper_intranode()
                .with_mode(mode)
                .with_pushed_buffer(64 * 1024);
            let (mut s, mut r) = intranode_pair(cfg);
            let segments: Vec<Bytes> = shape
                .iter()
                .enumerate()
                .map(|(i, &len)| Bytes::from(vec![(i + 1) as u8; len]))
                .collect();
            let expected: Vec<u8> = segments.iter().flat_map(|s| s.iter().copied()).collect();
            let total: usize = shape.iter().sum();
            s.post_send_vectored(r.id(), Tag(3), &segments).unwrap();
            r.post_recv(s.id(), Tag(3), total.max(1)).unwrap();
            run_pair(&mut s, &mut r);
            let got = recv_complete_data(&mut r)
                .unwrap_or_else(|| panic!("no completion for mode {mode:?} shape {shape:?}"));
            assert_eq!(&got[..], &expected[..], "mode {mode:?} shape {shape:?}");
            assert!(s.idle() && r.idle(), "mode {mode:?} shape {shape:?}");
        }
    }
}

/// Every packet of a vectored send — pushed and pulled alike — carries a
/// payload that is a zero-copy slice of exactly one segment: its pointer
/// lies inside that segment's storage and its range never crosses a segment
/// boundary.  This is the "no coalescing on the wire path" guarantee.
#[test]
fn vectored_send_packets_are_zero_copy_and_respect_segment_boundaries() {
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, mut r) = internode_pair(cfg);
    let segments = vec![
        Bytes::from(vec![1u8; 100]), // straddles the BTP(1)=80 boundary
        Bytes::from(vec![2u8; 3000]),
        Bytes::from(vec![3u8; 500]),
    ];
    let bounds: Vec<(usize, usize)> = {
        let mut base = 0;
        segments
            .iter()
            .map(|s| {
                let b = base;
                base += s.len();
                (b, b + s.len())
            })
            .collect()
    };
    s.post_send_vectored(r.id(), Tag(4), &segments).unwrap();
    r.post_recv(s.id(), Tag(4), 3600).unwrap();

    // Relay by hand so every data packet can be inspected in flight.
    let mut inspected = 0usize;
    for _ in 0..10_000 {
        let mut progressed = false;
        while let Some(action) = s.poll_action() {
            progressed = true;
            if let Action::TransmitFrame { frame, .. } = action {
                if let crate::reliability::Frame::Data { packet, .. } = &frame {
                    if !packet.payload.is_empty() {
                        let offset = packet.header.offset as usize;
                        let len = packet.payload.len();
                        let (seg, (seg_start, seg_end)) = segments
                            .iter()
                            .zip(&bounds)
                            .find(|(_, &(lo, hi))| offset >= lo && offset < hi)
                            .expect("packet offset inside some segment");
                        assert!(
                            offset + len <= *seg_end,
                            "packet [{offset}, {}) crosses the segment boundary at {seg_end}",
                            offset + len
                        );
                        // Zero copy: the payload points into the segment.
                        // SAFETY: the bounds check above proved
                        // `offset - seg_start` lies inside `seg`.
                        let expect_ptr = unsafe { seg.as_ptr().add(offset - seg_start) };
                        assert_eq!(packet.payload.as_ptr(), expect_ptr, "payload was copied");
                        inspected += 1;
                    }
                }
                r.handle_frame(s.id(), frame);
            }
        }
        while let Some(action) = r.poll_action() {
            progressed = true;
            if let Action::TransmitFrame { frame, .. } = action {
                s.handle_frame(r.id(), frame);
            }
        }
        if !progressed {
            break;
        }
    }
    assert!(
        inspected >= 4,
        "expected multiple data packets (eager 80+680 across the first two \
         segments plus the pulled remainder), saw {inspected}"
    );
    let got = recv_complete_data(&mut r).expect("vectored message delivered");
    let expected: Vec<u8> = segments.iter().flat_map(|s| s.iter().copied()).collect();
    assert_eq!(&got[..], &expected[..]);
}

#[test]
fn vectored_send_cancel_reclaims_segments() {
    let cfg = ProtocolConfig::paper_internode().with_pushed_buffer(64 * 1024);
    let (mut s, _r) = internode_pair(cfg);
    let segments = vec![Bytes::from(vec![9u8; 4096]), Bytes::from(vec![8u8; 4096])];
    let op = s
        .post_send_vectored(ProcessId::new(1, 0), Tag(5), &segments)
        .unwrap();
    assert!(s.cancel_send(op), "unpulled vectored send must cancel");
    let done = completions(&mut s)
        .into_iter()
        .find(|c| c.op == OpId::Send(op))
        .expect("cancellation completion");
    assert_eq!(done.status, Status::Cancelled);
}
