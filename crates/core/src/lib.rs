//! # ppmsg-core — the Push-Pull Messaging protocol engine
//!
//! This crate implements the protocol described in *"Push-Pull Messaging: A
//! High-Performance Communication Mechanism for Commodity SMP Clusters"*
//! (Wong & Wang, ICPP 1999) as a **sans-I/O state machine**: the engine owns
//! the protocol state (send queue, receive queue, pushed buffer, go-back-N
//! channels) but performs no I/O and reads no clock.  A *backend* feeds it
//! events — send/receive postings, arriving packets, expiring timers — and
//! drains the [`Action`]s it produces: packets to transmit, buffers to
//! translate, copies to perform, completions to deliver.
//!
//! Two backends ship with the workspace:
//!
//! * [`ppmsg-sim`](../ppmsg_sim/index.html) drives the engine inside a
//!   discrete-event simulation of a 1999-era SMP cluster and regenerates the
//!   paper's figures, and
//! * [`ppmsg-host`](../ppmsg_host/index.html) drives the same engine over
//!   real OS primitives (in-process shared memory and UDP sockets).
//!
//! ## Protocol summary
//!
//! A message of `n` bytes is transferred in up to three parts:
//!
//! 1. the **first push** of `BTP(1)` bytes, sent eagerly the moment the send
//!    is posted;
//! 2. the **second push** of `BTP(2)` bytes, transmitted overlapped with the
//!    receiver's acknowledgement when *push-and-acknowledge overlapping* is
//!    enabled;
//! 3. the **pulled remainder**, sent only after the receiver's pull request
//!    (the acknowledgement that doubles as a request) arrives, which the
//!    receiver issues once its receive operation is posted.
//!
//! Setting `BTP = 0` degenerates to the classical three-phase rendezvous
//! protocol (**Push-Zero**); setting `BTP = n` degenerates to a purely eager
//! protocol (**Push-All**).  Both are implemented and used as baselines.
//!
//! ## Operation lifecycle
//!
//! `post_send` / `post_recv` return typed, generation-checked handles
//! ([`SendOp`] / [`RecvOp`]); backends relay the engine's [`Action`]s
//! (transmissions, copies, timers) while operation results arrive as
//! [`Completion`]s on a separate per-endpoint completion queue:
//!
//! ```
//! use ppmsg_core::{Endpoint, ProcessId, ProtocolConfig, ProtocolMode, Tag, Action, Status};
//! use bytes::Bytes;
//!
//! let cfg = ProtocolConfig::default().with_mode(ProtocolMode::PushPull);
//! let a = ProcessId::new(0, 0);
//! let b = ProcessId::new(0, 1);
//! let mut sender = Endpoint::new(a, cfg.clone());
//! let mut receiver = Endpoint::new(b, cfg);
//!
//! sender.post_send(b, Tag(7), Bytes::from(vec![42u8; 4096])).unwrap();
//! let op = receiver.post_recv(a, Tag(7), 4096).unwrap();
//!
//! // Relay packets between the two endpoints until both sides are idle.
//! loop {
//!     let mut progressed = false;
//!     while let Some(action) = sender.poll_action() {
//!         progressed = true;
//!         if let Action::Transmit { packet, .. } = action {
//!             receiver.handle_packet(a, packet);
//!         }
//!     }
//!     while let Some(action) = receiver.poll_action() {
//!         progressed = true;
//!         if let Action::Transmit { packet, .. } = action {
//!             sender.handle_packet(b, packet);
//!         }
//!     }
//!     if !progressed {
//!         break;
//!     }
//! }
//!
//! // Results are drained from the completion queue, not the action stream.
//! let completion = receiver.poll_completion().expect("receive completed");
//! assert_eq!(completion.op, op.into());
//! assert_eq!(completion.status, Status::Ok);
//! assert_eq!(completion.data.unwrap().len(), 4096);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btp;
pub mod config;
pub mod engine;
pub mod error;
pub mod index;
pub mod ops;
pub mod queues;
pub mod reliability;
pub mod sharded;
pub mod telemetry;
pub mod transport;
pub mod types;
pub mod wire;
pub mod zbuf;

pub use btp::{BtpPolicy, BtpSplit};
pub use config::{EndpointConfig, OptFlags, ProtocolConfig, ProtocolMode};
pub use engine::{Action, CopyKind, Endpoint, EndpointStats, InjectMode, TranslateCtx};
pub use error::{Error, Result};
pub use index::{Slab, SrcTagMap, U64Index};
pub use ops::{
    Claim, Completion, CompletionMailbox, CompletionQueue, OpId, RecvBuf, RecvOp, SendOp, Status,
    TruncationPolicy, WaitPoll, WakerTable, DEFAULT_COMPLETION_RETENTION,
};
pub use queues::{BufferQueue, PushedBuffer, ReceiveQueue, SendPayload, SendQueue};
pub use reliability::{
    ArqChannel, GbnConfig, GbnEvent, GbnStats, GoBackN, ReliabilityMode, SelectiveRepeat,
};
pub use sharded::{EngineBatch, ShardedEngine};
pub use telemetry::{Counter, EventKind, HistogramSnapshot, LogHistogram, TraceSnapshot};
pub use transport::RawTransport;
pub use types::{
    MessageId, NodeId, ProcessId, Tag, TimerId, ANY_SOURCE, ANY_TAG, COLLECTIVE_TAG_BIT,
};
pub use wire::{Packet, PacketBufPool, PacketHeader, PacketKind, PushPart, MAX_HEADER_LEN};
pub use zbuf::{AddressTranslator, IdentityTranslator, PhysSegment, ZeroBuffer};
