//! Cross-Space Zero Buffer (§4.2).
//!
//! A *zero buffer* is not a data buffer at all: it is a scatter list of
//! `(physical address, length)` pairs describing where a virtually contiguous
//! user buffer actually lives in physical memory.  Armed with the zero
//! buffers of both the source and the destination, a kernel agent can move
//! the data with a **single copy** even though the two buffers belong to
//! different protected address spaces — or straight from the NIC's designated
//! buffer into the destination buffer for internode traffic.
//!
//! The protocol engine only needs the *shape* of the translation (how many
//! pages, therefore how expensive the translation is and whether it can be
//! masked off the critical path).  The concrete [`AddressTranslator`] is
//! supplied by the backend: the simulator implements real page tables in
//! `simsmp::vm`, while the host backend uses [`IdentityTranslator`] because a
//! user-space library cannot observe physical addresses.

use serde::{Deserialize, Serialize};

/// One physically contiguous extent of a user buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysSegment {
    /// Starting physical address of the extent.
    pub phys_addr: u64,
    /// Number of contiguous bytes at `phys_addr`.
    pub len: usize,
}

/// The scatter list describing a virtually contiguous buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ZeroBuffer {
    /// Virtual address the scatter list was built from.
    pub virt_addr: u64,
    /// Physical extents, in virtual-address order.
    pub segments: Vec<PhysSegment>,
}

impl ZeroBuffer {
    /// Builds a zero buffer for the `len` bytes starting at virtual address
    /// `virt_addr`, using the supplied translator.
    pub fn build<T: AddressTranslator + ?Sized>(
        translator: &T,
        virt_addr: u64,
        len: usize,
    ) -> Self {
        ZeroBuffer {
            virt_addr,
            segments: translator.translate(virt_addr, len),
        }
    }

    /// Total number of bytes described by the scatter list.
    pub fn total_len(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Number of physical extents (a proxy for the translation cost: one
    /// page-table walk per extent boundary).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Checks that the scatter list covers exactly `len` bytes with no
    /// zero-length segments.  A zero-length segment is malformed regardless
    /// of `len`: an empty buffer must have an empty scatter list, not a list
    /// of degenerate extents.
    pub fn covers_exactly(&self, len: usize) -> bool {
        self.total_len() == len && self.segments.iter().all(|s| s.len > 0)
    }

    /// Splits the scatter list at byte offset `at`, returning the head
    /// (bytes `[0, at)`) and keeping the tail in `self`.
    ///
    /// Used when a pulled transfer is fragmented over several packets: each
    /// packet consumes a prefix of the remaining scatter list.
    pub fn split_off_prefix(&mut self, at: usize) -> ZeroBuffer {
        let mut head = Vec::new();
        let mut remaining = at;
        let mut rest = Vec::new();
        for seg in self.segments.drain(..) {
            if remaining == 0 {
                rest.push(seg);
            } else if seg.len <= remaining {
                remaining -= seg.len;
                head.push(seg);
            } else {
                head.push(PhysSegment {
                    phys_addr: seg.phys_addr,
                    len: remaining,
                });
                rest.push(PhysSegment {
                    phys_addr: seg.phys_addr + remaining as u64,
                    len: seg.len - remaining,
                });
                remaining = 0;
            }
        }
        let head_len: usize = head.iter().map(|s| s.len).sum();
        let head_buf = ZeroBuffer {
            virt_addr: self.virt_addr,
            segments: head,
        };
        self.virt_addr += head_len as u64;
        self.segments = rest;
        head_buf
    }
}

/// Supplies virtual→physical translations to the protocol engine.
pub trait AddressTranslator {
    /// Translates the `len` bytes starting at `virt_addr` into physical
    /// extents, in order.  Implementations must cover exactly `len` bytes.
    fn translate(&self, virt_addr: u64, len: usize) -> Vec<PhysSegment>;

    /// The page size used by this translator; the number of page crossings
    /// (`len / page_size()` roughly) determines the translation cost.
    fn page_size(&self) -> usize {
        4096
    }
}

/// A translator for environments where physical addresses are not observable
/// (the user-space host backend): virtual addresses are passed through as a
/// single contiguous "physical" extent.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityTranslator;

impl AddressTranslator for IdentityTranslator {
    fn translate(&self, virt_addr: u64, len: usize) -> Vec<PhysSegment> {
        if len == 0 {
            return Vec::new();
        }
        vec![PhysSegment {
            phys_addr: virt_addr,
            len,
        }]
    }
}

/// Number of page-table lookups required to translate a `len`-byte buffer
/// starting at `virt_addr` with the given page size.
///
/// The paper observes that "the address translation overhead grows linearly
/// as the size of the message increases"; this function is the shared
/// definition of that linear factor used by both the engine (to decide what
/// can be masked) and the simulator (to charge the cost).
pub fn pages_spanned(virt_addr: u64, len: usize, page_size: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let page_size = page_size as u64;
    let first = virt_addr / page_size;
    let last = (virt_addr + len as u64 - 1) / page_size;
    (last - first + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake translator that splits buffers on 4 KiB page boundaries and
    /// scatters pages pseudo-randomly, mimicking what a real page table does.
    struct ScatteringTranslator;

    impl AddressTranslator for ScatteringTranslator {
        fn translate(&self, virt_addr: u64, len: usize) -> Vec<PhysSegment> {
            let page = 4096u64;
            let mut out = Vec::new();
            let mut addr = virt_addr;
            let mut left = len;
            while left > 0 {
                let page_off = addr % page;
                let in_page = ((page - page_off) as usize).min(left);
                // Scatter: physical frame = hash of virtual page number.
                let vpn = addr / page;
                let pfn = vpn.wrapping_mul(2654435761) % 65536;
                out.push(PhysSegment {
                    phys_addr: pfn * page + page_off,
                    len: in_page,
                });
                addr += in_page as u64;
                left -= in_page;
            }
            out
        }
    }

    #[test]
    fn identity_translator_single_segment() {
        let zb = ZeroBuffer::build(&IdentityTranslator, 0x1000, 8192);
        assert_eq!(zb.segment_count(), 1);
        assert!(zb.covers_exactly(8192));
    }

    #[test]
    fn identity_translator_empty() {
        let zb = ZeroBuffer::build(&IdentityTranslator, 0x1000, 0);
        assert_eq!(zb.segment_count(), 0);
        assert!(zb.covers_exactly(0));
    }

    #[test]
    fn zero_length_segment_is_always_malformed() {
        let zb = ZeroBuffer {
            virt_addr: 0,
            segments: vec![PhysSegment {
                phys_addr: 0x1000,
                len: 0,
            }],
        };
        // Total length is 0, but a degenerate extent must still fail.
        assert!(!zb.covers_exactly(0));
        let mixed = ZeroBuffer {
            virt_addr: 0,
            segments: vec![
                PhysSegment {
                    phys_addr: 0x1000,
                    len: 8,
                },
                PhysSegment {
                    phys_addr: 0x2000,
                    len: 0,
                },
            ],
        };
        assert!(!mixed.covers_exactly(8));
    }

    #[test]
    fn scattered_translation_covers_exactly() {
        for (addr, len) in [
            (0u64, 1usize),
            (100, 4096),
            (4095, 2),
            (0x12345, 10000),
            (0, 65536),
        ] {
            let zb = ZeroBuffer::build(&ScatteringTranslator, addr, len);
            assert!(zb.covers_exactly(len), "addr={addr} len={len}");
        }
    }

    #[test]
    fn split_off_prefix_conserves_bytes() {
        let mut zb = ZeroBuffer::build(&ScatteringTranslator, 0x2345, 10_000);
        let head = zb.split_off_prefix(1460);
        assert_eq!(head.total_len(), 1460);
        assert_eq!(zb.total_len(), 10_000 - 1460);
        let head2 = zb.split_off_prefix(1460);
        assert_eq!(head2.total_len(), 1460);
        assert_eq!(zb.total_len(), 10_000 - 2 * 1460);
    }

    #[test]
    fn split_off_prefix_whole_buffer() {
        let mut zb = ZeroBuffer::build(&ScatteringTranslator, 0, 4096);
        let head = zb.split_off_prefix(4096);
        assert_eq!(head.total_len(), 4096);
        assert_eq!(zb.total_len(), 0);
    }

    #[test]
    fn split_off_prefix_more_than_available() {
        let mut zb = ZeroBuffer::build(&IdentityTranslator, 0, 100);
        let head = zb.split_off_prefix(500);
        assert_eq!(head.total_len(), 100);
        assert_eq!(zb.total_len(), 0);
    }

    #[test]
    fn pages_spanned_linear_growth() {
        assert_eq!(pages_spanned(0, 0, 4096), 0);
        assert_eq!(pages_spanned(0, 1, 4096), 1);
        assert_eq!(pages_spanned(0, 4096, 4096), 1);
        assert_eq!(pages_spanned(0, 4097, 4096), 2);
        assert_eq!(pages_spanned(4095, 2, 4096), 2);
        assert_eq!(pages_spanned(0, 8192 * 4, 4096), 8);
    }

    #[test]
    fn pages_spanned_unaligned_start() {
        // 10 bytes crossing a page boundary spans two pages.
        assert_eq!(pages_spanned(4090, 10, 4096), 2);
        // Fully inside one page.
        assert_eq!(pages_spanned(4096, 10, 4096), 1);
    }
}
